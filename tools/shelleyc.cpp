// shelleyc -- the command-line front door of Shelley-MP.
//
//   shelleyc file.py...                  verify every @sys class
//   shelleyc --class NAME file.py...     verify one class
//   shelleyc --json file.py...           machine-readable report
//   shelleyc --dot-class NAME ...        Figure-1 style diagram (DOT)
//   shelleyc --dot-model NAME ...        dependency-graph model (Figure 3)
//   shelleyc --dot-system NAME ...       composite system automaton
//   shelleyc --usage-regex NAME ...      valid-usage language as a regex
//   shelleyc --smv NAME ...              NuSMV model of the system behavior
//
// Exit status: 0 when verification passed, 1 on findings, 2 on usage or
// input errors (a file that cannot be opened or parsed; other inputs are
// still verified -- per-file fault isolation).
#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <random>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include <iomanip>

#include "fsm/ops.hpp"
#include "fsm/to_regex.hpp"
#include "ltlf/parser.hpp"
#include "shelley/automata.hpp"
#include "shelley/cache.hpp"
#include "shelley/graph.hpp"
#include "shelley/monitor.hpp"
#include "shelley/sampler.hpp"
#include "shelley/report_json.hpp"
#include "shelley/verifier.hpp"
#include "smv/smv.hpp"
#include "support/guard.hpp"
#include "support/metrics.hpp"
#include "support/thread_pool.hpp"
#include "support/trace.hpp"
#include "viz/dot.hpp"

namespace {

using namespace shelley;

struct Options {
  std::vector<std::string> files;
  std::optional<std::string> verify_class;
  std::optional<std::string> dot_class;
  std::optional<std::string> dot_model;
  std::optional<std::string> dot_system;
  std::optional<std::string> dot_usage;
  std::optional<std::string> usage_regex;
  std::optional<std::string> smv;
  std::optional<std::string> monitor;
  std::optional<std::string> sample;
  int sample_count = 5;
  std::size_t jobs = shelley::support::ThreadPool::hardware_default();
  bool json = false;
  bool quiet = false;
  bool stats = false;
  std::optional<std::string> cache_dir;
  bool cache_stats = false;
  std::optional<std::string> trace_out;
  std::size_t dfa_budget = 0;
  // Resource guards (support::guard); zeros keep the built-in defaults /
  // leave the check disabled.
  std::size_t max_states = 0;
  std::uint64_t timeout_ms = 0;
  std::size_t max_input_bytes = 0;
  std::size_t max_depth = 0;
};

void print_usage(std::ostream& out) {
  out << "usage: shelleyc [options] <file.py>...\n"
         "  --class NAME        verify only NAME\n"
         "  --json              print a JSON report\n"
         "  --quiet             suppress the text report\n"
         "  --dot-class NAME    emit the class behavior diagram (DOT)\n"
         "  --dot-model NAME    emit the dependency-graph model (DOT)\n"
         "  --dot-system NAME   emit the composite system automaton (DOT)\n"
         "  --dot-usage NAME    emit the minimal valid-usage DFA (DOT)\n"
         "  --usage-regex NAME  print the valid-usage language as a regex\n"
         "  --smv NAME          emit a NuSMV model of the system behavior\n"
         "  --monitor NAME      read operation calls from stdin, one per\n"
         "                      line, and report a verdict for each\n"
         "  --sample NAME [N]   print N (default 5) valid complete usages\n"
         "  --jobs N            verify classes on up to N threads (default:\n"
         "                      hardware concurrency; 1 = serial)\n"
         "  --stats             print per-class automata statistics and\n"
         "                      pipeline counters (with --json: embed them)\n"
         "  --cache DIR         incremental verification: consult (and\n"
         "                      fill) an on-disk behavior cache in DIR\n"
         "  --cache-stats       print cache hit/miss/invalidation counters\n"
         "                      (stderr with --json, so stdout stays JSON)\n"
         "  --trace-out FILE    write a Chrome trace-event JSON timeline of\n"
         "                      the whole run (load in Perfetto)\n"
         "  --dfa-budget N      warn when a class's minimized DFA exceeds\n"
         "                      N states (0 = off)\n"
         "  --max-states N      abort (as an error, not a crash) any\n"
         "                      automaton construction exceeding N states\n"
         "                      (0 = unlimited)\n"
         "  --timeout-ms N      abort verification once N ms of wall clock\n"
         "                      have elapsed (0 = no deadline)\n"
         "  --max-input-bytes N reject source files larger than N bytes\n"
         "                      (0 = default, 8 MiB)\n"
         "  --max-depth N       cap parser/visitor recursion depth\n"
         "                      (0 = default, 256)\n";
}

std::optional<Options> parse_args(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::optional<std::string> {
      if (i + 1 >= argc) return std::nullopt;
      return std::string(argv[++i]);
    };
    if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      std::exit(0);
    } else if (arg == "--json") {
      options.json = true;
    } else if (arg == "--quiet") {
      options.quiet = true;
    } else if (arg == "--class") {
      options.verify_class = next();
      if (!options.verify_class) return std::nullopt;
    } else if (arg == "--dot-class") {
      options.dot_class = next();
      if (!options.dot_class) return std::nullopt;
    } else if (arg == "--dot-model") {
      options.dot_model = next();
      if (!options.dot_model) return std::nullopt;
    } else if (arg == "--dot-system") {
      options.dot_system = next();
      if (!options.dot_system) return std::nullopt;
    } else if (arg == "--dot-usage") {
      options.dot_usage = next();
      if (!options.dot_usage) return std::nullopt;
    } else if (arg == "--usage-regex") {
      options.usage_regex = next();
      if (!options.usage_regex) return std::nullopt;
    } else if (arg == "--smv") {
      options.smv = next();
      if (!options.smv) return std::nullopt;
    } else if (arg == "--monitor") {
      options.monitor = next();
      if (!options.monitor) return std::nullopt;
    } else if (arg == "--jobs" || arg == "-j") {
      const auto value = next();
      if (!value) return std::nullopt;
      const long parsed = std::atol(value->c_str());
      if (parsed < 1) {
        std::cerr << "shelleyc: --jobs needs a positive integer\n";
        return std::nullopt;
      }
      options.jobs = static_cast<std::size_t>(parsed);
    } else if (arg == "--stats") {
      options.stats = true;
    } else if (arg == "--cache") {
      options.cache_dir = next();
      if (!options.cache_dir) return std::nullopt;
    } else if (arg == "--cache-stats") {
      options.cache_stats = true;
    } else if (arg == "--trace-out") {
      options.trace_out = next();
      if (!options.trace_out) return std::nullopt;
    } else if (arg == "--dfa-budget" || arg == "--max-states" ||
               arg == "--timeout-ms" || arg == "--max-input-bytes" ||
               arg == "--max-depth") {
      const auto value = next();
      if (!value) return std::nullopt;
      const long parsed = std::atol(value->c_str());
      if (parsed < 0) {
        std::cerr << "shelleyc: " << arg
                  << " needs a non-negative integer\n";
        return std::nullopt;
      }
      const auto count = static_cast<std::size_t>(parsed);
      if (arg == "--dfa-budget") {
        options.dfa_budget = count;
      } else if (arg == "--max-states") {
        options.max_states = count;
      } else if (arg == "--timeout-ms") {
        options.timeout_ms = static_cast<std::uint64_t>(parsed);
      } else if (arg == "--max-input-bytes") {
        options.max_input_bytes = count;
      } else {
        options.max_depth = count;
      }
    } else if (arg == "--sample") {
      options.sample = next();
      if (!options.sample) return std::nullopt;
      // Optional count argument.
      if (i + 1 < argc && std::isdigit(static_cast<unsigned char>(
                              argv[i + 1][0])) != 0) {
        options.sample_count = std::atoi(argv[++i]);
      }
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "shelleyc: unknown option '" << arg << "'\n";
      return std::nullopt;
    } else {
      options.files.push_back(arg);
    }
  }
  if (options.files.empty()) return std::nullopt;
  return options;
}

const core::ClassSpec* require_class(const core::Verifier& verifier,
                                     const std::string& name) {
  const core::ClassSpec* spec = verifier.find_class(name);
  if (spec == nullptr) {
    std::cerr << "shelleyc: unknown class '" << name << "'\n";
  }
  return spec;
}

core::SystemModel build_model(core::Verifier& verifier,
                              const core::ClassSpec& spec) {
  const auto behaviors = core::extract_behaviors(
      spec, verifier.symbols(), verifier.diagnostics());
  return core::build_system_model(spec, behaviors, verifier.symbols(),
                                  verifier.diagnostics());
}

/// The --stats summary: one row of automata sizes per verified class, then
/// the global pipeline counters and distributions.
void print_stats(const core::Report& report, std::ostream& out) {
  out << "\nautomata statistics\n";
  out << std::left << std::setw(24) << "  class" << std::right
      << std::setw(8) << "nfa" << std::setw(10) << "dfa.raw"
      << std::setw(10) << "dfa.min" << std::setw(10) << "pairs"
      << std::setw(8) << "ltlf" << std::setw(6) << "cex"
      << std::setw(10) << "ms" << "\n";
  for (const core::ClassReport& cls : report.classes) {
    if (!cls.stats.collected) continue;
    out << "  " << std::left << std::setw(22) << cls.class_name
        << std::right << std::setw(8) << cls.stats.nfa_states
        << std::setw(10) << cls.stats.dfa_states_before
        << std::setw(10) << cls.stats.dfa_states_after
        << std::setw(10) << cls.stats.product_pairs
        << std::setw(8) << cls.stats.ltlf_states
        << std::setw(6) << cls.stats.counterexample_len
        << std::setw(10) << std::fixed << std::setprecision(2)
        << cls.stats.elapsed_ms << "\n";
  }
  const auto counters = shelley::support::metrics::counter_snapshot();
  if (!counters.empty()) {
    out << "\npipeline counters\n";
    for (const auto& [name, value] : counters) {
      out << "  " << std::left << std::setw(30) << name << std::right
          << std::setw(12) << value << "\n";
    }
  }
  const auto distributions =
      shelley::support::metrics::distribution_snapshot();
  if (!distributions.empty()) {
    out << "\npipeline distributions (count/min/max/sum)\n";
    for (const auto& [name, snap] : distributions) {
      out << "  " << std::left << std::setw(30) << name << std::right
          << std::setw(8) << snap.count << std::setw(8) << snap.min
          << std::setw(8) << snap.max << std::setw(12) << snap.sum << "\n";
    }
  }
}

/// Prints the --cache-stats block on every exit path of run() (the
/// destructor fires at scope end, after all other output of the run).
struct CacheStatsPrinter {
  const core::BehaviorCache* cache = nullptr;
  bool enabled = false;
  bool to_stderr = false;

  ~CacheStatsPrinter() {
    if (!enabled || cache == nullptr) return;
    const core::CacheStats stats = cache->stats();
    std::ostream& out = to_stderr ? std::cerr : std::cout;
    out << "\ncache statistics\n"
        << "  hits            " << stats.hits << "\n"
        << "  misses          " << stats.misses << "\n"
        << "  invalidations   " << stats.invalidations << "\n"
        << "  stores          " << stats.stores << "\n"
        << "  store failures  " << stats.store_failures << "\n";
  }
};

/// One formatted diagnostic line; `path` (when non-empty) prefixes the
/// location so batch-mode output says which file each error lives in.
std::string format_diagnostic(const Diagnostic& diag,
                              const std::string& path) {
  std::string out;
  if (!path.empty()) out += path + ":";
  out += std::string(to_string(diag.severity)) + " " + to_string(diag.loc) +
         ": " + diag.message + "\n";
  return out;
}

/// Batch-mode epilogue: one line per input file.
void print_file_summaries(const std::vector<core::FileSummary>& files,
                          std::ostream& out) {
  out << "\ninputs:\n";
  for (const core::FileSummary& file : files) {
    out << "  " << file.path << ": ";
    if (!file.failure.empty()) {
      out << "FAILED (" << file.failure << ")";
    } else if (file.parse_errors > 0) {
      out << file.parse_errors << " parse error"
          << (file.parse_errors == 1 ? "" : "s");
    } else {
      out << "ok";
    }
    out << "\n";
  }
}

int run(const Options& options) {
  // Install the resource guards before any frontend code runs; the deadline
  // (--timeout-ms) is armed here and covers loading and verification.
  support::guard::Limits limits;
  if (options.max_depth > 0) limits.max_recursion_depth = options.max_depth;
  if (options.max_input_bytes > 0) {
    limits.max_input_bytes = options.max_input_bytes;
  }
  limits.max_states = options.max_states;
  limits.timeout_ms = options.timeout_ms;
  support::guard::ScopedLimits guard(limits);

  core::Verifier verifier;
  verifier.set_lint_options(core::LintOptions{options.dfa_budget});

  // Incremental verification: an on-disk behavior cache shared by the
  // verification path (verdicts), --monitor (usage DFAs), and --smv
  // (emitted model bytes).
  std::optional<core::BehaviorCache> cache;
  if (options.cache_dir) {
    try {
      cache.emplace(*options.cache_dir);
    } catch (const std::exception& error) {
      std::cerr << "shelleyc: " << error.what() << "\n";
      return 2;
    }
    verifier.set_cache(&*cache);
  }
  if (options.cache_stats && !cache) {
    std::cerr << "shelleyc: --cache-stats has no effect without --cache\n";
  }
  CacheStatsPrinter cache_stats_printer{
      cache ? &*cache : nullptr, options.cache_stats && cache.has_value(),
      options.json};

  // Load every input with per-file fault isolation: recovery collects all
  // syntax errors of a file, and a file that fails outright (unreadable,
  // over the input budget, internal error) is reported and skipped while
  // the remaining files are still parsed and verified.
  std::vector<core::FileSummary> summaries;
  summaries.reserve(options.files.size());
  bool load_failed = false;
  for (const std::string& path : options.files) {
    core::FileSummary summary;
    summary.path = path;
    const std::size_t diags_before =
        verifier.diagnostics().diagnostics().size();
    std::ifstream file(path);
    if (!file) {
      summary.failure = "cannot open file";
      std::cerr << "shelleyc: cannot open '" << path << "'\n";
    } else {
      std::stringstream buffer;
      buffer << file.rdbuf();
      try {
        summary.parse_errors = verifier.add_source_recover(buffer.str());
        summary.loaded = true;
      } catch (const std::exception& error) {
        summary.failure = error.what();
      }
    }
    const auto& diags = verifier.diagnostics().diagnostics();
    for (std::size_t i = diags_before; i < diags.size(); ++i) {
      std::cerr << format_diagnostic(diags[i], path);
    }
    if (!summary.failure.empty() && file) {
      // Open failures already printed their own message above.
      std::cerr << "shelleyc: " << path << ": " << summary.failure << "\n";
    }
    load_failed = load_failed || !summary.loaded || summary.parse_errors > 0;
    summaries.push_back(std::move(summary));
  }
  // Everything recorded past this point comes from verification, not
  // loading; the text report below prints only those, because the loader
  // already printed its own (path-prefixed).
  const std::size_t load_diag_end =
      verifier.diagnostics().diagnostics().size();
  // Input problems dominate the exit status: even when an artifact mode or
  // the verification below succeeds on the surviving files, a failed input
  // makes the run exit 2.
  const int load_status = load_failed ? 2 : 0;

  // Artifact emission modes short-circuit verification.
  if (options.dot_class) {
    const auto* spec = require_class(verifier, *options.dot_class);
    if (spec == nullptr) return 2;
    std::cout << viz::dot_class_diagram(*spec);
    return load_status;
  }
  if (options.dot_model) {
    const auto* spec = require_class(verifier, *options.dot_model);
    if (spec == nullptr) return 2;
    const core::DependencyGraph graph =
        core::DependencyGraph::build(*spec, verifier.diagnostics());
    std::cout << viz::dot_dependency_graph(*spec, graph);
    return load_status;
  }
  if (options.dot_system) {
    const auto* spec = require_class(verifier, *options.dot_system);
    if (spec == nullptr) return 2;
    const core::SystemModel model = build_model(verifier, *spec);
    std::cout << viz::dot_system_model(model, verifier.symbols());
    return load_status;
  }
  if (options.dot_usage) {
    const auto* spec = require_class(verifier, *options.dot_usage);
    if (spec == nullptr) return 2;
    const fsm::Dfa usage = fsm::minimize(fsm::determinize(
        core::usage_nfa(*spec, verifier.symbols())));
    std::cout << viz::dot_dfa(usage, verifier.symbols(),
                              spec->name + "_usage");
    return load_status;
  }
  if (options.monitor) {
    const auto* spec = require_class(verifier, *options.monitor);
    if (spec == nullptr) return 2;
    // With a cache, the minimal usage DFA is loaded (or, on a miss, built
    // once and stored) instead of re-running usage_nfa/determinize/minimize
    // on every monitor launch.
    std::optional<core::Monitor> cached_monitor;
    if (cache) {
      const support::Digest128 key = verifier.cache_key(*spec);
      if (auto dfa = cache->load_dfa(key, verifier.symbols())) {
        cached_monitor.emplace(verifier.symbols(), *std::move(dfa));
      } else {
        cached_monitor.emplace(*spec, verifier.symbols());
        cache->store_dfa(key, cached_monitor->dfa(), verifier.symbols());
      }
    }
    core::Monitor monitor = cached_monitor
                                ? *std::move(cached_monitor)
                                : core::Monitor(*spec, verifier.symbols());
    std::string op;
    bool any_violation = false;
    while (std::cin >> op) {
      const core::Verdict verdict = monitor.feed(op);
      std::cout << op << ": " << core::to_string(verdict) << "\n";
      any_violation = any_violation ||
                      verdict == core::Verdict::kViolation;
    }
    std::cout << (monitor.completed() ? "complete" : "incomplete") << "\n";
    if (load_failed) return 2;
    return any_violation || !monitor.completed() ? 1 : 0;
  }
  if (options.sample) {
    const auto* spec = require_class(verifier, *options.sample);
    if (spec == nullptr) return 2;
    core::TraceSampler sampler(*spec, verifier.symbols(),
                               std::random_device{}());
    for (int i = 0; i < options.sample_count; ++i) {
      const auto trace = sampler.sample(16);
      if (trace.empty()) {
        std::cout << "(empty usage)\n";
        continue;
      }
      for (std::size_t j = 0; j < trace.size(); ++j) {
        std::cout << (j == 0 ? "" : ", ") << trace[j];
      }
      std::cout << "\n";
    }
    return load_status;
  }
  if (options.usage_regex) {
    const auto* spec = require_class(verifier, *options.usage_regex);
    if (spec == nullptr) return 2;
    const fsm::Nfa usage = core::usage_nfa(*spec, verifier.symbols());
    const rex::Regex regex = fsm::to_regex(usage);
    std::cout << rex::to_string(regex, verifier.symbols()) << "\n";
    return load_status;
  }
  if (options.smv) {
    const auto* spec = require_class(verifier, *options.smv);
    if (spec == nullptr) return 2;
    // The emitted model is a pure function of the class key, so the cache
    // stores its bytes verbatim: a warm run replays them byte-identically
    // without building the system automaton at all.  Models with claims
    // that fail to parse are never cached (the skip notice must reprint).
    const support::Digest128 smv_key =
        cache ? verifier.cache_key(*spec) : support::Digest128{};
    if (cache) {
      if (const auto artifact = cache->load_artifact(smv_key)) {
        std::cout << *artifact;
        return load_status;
      }
    }
    const core::SystemModel model = build_model(verifier, *spec);
    const fsm::Dfa dfa = fsm::minimize(
        fsm::determinize(model.nfa, model.full_alphabet()));
    smv::SmvModel smv_model =
        smv::from_dfa(dfa, verifier.symbols(), spec->name);
    bool all_claims_parsed = true;
    for (const core::Claim& claim : spec->claims) {
      try {
        smv::add_ltlspec(
            smv_model,
            ltlf::parse(claim.text, verifier.symbols(), claim.loc),
            verifier.symbols());
      } catch (const ParseError&) {
        std::cerr << "shelleyc: skipping unparsable claim: " << claim.text
                  << "\n";
        all_claims_parsed = false;
      }
    }
    const std::string emitted = smv::emit(smv_model);
    std::cout << emitted;
    if (cache && all_claims_parsed) cache->store_artifact(smv_key, emitted);
    return load_status;
  }

  // Verification.
  core::Report report;
  if (options.verify_class) {
    report.classes.push_back(verifier.verify_class(*options.verify_class));
  } else {
    report = verifier.verify_all(options.jobs);
  }

  if (options.json) {
    std::cout << core::report_to_json(report, verifier, options.stats,
                                      &summaries)
              << "\n";
  } else if (!options.quiet) {
    for (const core::ClassReport& cls : report.classes) {
      std::cout << cls.class_name << ": " << (cls.ok() ? "ok" : "FAILED")
                << "\n";
    }
    const std::string errors = report.render(verifier.symbols());
    if (!errors.empty()) std::cout << "\n" << errors;
    // Loading already printed its diagnostics (path-prefixed); print only
    // what verification added.
    std::string diagnostics;
    const auto& diags = verifier.diagnostics().diagnostics();
    for (std::size_t i = load_diag_end; i < diags.size(); ++i) {
      diagnostics += format_diagnostic(diags[i], "");
    }
    if (!diagnostics.empty()) std::cout << "\n" << diagnostics;
    if (options.files.size() >= 2 || load_failed) {
      print_file_summaries(summaries, std::cout);
    }
  }
  if (options.stats && !options.json) print_stats(report, std::cout);
  if (load_failed) return 2;
  return report.ok() && !verifier.diagnostics().has_errors() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const auto parsed = parse_args(argc, argv);
  if (!parsed) {
    print_usage(std::cerr);
    return 2;
  }
  // Flip the instrumentation switches before any pipeline code runs, so the
  // trace covers lexing/parsing too.  --stats needs the metrics registry;
  // --trace-out needs both (counters feed the per-class trace tracks).
  if (parsed->trace_out) {
    support::trace::set_enabled(true);
    support::metrics::set_enabled(true);
  }
  if (parsed->stats) support::metrics::set_enabled(true);

  // Last-resort boundary: whatever goes wrong inside the pipeline, the CLI
  // reports it and exits with a status instead of crashing.
  int status = 2;
  try {
    status = run(*parsed);
  } catch (const std::exception& error) {
    std::cerr << "shelleyc: internal error: " << error.what() << "\n";
  } catch (...) {
    std::cerr << "shelleyc: internal error\n";
  }

  // Written on every exit path of run(), including artifact modes and
  // verification failures -- a failing run's timeline is the one you want.
  if (parsed->trace_out &&
      !support::trace::write_chrome_json(*parsed->trace_out)) {
    std::cerr << "shelleyc: cannot write trace file '" << *parsed->trace_out
              << "'\n";
    return 2;
  }
  return status;
}
