// shelleyc -- the command-line front door of Shelley-MP.
//
//   shelleyc file.py...                  verify every @sys class
//   shelleyc --class NAME file.py...     verify one class
//   shelleyc --json file.py...           machine-readable report
//   shelleyc --dot-class NAME ...        Figure-1 style diagram (DOT)
//   shelleyc --dot-model NAME ...        dependency-graph model (Figure 3)
//   shelleyc --dot-system NAME ...       composite system automaton
//   shelleyc --usage-regex NAME ...      valid-usage language as a regex
//   shelleyc --smv NAME ...              NuSMV model of the system behavior
//
// Exit status: 0 when verification passed, 1 on findings, 2 on usage or
// input errors (a file that cannot be opened or parsed; other inputs are
// still verified -- per-file fault isolation).
//
// Thin client: all semantics live in src/engine (driver.hpp runs the
// workspace + query-engine pipeline); this file only parses argv, flips
// the instrumentation switches, and owns the last-resort error boundary.
// shelleyd serves the same engine over stdio for warm repeated runs.
#include <iostream>

#include "engine/driver.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"

int main(int argc, char** argv) {
  using namespace shelley;

  const auto parsed =
      engine::parse_cli_args(argc, argv, "shelleyc", std::cerr);
  if (!parsed) {
    engine::print_usage(std::cerr, "shelleyc");
    return 2;
  }
  if (parsed->help) {
    engine::print_usage(std::cout, "shelleyc");
    return 0;
  }
  // Flip the instrumentation switches before any pipeline code runs, so the
  // trace covers lexing/parsing too.  --stats needs the metrics registry;
  // --trace-out needs both (counters feed the per-class trace tracks).
  if (parsed->trace_out) {
    support::trace::set_enabled(true);
    support::metrics::set_enabled(true);
  }
  if (parsed->stats) support::metrics::set_enabled(true);

  // Last-resort boundary: whatever goes wrong inside the pipeline, the CLI
  // reports it and exits with a status instead of crashing.
  int status = 2;
  try {
    status = engine::run_tool(*parsed, std::cin, std::cout, std::cerr);
  } catch (const std::exception& error) {
    std::cerr << "shelleyc: internal error: " << error.what() << "\n";
  } catch (...) {
    std::cerr << "shelleyc: internal error\n";
  }

  // Written on every exit path of the run, including artifact modes and
  // verification failures -- a failing run's timeline is the one you want.
  if (parsed->trace_out &&
      !support::trace::write_chrome_json(*parsed->trace_out)) {
    std::cerr << "shelleyc: cannot write trace file '" << *parsed->trace_out
              << "'\n";
    return 2;
  }
  return status;
}
