// shelleyd -- the persistent Shelley-MP verification daemon.
//
//   shelleyd [options] [file.py...]              stdio, single session
//   shelleyd --socket PATH [options] [file.py..] concurrent socket server
//   shelleyd --connect PATH                      stdio bridge to a server
//
// Speaks newline-delimited JSON (one request per line, one response per
// line; see src/engine/daemon.hpp and docs/ARCHITECTURE.md for the
// command reference).  Accepts shelleyc's session options (--cache,
// --jobs, --dfa-budget, the resource guards); files on the command line
// are loaded before each session's first request, or load them over the
// wire with {"cmd":"load",...}.  With --socket, every accepted client
// gets its own session (workspace + engine) while all sessions share the
// in-memory memo tier, the on-disk cache, and the thread pool; --max-
// inflight and --session-queue bound the server's concurrency and
// per-session backlog.
//
// verify/report responses carry the exact bytes (and exit status) a cold
// shelleyc run over the current sources would produce, while the
// workspace's memo tiers keep warm requests from re-running unchanged
// work -- the demand-driven counterpart of the batch client.
#include <iostream>
#include <string>

#include "engine/daemon.hpp"
#include "engine/driver.hpp"
#include "engine/server.hpp"
#include "shelley/fingerprint.hpp"

int main(int argc, char** argv) {
  using namespace shelley;

  const auto parsed = engine::parse_cli_args(argc, argv, "shelleyd",
                                             std::cerr,
                                             /*require_files=*/false);
  if (!parsed) {
    engine::print_usage(std::cerr, "shelleyd");
    return 2;
  }
  if (parsed->help) {
    engine::print_usage(std::cout, "shelleyd");
    return 0;
  }
  if (parsed->version) {
    std::cout << core::kToolchainVersion << "\n";
    return 0;
  }

  if (parsed->socket_path && parsed->connect_path) {
    std::cerr << "shelleyd: --socket and --connect are exclusive\n";
    return 2;
  }

  int status = 2;
  try {
    if (parsed->connect_path) {
      status = engine::run_client(*parsed, std::cin, std::cout, std::cerr);
    } else if (parsed->socket_path) {
      status = engine::run_server(*parsed, std::cerr);
    } else {
      status = engine::run_daemon(*parsed, std::cin, std::cout, std::cerr);
    }
  } catch (const std::exception& error) {
    std::cerr << "shelleyd: internal error: " << error.what() << "\n";
  } catch (...) {
    std::cerr << "shelleyd: internal error\n";
  }
  return status;
}
