// shelleyd -- the persistent Shelley-MP verification daemon.
//
//   shelleyd [options] [file.py...]
//
// Speaks newline-delimited JSON over stdin/stdout (one request per line,
// one response per line; see src/engine/daemon.hpp and
// docs/ARCHITECTURE.md for the command reference).  Accepts shelleyc's
// session options (--cache, --jobs, --dfa-budget, the resource guards);
// files on the command line are loaded before the first request, or load
// them over the wire with {"cmd":"load",...}.
//
// verify/report responses carry the exact bytes (and exit status) a cold
// shelleyc run over the current sources would produce, while the
// workspace's memo tiers keep warm requests from re-running unchanged
// work -- the demand-driven counterpart of the batch client.
#include <iostream>
#include <string>

#include "engine/daemon.hpp"
#include "engine/driver.hpp"
#include "shelley/fingerprint.hpp"

int main(int argc, char** argv) {
  using namespace shelley;

  const auto parsed = engine::parse_cli_args(argc, argv, "shelleyd",
                                             std::cerr,
                                             /*require_files=*/false);
  if (!parsed) {
    engine::print_usage(std::cerr, "shelleyd");
    return 2;
  }
  if (parsed->help) {
    engine::print_usage(std::cout, "shelleyd");
    return 0;
  }
  if (parsed->version) {
    std::cout << core::kToolchainVersion << "\n";
    return 0;
  }

  int status = 2;
  try {
    status = engine::run_daemon(*parsed, std::cin, std::cout, std::cerr);
  } catch (const std::exception& error) {
    std::cerr << "shelleyd: internal error: " << error.what() << "\n";
  } catch (...) {
    std::cerr << "shelleyd: internal error\n";
  }
  return status;
}
