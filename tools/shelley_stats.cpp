// shelley_stats -- renders a shelleyd stats reply as a human summary.
//
//   shelley_stats [stats.json]
//   printf '{"cmd":"stats"}\n{"cmd":"shutdown"}\n' | shelleyd a.py | shelley_stats
//
// Reads NDJSON from the file argument (or stdin with no argument / "-"),
// picks the last line that looks like a daemon stats reply, and prints the
// session gauges, cache tiers with hit rates, the support/metrics
// counters, and one row per latency histogram (count / p50 / p90 / p99 /
// max).  Exits 1 when no stats reply is found, so pipelines fail loudly.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "support/json.hpp"

namespace {

using shelley::JsonValue;

double number_or(const JsonValue& object, const char* key, double fallback) {
  const JsonValue* value = object.find(key);
  return value == nullptr ? fallback : value->as_number();
}

void print_tier(const char* name, const JsonValue& tier) {
  const double hits = number_or(tier, "hits", 0);
  const double misses = number_or(tier, "misses", 0);
  const double total = hits + misses;
  const double rate = total == 0 ? 0 : 100.0 * hits / total;
  std::printf("  %-8s %10.0f hits %10.0f misses  %5.1f%% hit rate\n", name,
              hits, misses, rate);
}

int render(const JsonValue& stats) {
  std::printf("shelleyd session\n");
  if (const JsonValue* uptime = stats.find("uptime_ms")) {
    std::printf("  %-8s %10.0f ms\n", "uptime", uptime->as_number());
  }
  if (const JsonValue* requests = stats.find("requests")) {
    std::printf("  %-8s %10.0f (%.0f errors)\n", "requests",
                requests->as_number(),
                number_or(stats, "request_errors", 0));
  }
  std::printf("\ncache tiers\n");
  for (const char* tier : {"memo", "queries", "parse", "cache"}) {
    if (const JsonValue* value = stats.find(tier)) print_tier(tier, *value);
  }
  if (const JsonValue* counters = stats.find("counters")) {
    if (!counters->as_object().empty()) {
      std::printf("\ncounters\n");
      for (const auto& [name, value] : counters->as_object()) {
        std::printf("  %-36s %12.0f\n", name.c_str(), value.as_number());
      }
    }
  }
  if (const JsonValue* histograms = stats.find("histograms")) {
    if (!histograms->as_object().empty()) {
      std::printf("\nlatency histograms (us)\n");
      std::printf("  %-24s %8s %10s %10s %10s %10s\n", "name", "count",
                  "p50", "p90", "p99", "max");
      for (const auto& [name, h] : histograms->as_object()) {
        std::printf("  %-24s %8.0f %10.0f %10.0f %10.0f %10.0f\n",
                    name.c_str(), number_or(h, "count", 0),
                    number_or(h, "p50", 0), number_or(h, "p90", 0),
                    number_or(h, "p99", 0), number_or(h, "max", 0));
      }
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  if (argc > 2 || (argc == 2 && std::string(argv[1]) == "--help")) {
    std::cerr << "usage: shelley_stats [stats.json]\n"
                 "reads a shelleyd NDJSON stats reply from the file (or "
                 "stdin) and prints a summary table\n";
    return argc > 2 ? 2 : 0;
  }
  if (argc == 2 && std::string(argv[1]) != "-") path = argv[1];

  std::ifstream file;
  if (!path.empty()) {
    file.open(path);
    if (!file) {
      std::cerr << "shelley_stats: cannot open '" << path << "'\n";
      return 1;
    }
  }
  std::istream& in = path.empty() ? std::cin : file;

  // A daemon transcript interleaves many replies; the stats reply is the
  // one carrying cache-tier objects.  Keep the last so a stats request at
  // the end of a session reflects the whole run.
  std::optional<JsonValue> stats;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    try {
      JsonValue value = shelley::parse_json(line);
      if (value.find("memo") != nullptr ||
          value.find("histograms") != nullptr) {
        stats = std::move(value);
      }
    } catch (...) {
      continue;  // not JSON (e.g. verify output) -- skip
    }
  }
  if (!stats) {
    std::cerr << "shelley_stats: no stats reply found in input\n";
    return 1;
  }
  return render(*stats);
}
