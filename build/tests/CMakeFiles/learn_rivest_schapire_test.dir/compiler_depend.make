# Empty compiler generated dependencies file for learn_rivest_schapire_test.
# This may be replaced when dependencies are built.
