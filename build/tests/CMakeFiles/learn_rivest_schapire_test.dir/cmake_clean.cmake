file(REMOVE_RECURSE
  "CMakeFiles/learn_rivest_schapire_test.dir/learn/rivest_schapire_test.cpp.o"
  "CMakeFiles/learn_rivest_schapire_test.dir/learn/rivest_schapire_test.cpp.o.d"
  "learn_rivest_schapire_test"
  "learn_rivest_schapire_test.pdb"
  "learn_rivest_schapire_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/learn_rivest_schapire_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
