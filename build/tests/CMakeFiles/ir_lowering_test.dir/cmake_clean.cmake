file(REMOVE_RECURSE
  "CMakeFiles/ir_lowering_test.dir/ir/lowering_test.cpp.o"
  "CMakeFiles/ir_lowering_test.dir/ir/lowering_test.cpp.o.d"
  "ir_lowering_test"
  "ir_lowering_test.pdb"
  "ir_lowering_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_lowering_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
