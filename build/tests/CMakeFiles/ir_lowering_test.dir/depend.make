# Empty dependencies file for ir_lowering_test.
# This may be replaced when dependencies are built.
