# Empty dependencies file for upy_lexer_test.
# This may be replaced when dependencies are built.
