file(REMOVE_RECURSE
  "CMakeFiles/upy_lexer_test.dir/upy/lexer_test.cpp.o"
  "CMakeFiles/upy_lexer_test.dir/upy/lexer_test.cpp.o.d"
  "upy_lexer_test"
  "upy_lexer_test.pdb"
  "upy_lexer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upy_lexer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
