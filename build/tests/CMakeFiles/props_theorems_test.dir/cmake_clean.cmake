file(REMOVE_RECURSE
  "CMakeFiles/props_theorems_test.dir/props/theorems_test.cpp.o"
  "CMakeFiles/props_theorems_test.dir/props/theorems_test.cpp.o.d"
  "props_theorems_test"
  "props_theorems_test.pdb"
  "props_theorems_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/props_theorems_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
