# Empty compiler generated dependencies file for props_theorems_test.
# This may be replaced when dependencies are built.
