file(REMOVE_RECURSE
  "CMakeFiles/ltlf_simplify_test.dir/ltlf/simplify_test.cpp.o"
  "CMakeFiles/ltlf_simplify_test.dir/ltlf/simplify_test.cpp.o.d"
  "ltlf_simplify_test"
  "ltlf_simplify_test.pdb"
  "ltlf_simplify_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ltlf_simplify_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
