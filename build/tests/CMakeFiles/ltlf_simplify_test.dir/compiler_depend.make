# Empty compiler generated dependencies file for ltlf_simplify_test.
# This may be replaced when dependencies are built.
