# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for props_spec_props_test.
