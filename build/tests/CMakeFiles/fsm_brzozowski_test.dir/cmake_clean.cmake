file(REMOVE_RECURSE
  "CMakeFiles/fsm_brzozowski_test.dir/fsm/brzozowski_test.cpp.o"
  "CMakeFiles/fsm_brzozowski_test.dir/fsm/brzozowski_test.cpp.o.d"
  "fsm_brzozowski_test"
  "fsm_brzozowski_test.pdb"
  "fsm_brzozowski_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsm_brzozowski_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
