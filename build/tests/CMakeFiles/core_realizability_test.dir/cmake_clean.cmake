file(REMOVE_RECURSE
  "CMakeFiles/core_realizability_test.dir/shelley/realizability_test.cpp.o"
  "CMakeFiles/core_realizability_test.dir/shelley/realizability_test.cpp.o.d"
  "core_realizability_test"
  "core_realizability_test.pdb"
  "core_realizability_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_realizability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
