# Empty dependencies file for core_realizability_test.
# This may be replaced when dependencies are built.
