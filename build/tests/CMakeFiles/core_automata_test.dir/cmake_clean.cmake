file(REMOVE_RECURSE
  "CMakeFiles/core_automata_test.dir/shelley/automata_test.cpp.o"
  "CMakeFiles/core_automata_test.dir/shelley/automata_test.cpp.o.d"
  "core_automata_test"
  "core_automata_test.pdb"
  "core_automata_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_automata_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
