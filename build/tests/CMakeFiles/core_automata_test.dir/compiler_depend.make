# Empty compiler generated dependencies file for core_automata_test.
# This may be replaced when dependencies are built.
