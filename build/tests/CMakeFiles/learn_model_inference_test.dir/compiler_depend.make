# Empty compiler generated dependencies file for learn_model_inference_test.
# This may be replaced when dependencies are built.
