# Empty dependencies file for ltlf_nnf_test.
# This may be replaced when dependencies are built.
