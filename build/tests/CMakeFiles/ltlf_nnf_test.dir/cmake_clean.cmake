file(REMOVE_RECURSE
  "CMakeFiles/ltlf_nnf_test.dir/ltlf/nnf_test.cpp.o"
  "CMakeFiles/ltlf_nnf_test.dir/ltlf/nnf_test.cpp.o.d"
  "ltlf_nnf_test"
  "ltlf_nnf_test.pdb"
  "ltlf_nnf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ltlf_nnf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
