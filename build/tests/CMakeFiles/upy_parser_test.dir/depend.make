# Empty dependencies file for upy_parser_test.
# This may be replaced when dependencies are built.
