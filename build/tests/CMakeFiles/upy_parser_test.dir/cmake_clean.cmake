file(REMOVE_RECURSE
  "CMakeFiles/upy_parser_test.dir/upy/parser_test.cpp.o"
  "CMakeFiles/upy_parser_test.dir/upy/parser_test.cpp.o.d"
  "upy_parser_test"
  "upy_parser_test.pdb"
  "upy_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upy_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
