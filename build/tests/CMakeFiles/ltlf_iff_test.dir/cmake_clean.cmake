file(REMOVE_RECURSE
  "CMakeFiles/ltlf_iff_test.dir/ltlf/iff_test.cpp.o"
  "CMakeFiles/ltlf_iff_test.dir/ltlf/iff_test.cpp.o.d"
  "ltlf_iff_test"
  "ltlf_iff_test.pdb"
  "ltlf_iff_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ltlf_iff_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
