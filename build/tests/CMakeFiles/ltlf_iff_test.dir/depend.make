# Empty dependencies file for ltlf_iff_test.
# This may be replaced when dependencies are built.
