# Empty dependencies file for core_lint_test.
# This may be replaced when dependencies are built.
