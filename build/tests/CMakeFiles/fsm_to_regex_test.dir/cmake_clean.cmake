file(REMOVE_RECURSE
  "CMakeFiles/fsm_to_regex_test.dir/fsm/to_regex_test.cpp.o"
  "CMakeFiles/fsm_to_regex_test.dir/fsm/to_regex_test.cpp.o.d"
  "fsm_to_regex_test"
  "fsm_to_regex_test.pdb"
  "fsm_to_regex_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsm_to_regex_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
