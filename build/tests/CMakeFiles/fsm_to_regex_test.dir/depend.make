# Empty dependencies file for fsm_to_regex_test.
# This may be replaced when dependencies are built.
