# Empty compiler generated dependencies file for fsm_nfa_test.
# This may be replaced when dependencies are built.
