file(REMOVE_RECURSE
  "CMakeFiles/fsm_nfa_test.dir/fsm/nfa_test.cpp.o"
  "CMakeFiles/fsm_nfa_test.dir/fsm/nfa_test.cpp.o.d"
  "fsm_nfa_test"
  "fsm_nfa_test.pdb"
  "fsm_nfa_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsm_nfa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
