# Empty dependencies file for smv_parser_test.
# This may be replaced when dependencies are built.
