file(REMOVE_RECURSE
  "CMakeFiles/ir_semantics_test.dir/ir/semantics_test.cpp.o"
  "CMakeFiles/ir_semantics_test.dir/ir/semantics_test.cpp.o.d"
  "ir_semantics_test"
  "ir_semantics_test.pdb"
  "ir_semantics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
