# Empty compiler generated dependencies file for ir_semantics_test.
# This may be replaced when dependencies are built.
