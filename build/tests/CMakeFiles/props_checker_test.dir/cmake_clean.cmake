file(REMOVE_RECURSE
  "CMakeFiles/props_checker_test.dir/props/checker_props_test.cpp.o"
  "CMakeFiles/props_checker_test.dir/props/checker_props_test.cpp.o.d"
  "props_checker_test"
  "props_checker_test.pdb"
  "props_checker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/props_checker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
