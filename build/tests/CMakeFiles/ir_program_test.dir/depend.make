# Empty dependencies file for ir_program_test.
# This may be replaced when dependencies are built.
