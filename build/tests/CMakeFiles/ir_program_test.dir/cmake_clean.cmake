file(REMOVE_RECURSE
  "CMakeFiles/ir_program_test.dir/ir/program_test.cpp.o"
  "CMakeFiles/ir_program_test.dir/ir/program_test.cpp.o.d"
  "ir_program_test"
  "ir_program_test.pdb"
  "ir_program_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_program_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
