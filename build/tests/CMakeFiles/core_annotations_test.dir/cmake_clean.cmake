file(REMOVE_RECURSE
  "CMakeFiles/core_annotations_test.dir/shelley/annotations_test.cpp.o"
  "CMakeFiles/core_annotations_test.dir/shelley/annotations_test.cpp.o.d"
  "core_annotations_test"
  "core_annotations_test.pdb"
  "core_annotations_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_annotations_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
