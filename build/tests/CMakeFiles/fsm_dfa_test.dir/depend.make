# Empty dependencies file for fsm_dfa_test.
# This may be replaced when dependencies are built.
