file(REMOVE_RECURSE
  "CMakeFiles/fsm_dfa_test.dir/fsm/dfa_test.cpp.o"
  "CMakeFiles/fsm_dfa_test.dir/fsm/dfa_test.cpp.o.d"
  "fsm_dfa_test"
  "fsm_dfa_test.pdb"
  "fsm_dfa_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsm_dfa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
