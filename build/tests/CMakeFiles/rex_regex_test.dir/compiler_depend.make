# Empty compiler generated dependencies file for rex_regex_test.
# This may be replaced when dependencies are built.
