file(REMOVE_RECURSE
  "CMakeFiles/rex_regex_test.dir/rex/regex_test.cpp.o"
  "CMakeFiles/rex_regex_test.dir/rex/regex_test.cpp.o.d"
  "rex_regex_test"
  "rex_regex_test.pdb"
  "rex_regex_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rex_regex_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
