file(REMOVE_RECURSE
  "CMakeFiles/rex_equivalence_test.dir/rex/equivalence_test.cpp.o"
  "CMakeFiles/rex_equivalence_test.dir/rex/equivalence_test.cpp.o.d"
  "rex_equivalence_test"
  "rex_equivalence_test.pdb"
  "rex_equivalence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rex_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
