# Empty dependencies file for rex_equivalence_test.
# This may be replaced when dependencies are built.
