file(REMOVE_RECURSE
  "CMakeFiles/core_verifier_test.dir/shelley/verifier_test.cpp.o"
  "CMakeFiles/core_verifier_test.dir/shelley/verifier_test.cpp.o.d"
  "core_verifier_test"
  "core_verifier_test.pdb"
  "core_verifier_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_verifier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
