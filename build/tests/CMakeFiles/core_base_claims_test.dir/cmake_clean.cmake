file(REMOVE_RECURSE
  "CMakeFiles/core_base_claims_test.dir/shelley/base_claims_test.cpp.o"
  "CMakeFiles/core_base_claims_test.dir/shelley/base_claims_test.cpp.o.d"
  "core_base_claims_test"
  "core_base_claims_test.pdb"
  "core_base_claims_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_base_claims_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
