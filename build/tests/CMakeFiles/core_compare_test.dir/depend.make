# Empty dependencies file for core_compare_test.
# This may be replaced when dependencies are built.
