file(REMOVE_RECURSE
  "CMakeFiles/core_compare_test.dir/shelley/compare_test.cpp.o"
  "CMakeFiles/core_compare_test.dir/shelley/compare_test.cpp.o.d"
  "core_compare_test"
  "core_compare_test.pdb"
  "core_compare_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_compare_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
