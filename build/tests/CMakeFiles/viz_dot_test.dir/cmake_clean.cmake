file(REMOVE_RECURSE
  "CMakeFiles/viz_dot_test.dir/viz/dot_test.cpp.o"
  "CMakeFiles/viz_dot_test.dir/viz/dot_test.cpp.o.d"
  "viz_dot_test"
  "viz_dot_test.pdb"
  "viz_dot_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viz_dot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
