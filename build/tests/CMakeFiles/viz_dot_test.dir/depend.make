# Empty dependencies file for viz_dot_test.
# This may be replaced when dependencies are built.
