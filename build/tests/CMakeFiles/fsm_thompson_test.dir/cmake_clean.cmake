file(REMOVE_RECURSE
  "CMakeFiles/fsm_thompson_test.dir/fsm/thompson_test.cpp.o"
  "CMakeFiles/fsm_thompson_test.dir/fsm/thompson_test.cpp.o.d"
  "fsm_thompson_test"
  "fsm_thompson_test.pdb"
  "fsm_thompson_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsm_thompson_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
