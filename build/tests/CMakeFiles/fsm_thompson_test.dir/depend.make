# Empty dependencies file for fsm_thompson_test.
# This may be replaced when dependencies are built.
