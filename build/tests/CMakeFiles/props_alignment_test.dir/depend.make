# Empty dependencies file for props_alignment_test.
# This may be replaced when dependencies are built.
