file(REMOVE_RECURSE
  "CMakeFiles/props_alignment_test.dir/props/alignment_props_test.cpp.o"
  "CMakeFiles/props_alignment_test.dir/props/alignment_props_test.cpp.o.d"
  "props_alignment_test"
  "props_alignment_test.pdb"
  "props_alignment_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/props_alignment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
