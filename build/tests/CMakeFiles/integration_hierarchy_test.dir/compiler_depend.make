# Empty compiler generated dependencies file for integration_hierarchy_test.
# This may be replaced when dependencies are built.
