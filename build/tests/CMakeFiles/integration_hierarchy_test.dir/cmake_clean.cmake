file(REMOVE_RECURSE
  "CMakeFiles/integration_hierarchy_test.dir/integration/hierarchy_test.cpp.o"
  "CMakeFiles/integration_hierarchy_test.dir/integration/hierarchy_test.cpp.o.d"
  "integration_hierarchy_test"
  "integration_hierarchy_test.pdb"
  "integration_hierarchy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_hierarchy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
