# Empty compiler generated dependencies file for upy_robustness_test.
# This may be replaced when dependencies are built.
