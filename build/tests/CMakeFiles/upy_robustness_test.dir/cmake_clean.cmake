file(REMOVE_RECURSE
  "CMakeFiles/upy_robustness_test.dir/upy/robustness_test.cpp.o"
  "CMakeFiles/upy_robustness_test.dir/upy/robustness_test.cpp.o.d"
  "upy_robustness_test"
  "upy_robustness_test.pdb"
  "upy_robustness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upy_robustness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
