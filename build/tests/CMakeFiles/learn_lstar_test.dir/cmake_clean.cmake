file(REMOVE_RECURSE
  "CMakeFiles/learn_lstar_test.dir/learn/lstar_test.cpp.o"
  "CMakeFiles/learn_lstar_test.dir/learn/lstar_test.cpp.o.d"
  "learn_lstar_test"
  "learn_lstar_test.pdb"
  "learn_lstar_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/learn_lstar_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
