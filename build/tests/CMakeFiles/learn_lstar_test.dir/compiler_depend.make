# Empty compiler generated dependencies file for learn_lstar_test.
# This may be replaced when dependencies are built.
