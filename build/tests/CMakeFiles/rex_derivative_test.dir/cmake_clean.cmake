file(REMOVE_RECURSE
  "CMakeFiles/rex_derivative_test.dir/rex/derivative_test.cpp.o"
  "CMakeFiles/rex_derivative_test.dir/rex/derivative_test.cpp.o.d"
  "rex_derivative_test"
  "rex_derivative_test.pdb"
  "rex_derivative_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rex_derivative_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
