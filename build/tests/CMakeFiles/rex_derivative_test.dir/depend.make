# Empty dependencies file for rex_derivative_test.
# This may be replaced when dependencies are built.
