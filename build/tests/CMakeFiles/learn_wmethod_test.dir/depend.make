# Empty dependencies file for learn_wmethod_test.
# This may be replaced when dependencies are built.
