file(REMOVE_RECURSE
  "CMakeFiles/learn_wmethod_test.dir/learn/wmethod_test.cpp.o"
  "CMakeFiles/learn_wmethod_test.dir/learn/wmethod_test.cpp.o.d"
  "learn_wmethod_test"
  "learn_wmethod_test.pdb"
  "learn_wmethod_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/learn_wmethod_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
