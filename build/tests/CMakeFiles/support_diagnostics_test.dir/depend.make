# Empty dependencies file for support_diagnostics_test.
# This may be replaced when dependencies are built.
