file(REMOVE_RECURSE
  "CMakeFiles/support_diagnostics_test.dir/support/diagnostics_test.cpp.o"
  "CMakeFiles/support_diagnostics_test.dir/support/diagnostics_test.cpp.o.d"
  "support_diagnostics_test"
  "support_diagnostics_test.pdb"
  "support_diagnostics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_diagnostics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
