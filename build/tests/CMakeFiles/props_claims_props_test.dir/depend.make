# Empty dependencies file for props_claims_props_test.
# This may be replaced when dependencies are built.
