file(REMOVE_RECURSE
  "CMakeFiles/props_claims_props_test.dir/props/claims_props_test.cpp.o"
  "CMakeFiles/props_claims_props_test.dir/props/claims_props_test.cpp.o.d"
  "props_claims_props_test"
  "props_claims_props_test.pdb"
  "props_claims_props_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/props_claims_props_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
