file(REMOVE_RECURSE
  "CMakeFiles/ltlf_automaton_test.dir/ltlf/automaton_test.cpp.o"
  "CMakeFiles/ltlf_automaton_test.dir/ltlf/automaton_test.cpp.o.d"
  "ltlf_automaton_test"
  "ltlf_automaton_test.pdb"
  "ltlf_automaton_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ltlf_automaton_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
