# Empty compiler generated dependencies file for ltlf_automaton_test.
# This may be replaced when dependencies are built.
