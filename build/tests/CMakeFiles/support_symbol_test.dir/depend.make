# Empty dependencies file for support_symbol_test.
# This may be replaced when dependencies are built.
