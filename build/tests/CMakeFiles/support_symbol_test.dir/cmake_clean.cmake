file(REMOVE_RECURSE
  "CMakeFiles/support_symbol_test.dir/support/symbol_test.cpp.o"
  "CMakeFiles/support_symbol_test.dir/support/symbol_test.cpp.o.d"
  "support_symbol_test"
  "support_symbol_test.pdb"
  "support_symbol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_symbol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
