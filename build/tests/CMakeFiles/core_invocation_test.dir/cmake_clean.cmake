file(REMOVE_RECURSE
  "CMakeFiles/core_invocation_test.dir/shelley/invocation_test.cpp.o"
  "CMakeFiles/core_invocation_test.dir/shelley/invocation_test.cpp.o.d"
  "core_invocation_test"
  "core_invocation_test.pdb"
  "core_invocation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_invocation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
