# Empty compiler generated dependencies file for core_invocation_test.
# This may be replaced when dependencies are built.
