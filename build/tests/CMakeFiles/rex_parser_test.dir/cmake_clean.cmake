file(REMOVE_RECURSE
  "CMakeFiles/rex_parser_test.dir/rex/parser_test.cpp.o"
  "CMakeFiles/rex_parser_test.dir/rex/parser_test.cpp.o.d"
  "rex_parser_test"
  "rex_parser_test.pdb"
  "rex_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rex_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
