file(REMOVE_RECURSE
  "CMakeFiles/ir_generator_test.dir/ir/generator_test.cpp.o"
  "CMakeFiles/ir_generator_test.dir/ir/generator_test.cpp.o.d"
  "ir_generator_test"
  "ir_generator_test.pdb"
  "ir_generator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
