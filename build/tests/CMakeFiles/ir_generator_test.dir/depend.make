# Empty dependencies file for ir_generator_test.
# This may be replaced when dependencies are built.
