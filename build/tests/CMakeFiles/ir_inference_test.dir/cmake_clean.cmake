file(REMOVE_RECURSE
  "CMakeFiles/ir_inference_test.dir/ir/inference_test.cpp.o"
  "CMakeFiles/ir_inference_test.dir/ir/inference_test.cpp.o.d"
  "ir_inference_test"
  "ir_inference_test.pdb"
  "ir_inference_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_inference_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
