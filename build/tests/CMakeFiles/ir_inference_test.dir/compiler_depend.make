# Empty compiler generated dependencies file for ir_inference_test.
# This may be replaced when dependencies are built.
