file(REMOVE_RECURSE
  "CMakeFiles/core_claims_test.dir/shelley/claims_test.cpp.o"
  "CMakeFiles/core_claims_test.dir/shelley/claims_test.cpp.o.d"
  "core_claims_test"
  "core_claims_test.pdb"
  "core_claims_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_claims_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
