# Empty compiler generated dependencies file for core_claims_test.
# This may be replaced when dependencies are built.
