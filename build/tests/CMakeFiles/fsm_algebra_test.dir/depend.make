# Empty dependencies file for fsm_algebra_test.
# This may be replaced when dependencies are built.
