file(REMOVE_RECURSE
  "CMakeFiles/fsm_algebra_test.dir/fsm/algebra_test.cpp.o"
  "CMakeFiles/fsm_algebra_test.dir/fsm/algebra_test.cpp.o.d"
  "fsm_algebra_test"
  "fsm_algebra_test.pdb"
  "fsm_algebra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsm_algebra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
