# Empty dependencies file for upy_exceptions_test.
# This may be replaced when dependencies are built.
