file(REMOVE_RECURSE
  "CMakeFiles/upy_exceptions_test.dir/upy/exceptions_test.cpp.o"
  "CMakeFiles/upy_exceptions_test.dir/upy/exceptions_test.cpp.o.d"
  "upy_exceptions_test"
  "upy_exceptions_test.pdb"
  "upy_exceptions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upy_exceptions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
