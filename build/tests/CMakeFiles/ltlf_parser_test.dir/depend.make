# Empty dependencies file for ltlf_parser_test.
# This may be replaced when dependencies are built.
