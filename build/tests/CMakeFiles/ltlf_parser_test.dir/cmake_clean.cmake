file(REMOVE_RECURSE
  "CMakeFiles/ltlf_parser_test.dir/ltlf/parser_test.cpp.o"
  "CMakeFiles/ltlf_parser_test.dir/ltlf/parser_test.cpp.o.d"
  "ltlf_parser_test"
  "ltlf_parser_test.pdb"
  "ltlf_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ltlf_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
