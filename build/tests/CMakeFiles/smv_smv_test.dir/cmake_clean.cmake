file(REMOVE_RECURSE
  "CMakeFiles/smv_smv_test.dir/smv/smv_test.cpp.o"
  "CMakeFiles/smv_smv_test.dir/smv/smv_test.cpp.o.d"
  "smv_smv_test"
  "smv_smv_test.pdb"
  "smv_smv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smv_smv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
