file(REMOVE_RECURSE
  "CMakeFiles/ltlf_formula_test.dir/ltlf/formula_test.cpp.o"
  "CMakeFiles/ltlf_formula_test.dir/ltlf/formula_test.cpp.o.d"
  "ltlf_formula_test"
  "ltlf_formula_test.pdb"
  "ltlf_formula_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ltlf_formula_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
