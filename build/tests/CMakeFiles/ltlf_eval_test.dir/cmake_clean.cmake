file(REMOVE_RECURSE
  "CMakeFiles/ltlf_eval_test.dir/ltlf/eval_test.cpp.o"
  "CMakeFiles/ltlf_eval_test.dir/ltlf/eval_test.cpp.o.d"
  "ltlf_eval_test"
  "ltlf_eval_test.pdb"
  "ltlf_eval_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ltlf_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
