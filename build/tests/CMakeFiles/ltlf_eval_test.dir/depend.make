# Empty dependencies file for ltlf_eval_test.
# This may be replaced when dependencies are built.
