# Empty dependencies file for bench_fig1_valve_diagram.
# This may be replaced when dependencies are built.
