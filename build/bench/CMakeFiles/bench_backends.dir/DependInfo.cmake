
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_backends.cpp" "bench/CMakeFiles/bench_backends.dir/bench_backends.cpp.o" "gcc" "bench/CMakeFiles/bench_backends.dir/bench_backends.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/shelley/CMakeFiles/shelley_core.dir/DependInfo.cmake"
  "/root/repo/build/src/viz/CMakeFiles/shelley_viz.dir/DependInfo.cmake"
  "/root/repo/build/src/smv/CMakeFiles/shelley_smv.dir/DependInfo.cmake"
  "/root/repo/build/src/learn/CMakeFiles/shelley_learn.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/shelley_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/upy/CMakeFiles/shelley_upy.dir/DependInfo.cmake"
  "/root/repo/build/src/ltlf/CMakeFiles/shelley_ltlf.dir/DependInfo.cmake"
  "/root/repo/build/src/fsm/CMakeFiles/shelley_fsm.dir/DependInfo.cmake"
  "/root/repo/build/src/rex/CMakeFiles/shelley_rex.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/shelley_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
