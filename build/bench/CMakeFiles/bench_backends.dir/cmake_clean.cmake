file(REMOVE_RECURSE
  "CMakeFiles/bench_backends.dir/bench_backends.cpp.o"
  "CMakeFiles/bench_backends.dir/bench_backends.cpp.o.d"
  "bench_backends"
  "bench_backends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_backends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
