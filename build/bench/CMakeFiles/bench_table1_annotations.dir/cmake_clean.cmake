file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_annotations.dir/bench_table1_annotations.cpp.o"
  "CMakeFiles/bench_table1_annotations.dir/bench_table1_annotations.cpp.o.d"
  "bench_table1_annotations"
  "bench_table1_annotations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_annotations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
