# Empty dependencies file for bench_table1_annotations.
# This may be replaced when dependencies are built.
