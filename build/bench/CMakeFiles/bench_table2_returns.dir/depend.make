# Empty dependencies file for bench_table2_returns.
# This may be replaced when dependencies are built.
