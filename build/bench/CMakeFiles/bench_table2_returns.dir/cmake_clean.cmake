file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_returns.dir/bench_table2_returns.cpp.o"
  "CMakeFiles/bench_table2_returns.dir/bench_table2_returns.cpp.o.d"
  "bench_table2_returns"
  "bench_table2_returns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_returns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
