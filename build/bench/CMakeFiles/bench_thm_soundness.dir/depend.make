# Empty dependencies file for bench_thm_soundness.
# This may be replaced when dependencies are built.
