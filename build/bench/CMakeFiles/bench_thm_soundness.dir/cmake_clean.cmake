file(REMOVE_RECURSE
  "CMakeFiles/bench_thm_soundness.dir/bench_thm_soundness.cpp.o"
  "CMakeFiles/bench_thm_soundness.dir/bench_thm_soundness.cpp.o.d"
  "bench_thm_soundness"
  "bench_thm_soundness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm_soundness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
