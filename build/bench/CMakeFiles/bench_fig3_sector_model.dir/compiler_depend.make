# Empty compiler generated dependencies file for bench_fig3_sector_model.
# This may be replaced when dependencies are built.
