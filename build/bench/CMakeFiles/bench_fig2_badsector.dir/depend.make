# Empty dependencies file for bench_fig2_badsector.
# This may be replaced when dependencies are built.
