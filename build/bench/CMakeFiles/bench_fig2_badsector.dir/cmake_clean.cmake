file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_badsector.dir/bench_fig2_badsector.cpp.o"
  "CMakeFiles/bench_fig2_badsector.dir/bench_fig2_badsector.cpp.o.d"
  "bench_fig2_badsector"
  "bench_fig2_badsector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_badsector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
