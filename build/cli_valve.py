@sys
class Valve:
    @op_initial
    def test(self):
        if x:
            return ["open"]
        else:
            return ["clean"]

    @op
    def open(self):
        return ["close"]

    @op_final
    def close(self):
        return ["test"]

    @op_final
    def clean(self):
        return ["test"]
