# Empty compiler generated dependencies file for smv_export.
# This may be replaced when dependencies are built.
