# Empty compiler generated dependencies file for spec_refactor.
# This may be replaced when dependencies are built.
