file(REMOVE_RECURSE
  "CMakeFiles/spec_refactor.dir/spec_refactor.cpp.o"
  "CMakeFiles/spec_refactor.dir/spec_refactor.cpp.o.d"
  "spec_refactor"
  "spec_refactor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spec_refactor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
