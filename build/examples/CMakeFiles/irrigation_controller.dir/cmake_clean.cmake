file(REMOVE_RECURSE
  "CMakeFiles/irrigation_controller.dir/irrigation_controller.cpp.o"
  "CMakeFiles/irrigation_controller.dir/irrigation_controller.cpp.o.d"
  "irrigation_controller"
  "irrigation_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irrigation_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
