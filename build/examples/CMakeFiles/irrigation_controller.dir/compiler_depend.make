# Empty compiler generated dependencies file for irrigation_controller.
# This may be replaced when dependencies are built.
