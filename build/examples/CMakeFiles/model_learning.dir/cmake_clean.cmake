file(REMOVE_RECURSE
  "CMakeFiles/model_learning.dir/model_learning.cpp.o"
  "CMakeFiles/model_learning.dir/model_learning.cpp.o.d"
  "model_learning"
  "model_learning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_learning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
