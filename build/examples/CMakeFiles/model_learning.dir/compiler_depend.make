# Empty compiler generated dependencies file for model_learning.
# This may be replaced when dependencies are built.
