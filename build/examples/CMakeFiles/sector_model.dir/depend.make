# Empty dependencies file for sector_model.
# This may be replaced when dependencies are built.
