file(REMOVE_RECURSE
  "CMakeFiles/sector_model.dir/sector_model.cpp.o"
  "CMakeFiles/sector_model.dir/sector_model.cpp.o.d"
  "sector_model"
  "sector_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sector_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
