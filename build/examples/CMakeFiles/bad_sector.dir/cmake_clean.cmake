file(REMOVE_RECURSE
  "CMakeFiles/bad_sector.dir/bad_sector.cpp.o"
  "CMakeFiles/bad_sector.dir/bad_sector.cpp.o.d"
  "bad_sector"
  "bad_sector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bad_sector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
