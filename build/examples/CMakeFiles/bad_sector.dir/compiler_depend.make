# Empty compiler generated dependencies file for bad_sector.
# This may be replaced when dependencies are built.
