# Empty dependencies file for shelley_learn.
# This may be replaced when dependencies are built.
