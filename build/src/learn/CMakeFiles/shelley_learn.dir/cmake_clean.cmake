file(REMOVE_RECURSE
  "CMakeFiles/shelley_learn.dir/lstar.cpp.o"
  "CMakeFiles/shelley_learn.dir/lstar.cpp.o.d"
  "libshelley_learn.a"
  "libshelley_learn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shelley_learn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
