file(REMOVE_RECURSE
  "libshelley_learn.a"
)
