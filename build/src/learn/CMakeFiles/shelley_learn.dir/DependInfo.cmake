
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/learn/lstar.cpp" "src/learn/CMakeFiles/shelley_learn.dir/lstar.cpp.o" "gcc" "src/learn/CMakeFiles/shelley_learn.dir/lstar.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/shelley_support.dir/DependInfo.cmake"
  "/root/repo/build/src/fsm/CMakeFiles/shelley_fsm.dir/DependInfo.cmake"
  "/root/repo/build/src/rex/CMakeFiles/shelley_rex.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
