# Empty compiler generated dependencies file for shelley_learn.
# This may be replaced when dependencies are built.
