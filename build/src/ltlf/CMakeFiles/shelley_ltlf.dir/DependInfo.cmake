
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ltlf/automaton.cpp" "src/ltlf/CMakeFiles/shelley_ltlf.dir/automaton.cpp.o" "gcc" "src/ltlf/CMakeFiles/shelley_ltlf.dir/automaton.cpp.o.d"
  "/root/repo/src/ltlf/eval.cpp" "src/ltlf/CMakeFiles/shelley_ltlf.dir/eval.cpp.o" "gcc" "src/ltlf/CMakeFiles/shelley_ltlf.dir/eval.cpp.o.d"
  "/root/repo/src/ltlf/formula.cpp" "src/ltlf/CMakeFiles/shelley_ltlf.dir/formula.cpp.o" "gcc" "src/ltlf/CMakeFiles/shelley_ltlf.dir/formula.cpp.o.d"
  "/root/repo/src/ltlf/parser.cpp" "src/ltlf/CMakeFiles/shelley_ltlf.dir/parser.cpp.o" "gcc" "src/ltlf/CMakeFiles/shelley_ltlf.dir/parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/shelley_support.dir/DependInfo.cmake"
  "/root/repo/build/src/fsm/CMakeFiles/shelley_fsm.dir/DependInfo.cmake"
  "/root/repo/build/src/rex/CMakeFiles/shelley_rex.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
