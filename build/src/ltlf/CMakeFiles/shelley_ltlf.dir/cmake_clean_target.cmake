file(REMOVE_RECURSE
  "libshelley_ltlf.a"
)
