file(REMOVE_RECURSE
  "CMakeFiles/shelley_ltlf.dir/automaton.cpp.o"
  "CMakeFiles/shelley_ltlf.dir/automaton.cpp.o.d"
  "CMakeFiles/shelley_ltlf.dir/eval.cpp.o"
  "CMakeFiles/shelley_ltlf.dir/eval.cpp.o.d"
  "CMakeFiles/shelley_ltlf.dir/formula.cpp.o"
  "CMakeFiles/shelley_ltlf.dir/formula.cpp.o.d"
  "CMakeFiles/shelley_ltlf.dir/parser.cpp.o"
  "CMakeFiles/shelley_ltlf.dir/parser.cpp.o.d"
  "libshelley_ltlf.a"
  "libshelley_ltlf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shelley_ltlf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
