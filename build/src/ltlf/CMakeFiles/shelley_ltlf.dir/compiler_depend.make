# Empty compiler generated dependencies file for shelley_ltlf.
# This may be replaced when dependencies are built.
