# Empty compiler generated dependencies file for shelley_fsm.
# This may be replaced when dependencies are built.
