
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fsm/dfa.cpp" "src/fsm/CMakeFiles/shelley_fsm.dir/dfa.cpp.o" "gcc" "src/fsm/CMakeFiles/shelley_fsm.dir/dfa.cpp.o.d"
  "/root/repo/src/fsm/nfa.cpp" "src/fsm/CMakeFiles/shelley_fsm.dir/nfa.cpp.o" "gcc" "src/fsm/CMakeFiles/shelley_fsm.dir/nfa.cpp.o.d"
  "/root/repo/src/fsm/ops.cpp" "src/fsm/CMakeFiles/shelley_fsm.dir/ops.cpp.o" "gcc" "src/fsm/CMakeFiles/shelley_fsm.dir/ops.cpp.o.d"
  "/root/repo/src/fsm/thompson.cpp" "src/fsm/CMakeFiles/shelley_fsm.dir/thompson.cpp.o" "gcc" "src/fsm/CMakeFiles/shelley_fsm.dir/thompson.cpp.o.d"
  "/root/repo/src/fsm/to_regex.cpp" "src/fsm/CMakeFiles/shelley_fsm.dir/to_regex.cpp.o" "gcc" "src/fsm/CMakeFiles/shelley_fsm.dir/to_regex.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/shelley_support.dir/DependInfo.cmake"
  "/root/repo/build/src/rex/CMakeFiles/shelley_rex.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
