file(REMOVE_RECURSE
  "CMakeFiles/shelley_fsm.dir/dfa.cpp.o"
  "CMakeFiles/shelley_fsm.dir/dfa.cpp.o.d"
  "CMakeFiles/shelley_fsm.dir/nfa.cpp.o"
  "CMakeFiles/shelley_fsm.dir/nfa.cpp.o.d"
  "CMakeFiles/shelley_fsm.dir/ops.cpp.o"
  "CMakeFiles/shelley_fsm.dir/ops.cpp.o.d"
  "CMakeFiles/shelley_fsm.dir/thompson.cpp.o"
  "CMakeFiles/shelley_fsm.dir/thompson.cpp.o.d"
  "CMakeFiles/shelley_fsm.dir/to_regex.cpp.o"
  "CMakeFiles/shelley_fsm.dir/to_regex.cpp.o.d"
  "libshelley_fsm.a"
  "libshelley_fsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shelley_fsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
