file(REMOVE_RECURSE
  "libshelley_fsm.a"
)
