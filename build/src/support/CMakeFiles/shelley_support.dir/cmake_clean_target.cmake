file(REMOVE_RECURSE
  "libshelley_support.a"
)
