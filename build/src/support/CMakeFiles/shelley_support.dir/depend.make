# Empty dependencies file for shelley_support.
# This may be replaced when dependencies are built.
