file(REMOVE_RECURSE
  "CMakeFiles/shelley_support.dir/diagnostics.cpp.o"
  "CMakeFiles/shelley_support.dir/diagnostics.cpp.o.d"
  "CMakeFiles/shelley_support.dir/json.cpp.o"
  "CMakeFiles/shelley_support.dir/json.cpp.o.d"
  "CMakeFiles/shelley_support.dir/source_location.cpp.o"
  "CMakeFiles/shelley_support.dir/source_location.cpp.o.d"
  "CMakeFiles/shelley_support.dir/strings.cpp.o"
  "CMakeFiles/shelley_support.dir/strings.cpp.o.d"
  "CMakeFiles/shelley_support.dir/symbol.cpp.o"
  "CMakeFiles/shelley_support.dir/symbol.cpp.o.d"
  "libshelley_support.a"
  "libshelley_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shelley_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
