
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/shelley/annotations.cpp" "src/shelley/CMakeFiles/shelley_core.dir/annotations.cpp.o" "gcc" "src/shelley/CMakeFiles/shelley_core.dir/annotations.cpp.o.d"
  "/root/repo/src/shelley/automata.cpp" "src/shelley/CMakeFiles/shelley_core.dir/automata.cpp.o" "gcc" "src/shelley/CMakeFiles/shelley_core.dir/automata.cpp.o.d"
  "/root/repo/src/shelley/checker.cpp" "src/shelley/CMakeFiles/shelley_core.dir/checker.cpp.o" "gcc" "src/shelley/CMakeFiles/shelley_core.dir/checker.cpp.o.d"
  "/root/repo/src/shelley/compare.cpp" "src/shelley/CMakeFiles/shelley_core.dir/compare.cpp.o" "gcc" "src/shelley/CMakeFiles/shelley_core.dir/compare.cpp.o.d"
  "/root/repo/src/shelley/graph.cpp" "src/shelley/CMakeFiles/shelley_core.dir/graph.cpp.o" "gcc" "src/shelley/CMakeFiles/shelley_core.dir/graph.cpp.o.d"
  "/root/repo/src/shelley/invocation.cpp" "src/shelley/CMakeFiles/shelley_core.dir/invocation.cpp.o" "gcc" "src/shelley/CMakeFiles/shelley_core.dir/invocation.cpp.o.d"
  "/root/repo/src/shelley/lint.cpp" "src/shelley/CMakeFiles/shelley_core.dir/lint.cpp.o" "gcc" "src/shelley/CMakeFiles/shelley_core.dir/lint.cpp.o.d"
  "/root/repo/src/shelley/monitor.cpp" "src/shelley/CMakeFiles/shelley_core.dir/monitor.cpp.o" "gcc" "src/shelley/CMakeFiles/shelley_core.dir/monitor.cpp.o.d"
  "/root/repo/src/shelley/report_json.cpp" "src/shelley/CMakeFiles/shelley_core.dir/report_json.cpp.o" "gcc" "src/shelley/CMakeFiles/shelley_core.dir/report_json.cpp.o.d"
  "/root/repo/src/shelley/sampler.cpp" "src/shelley/CMakeFiles/shelley_core.dir/sampler.cpp.o" "gcc" "src/shelley/CMakeFiles/shelley_core.dir/sampler.cpp.o.d"
  "/root/repo/src/shelley/spec.cpp" "src/shelley/CMakeFiles/shelley_core.dir/spec.cpp.o" "gcc" "src/shelley/CMakeFiles/shelley_core.dir/spec.cpp.o.d"
  "/root/repo/src/shelley/verifier.cpp" "src/shelley/CMakeFiles/shelley_core.dir/verifier.cpp.o" "gcc" "src/shelley/CMakeFiles/shelley_core.dir/verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/shelley_support.dir/DependInfo.cmake"
  "/root/repo/build/src/rex/CMakeFiles/shelley_rex.dir/DependInfo.cmake"
  "/root/repo/build/src/fsm/CMakeFiles/shelley_fsm.dir/DependInfo.cmake"
  "/root/repo/build/src/upy/CMakeFiles/shelley_upy.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/shelley_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/ltlf/CMakeFiles/shelley_ltlf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
