file(REMOVE_RECURSE
  "libshelley_core.a"
)
