file(REMOVE_RECURSE
  "CMakeFiles/shelley_core.dir/annotations.cpp.o"
  "CMakeFiles/shelley_core.dir/annotations.cpp.o.d"
  "CMakeFiles/shelley_core.dir/automata.cpp.o"
  "CMakeFiles/shelley_core.dir/automata.cpp.o.d"
  "CMakeFiles/shelley_core.dir/checker.cpp.o"
  "CMakeFiles/shelley_core.dir/checker.cpp.o.d"
  "CMakeFiles/shelley_core.dir/compare.cpp.o"
  "CMakeFiles/shelley_core.dir/compare.cpp.o.d"
  "CMakeFiles/shelley_core.dir/graph.cpp.o"
  "CMakeFiles/shelley_core.dir/graph.cpp.o.d"
  "CMakeFiles/shelley_core.dir/invocation.cpp.o"
  "CMakeFiles/shelley_core.dir/invocation.cpp.o.d"
  "CMakeFiles/shelley_core.dir/lint.cpp.o"
  "CMakeFiles/shelley_core.dir/lint.cpp.o.d"
  "CMakeFiles/shelley_core.dir/monitor.cpp.o"
  "CMakeFiles/shelley_core.dir/monitor.cpp.o.d"
  "CMakeFiles/shelley_core.dir/report_json.cpp.o"
  "CMakeFiles/shelley_core.dir/report_json.cpp.o.d"
  "CMakeFiles/shelley_core.dir/sampler.cpp.o"
  "CMakeFiles/shelley_core.dir/sampler.cpp.o.d"
  "CMakeFiles/shelley_core.dir/spec.cpp.o"
  "CMakeFiles/shelley_core.dir/spec.cpp.o.d"
  "CMakeFiles/shelley_core.dir/verifier.cpp.o"
  "CMakeFiles/shelley_core.dir/verifier.cpp.o.d"
  "libshelley_core.a"
  "libshelley_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shelley_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
