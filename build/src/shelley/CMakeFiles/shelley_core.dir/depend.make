# Empty dependencies file for shelley_core.
# This may be replaced when dependencies are built.
