# Empty compiler generated dependencies file for shelley_ir.
# This may be replaced when dependencies are built.
