file(REMOVE_RECURSE
  "CMakeFiles/shelley_ir.dir/generator.cpp.o"
  "CMakeFiles/shelley_ir.dir/generator.cpp.o.d"
  "CMakeFiles/shelley_ir.dir/inference.cpp.o"
  "CMakeFiles/shelley_ir.dir/inference.cpp.o.d"
  "CMakeFiles/shelley_ir.dir/lowering.cpp.o"
  "CMakeFiles/shelley_ir.dir/lowering.cpp.o.d"
  "CMakeFiles/shelley_ir.dir/program.cpp.o"
  "CMakeFiles/shelley_ir.dir/program.cpp.o.d"
  "CMakeFiles/shelley_ir.dir/semantics.cpp.o"
  "CMakeFiles/shelley_ir.dir/semantics.cpp.o.d"
  "libshelley_ir.a"
  "libshelley_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shelley_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
