file(REMOVE_RECURSE
  "libshelley_ir.a"
)
