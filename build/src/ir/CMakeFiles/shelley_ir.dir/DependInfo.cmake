
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/generator.cpp" "src/ir/CMakeFiles/shelley_ir.dir/generator.cpp.o" "gcc" "src/ir/CMakeFiles/shelley_ir.dir/generator.cpp.o.d"
  "/root/repo/src/ir/inference.cpp" "src/ir/CMakeFiles/shelley_ir.dir/inference.cpp.o" "gcc" "src/ir/CMakeFiles/shelley_ir.dir/inference.cpp.o.d"
  "/root/repo/src/ir/lowering.cpp" "src/ir/CMakeFiles/shelley_ir.dir/lowering.cpp.o" "gcc" "src/ir/CMakeFiles/shelley_ir.dir/lowering.cpp.o.d"
  "/root/repo/src/ir/program.cpp" "src/ir/CMakeFiles/shelley_ir.dir/program.cpp.o" "gcc" "src/ir/CMakeFiles/shelley_ir.dir/program.cpp.o.d"
  "/root/repo/src/ir/semantics.cpp" "src/ir/CMakeFiles/shelley_ir.dir/semantics.cpp.o" "gcc" "src/ir/CMakeFiles/shelley_ir.dir/semantics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/shelley_support.dir/DependInfo.cmake"
  "/root/repo/build/src/rex/CMakeFiles/shelley_rex.dir/DependInfo.cmake"
  "/root/repo/build/src/upy/CMakeFiles/shelley_upy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
