
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/smv/parser.cpp" "src/smv/CMakeFiles/shelley_smv.dir/parser.cpp.o" "gcc" "src/smv/CMakeFiles/shelley_smv.dir/parser.cpp.o.d"
  "/root/repo/src/smv/smv.cpp" "src/smv/CMakeFiles/shelley_smv.dir/smv.cpp.o" "gcc" "src/smv/CMakeFiles/shelley_smv.dir/smv.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fsm/CMakeFiles/shelley_fsm.dir/DependInfo.cmake"
  "/root/repo/build/src/ltlf/CMakeFiles/shelley_ltlf.dir/DependInfo.cmake"
  "/root/repo/build/src/rex/CMakeFiles/shelley_rex.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/shelley_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
