file(REMOVE_RECURSE
  "CMakeFiles/shelley_smv.dir/parser.cpp.o"
  "CMakeFiles/shelley_smv.dir/parser.cpp.o.d"
  "CMakeFiles/shelley_smv.dir/smv.cpp.o"
  "CMakeFiles/shelley_smv.dir/smv.cpp.o.d"
  "libshelley_smv.a"
  "libshelley_smv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shelley_smv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
