file(REMOVE_RECURSE
  "libshelley_smv.a"
)
