# Empty compiler generated dependencies file for shelley_smv.
# This may be replaced when dependencies are built.
