file(REMOVE_RECURSE
  "CMakeFiles/shelley_rex.dir/derivative.cpp.o"
  "CMakeFiles/shelley_rex.dir/derivative.cpp.o.d"
  "CMakeFiles/shelley_rex.dir/equivalence.cpp.o"
  "CMakeFiles/shelley_rex.dir/equivalence.cpp.o.d"
  "CMakeFiles/shelley_rex.dir/parser.cpp.o"
  "CMakeFiles/shelley_rex.dir/parser.cpp.o.d"
  "CMakeFiles/shelley_rex.dir/regex.cpp.o"
  "CMakeFiles/shelley_rex.dir/regex.cpp.o.d"
  "libshelley_rex.a"
  "libshelley_rex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shelley_rex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
