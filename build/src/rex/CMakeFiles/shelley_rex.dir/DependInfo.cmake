
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rex/derivative.cpp" "src/rex/CMakeFiles/shelley_rex.dir/derivative.cpp.o" "gcc" "src/rex/CMakeFiles/shelley_rex.dir/derivative.cpp.o.d"
  "/root/repo/src/rex/equivalence.cpp" "src/rex/CMakeFiles/shelley_rex.dir/equivalence.cpp.o" "gcc" "src/rex/CMakeFiles/shelley_rex.dir/equivalence.cpp.o.d"
  "/root/repo/src/rex/parser.cpp" "src/rex/CMakeFiles/shelley_rex.dir/parser.cpp.o" "gcc" "src/rex/CMakeFiles/shelley_rex.dir/parser.cpp.o.d"
  "/root/repo/src/rex/regex.cpp" "src/rex/CMakeFiles/shelley_rex.dir/regex.cpp.o" "gcc" "src/rex/CMakeFiles/shelley_rex.dir/regex.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/shelley_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
