file(REMOVE_RECURSE
  "libshelley_rex.a"
)
