# Empty compiler generated dependencies file for shelley_rex.
# This may be replaced when dependencies are built.
