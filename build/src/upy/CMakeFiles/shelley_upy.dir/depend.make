# Empty dependencies file for shelley_upy.
# This may be replaced when dependencies are built.
