file(REMOVE_RECURSE
  "CMakeFiles/shelley_upy.dir/ast.cpp.o"
  "CMakeFiles/shelley_upy.dir/ast.cpp.o.d"
  "CMakeFiles/shelley_upy.dir/lexer.cpp.o"
  "CMakeFiles/shelley_upy.dir/lexer.cpp.o.d"
  "CMakeFiles/shelley_upy.dir/parser.cpp.o"
  "CMakeFiles/shelley_upy.dir/parser.cpp.o.d"
  "CMakeFiles/shelley_upy.dir/token.cpp.o"
  "CMakeFiles/shelley_upy.dir/token.cpp.o.d"
  "libshelley_upy.a"
  "libshelley_upy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shelley_upy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
