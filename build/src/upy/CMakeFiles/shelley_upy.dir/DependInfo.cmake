
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/upy/ast.cpp" "src/upy/CMakeFiles/shelley_upy.dir/ast.cpp.o" "gcc" "src/upy/CMakeFiles/shelley_upy.dir/ast.cpp.o.d"
  "/root/repo/src/upy/lexer.cpp" "src/upy/CMakeFiles/shelley_upy.dir/lexer.cpp.o" "gcc" "src/upy/CMakeFiles/shelley_upy.dir/lexer.cpp.o.d"
  "/root/repo/src/upy/parser.cpp" "src/upy/CMakeFiles/shelley_upy.dir/parser.cpp.o" "gcc" "src/upy/CMakeFiles/shelley_upy.dir/parser.cpp.o.d"
  "/root/repo/src/upy/token.cpp" "src/upy/CMakeFiles/shelley_upy.dir/token.cpp.o" "gcc" "src/upy/CMakeFiles/shelley_upy.dir/token.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/shelley_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
