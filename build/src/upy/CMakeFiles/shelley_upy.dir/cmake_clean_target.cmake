file(REMOVE_RECURSE
  "libshelley_upy.a"
)
