file(REMOVE_RECURSE
  "CMakeFiles/shelley_viz.dir/dot.cpp.o"
  "CMakeFiles/shelley_viz.dir/dot.cpp.o.d"
  "libshelley_viz.a"
  "libshelley_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shelley_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
