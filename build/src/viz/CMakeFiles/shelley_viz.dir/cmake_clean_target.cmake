file(REMOVE_RECURSE
  "libshelley_viz.a"
)
