# Empty compiler generated dependencies file for shelley_viz.
# This may be replaced when dependencies are built.
