file(REMOVE_RECURSE
  "CMakeFiles/shelleyc.dir/shelleyc.cpp.o"
  "CMakeFiles/shelleyc.dir/shelleyc.cpp.o.d"
  "shelleyc"
  "shelleyc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shelleyc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
