# Empty dependencies file for shelleyc.
# This may be replaced when dependencies are built.
