#include "ir/lowering.hpp"

#include <gtest/gtest.h>

#include "ir/inference.hpp"
#include "rex/equivalence.hpp"
#include "rex/parser.hpp"
#include "support/guard.hpp"
#include "upy/parser.hpp"

namespace shelley::ir {
namespace {

class LoweringTest : public ::testing::Test {
 protected:
  /// Parses a method body (as statements of method m) and lowers it with
  /// fields a and b tracked.
  Program lower_(const std::string& body_lines) {
    std::string source = "class C:\n    def m(self):\n";
    source += body_lines;
    module_ = upy::parse_module(source);
    LoweringContext context;
    context.tracked_fields = {"a", "b"};
    context.symbols = &table_;
    context.diagnostics = &diagnostics_;
    next_id_ = 0;
    context.next_return_id = &next_id_;
    return lower_block(module_.classes.at(0).methods.at(0).body, context);
  }

  std::string text_(const Program& p) { return to_string(p, table_); }

  bool behavior_is_(const Program& p, const char* expected_regex) {
    return rex::equivalent(infer_simplified(p),
                           rex::parse(expected_regex, table_));
  }

  upy::Module module_;
  SymbolTable table_;
  DiagnosticEngine diagnostics_;
  std::uint32_t next_id_ = 0;
};

TEST_F(LoweringTest, TrackedCallBecomesEvent) {
  const Program p = lower_("        self.a.open()\n");
  EXPECT_EQ(text_(p), "a.open()");
}

TEST_F(LoweringTest, UntrackedStatementsBecomeSkip) {
  const Program p = lower_(
      "        x = 1\n"
      "        print(\"hi\")\n"
      "        self.led.on()\n"
      "        pass\n");
  EXPECT_EQ(p->kind(), Kind::kSkip);
}

TEST_F(LoweringTest, SequencesDropInterleavedSkips) {
  const Program p = lower_(
      "        x = 1\n"
      "        self.a.open()\n"
      "        y = 2\n"
      "        self.b.close()\n");
  EXPECT_EQ(text_(p), "a.open(); b.close()");
}

TEST_F(LoweringTest, EvaluationOrderArgsBeforeCall) {
  // b.read() is an argument of a.write(): its event comes first.
  const Program p = lower_("        self.a.write(self.b.read())\n");
  EXPECT_EQ(text_(p), "b.read(); a.write()");
}

TEST_F(LoweringTest, AssignmentEvaluatesRhs) {
  const Program p = lower_("        x = self.a.test()\n");
  EXPECT_EQ(text_(p), "a.test()");
}

TEST_F(LoweringTest, ReturnWithoutEventsIsBareReturn) {
  const Program p = lower_("        return [\"m\"]\n");
  EXPECT_EQ(p->kind(), Kind::kReturn);
}

TEST_F(LoweringTest, ReturnWithCallEmitsEventThenReturn) {
  const Program p = lower_("        return [\"m\"], self.a.test()\n");
  EXPECT_EQ(text_(p), "a.test(); return");
}

TEST_F(LoweringTest, ReturnIdsFollowSourceOrder) {
  const Program p = lower_(
      "        if x:\n"
      "            return [\"m\"]\n"
      "        return []\n");
  // p = if(★){return#0} else {skip}; return#1
  const Behavior b = analyze(p);
  ASSERT_EQ(b.returned.size(), 2u);
  EXPECT_EQ(b.returned[0].exit_id, 1u);  // fall-through return, prefixed form
  EXPECT_EQ(b.returned[1].exit_id, 0u);  // early return listed second by seq
  EXPECT_EQ(next_id_, 2u);
}

TEST_F(LoweringTest, IfWithEventsInCondition) {
  const Program p = lower_(
      "        if self.a.test() == [\"open\"]:\n"
      "            self.a.open()\n"
      "        else:\n"
      "            self.a.clean()\n");
  EXPECT_EQ(text_(p),
            "a.test(); if(★){ a.open() } else { a.clean() }");
}

TEST_F(LoweringTest, ElifChainsNest) {
  const Program p = lower_(
      "        if x:\n"
      "            self.a.open()\n"
      "        elif y:\n"
      "            self.a.clean()\n"
      "        else:\n"
      "            self.a.close()\n");
  EXPECT_EQ(text_(p),
            "if(★){ a.open() } else { if(★){ a.clean() } else { a.close() } }");
}

TEST_F(LoweringTest, WhileWithoutConditionEventsIsPlainLoop) {
  const Program p = lower_(
      "        while x < 3:\n"
      "            self.a.open()\n");
  EXPECT_EQ(text_(p), "loop(★){ a.open() }");
}

TEST_F(LoweringTest, WhileWithConditionEventsReevaluatesPerIteration) {
  const Program p = lower_(
      "        while self.a.test():\n"
      "            self.a.open()\n");
  // cond; loop(★){ body; cond }
  EXPECT_EQ(text_(p), "a.test(); loop(★){ a.open(); a.test() }");
}

TEST_F(LoweringTest, ForLoopIteratesBody) {
  const Program p = lower_(
      "        for i in range(10):\n"
      "            self.b.step()\n");
  EXPECT_EQ(text_(p), "loop(★){ b.step() }");
}

TEST_F(LoweringTest, ForLoopWithEventsInIterable) {
  const Program p = lower_(
      "        for i in self.a.items():\n"
      "            self.b.step()\n");
  EXPECT_EQ(text_(p), "a.items(); loop(★){ b.step() }");
}

TEST_F(LoweringTest, MatchBecomesSubjectThenBranches) {
  const Program p = lower_(
      "        match self.a.test():\n"
      "            case [\"open\"]:\n"
      "                self.a.open()\n"
      "            case [\"clean\"]:\n"
      "                self.a.clean()\n");
  EXPECT_EQ(text_(p),
            "a.test(); if(★){ a.open() } else { a.clean() }");
}

TEST_F(LoweringTest, MatchWithThreeCasesNestsBranches) {
  const Program p = lower_(
      "        match self.a.test():\n"
      "            case [\"x\"]:\n"
      "                self.a.x()\n"
      "            case [\"y\"]:\n"
      "                self.a.y()\n"
      "            case _:\n"
      "                self.a.z()\n");
  EXPECT_EQ(text_(p),
            "a.test(); if(★){ a.x() } else { if(★){ a.y() } else { a.z() } }");
}

TEST_F(LoweringTest, MatchWithSingleCaseIsJustTheBody) {
  const Program p = lower_(
      "        match self.a.test():\n"
      "            case _:\n"
      "                self.a.open()\n");
  EXPECT_EQ(text_(p), "a.test(); a.open()");
}

TEST_F(LoweringTest, BreakIsReportedAndSkipped) {
  const Program p = lower_(
      "        while x:\n"
      "            break\n");
  EXPECT_EQ(text_(p), "loop(★){ skip }");
  EXPECT_TRUE(diagnostics_.has_errors());
}

TEST_F(LoweringTest, EndToEndBehaviorOfValveUser) {
  const Program p = lower_(
      "        match self.a.test():\n"
      "            case [\"open\"]:\n"
      "                self.a.open()\n"
      "                self.a.close()\n"
      "            case [\"clean\"]:\n"
      "                self.a.clean()\n"
      "        return []\n");
  EXPECT_TRUE(behavior_is_(
      p, "a.test (a.open a.close + a.clean)"));
}

TEST_F(LoweringTest, NestedCallsOnlyTrackedReceiversCount) {
  const Program p = lower_("        self.led.show(self.a.test())\n");
  EXPECT_EQ(text_(p), "a.test()");
}

TEST_F(LoweringTest, TrackedCallEventDecoding) {
  LoweringContext context;
  context.tracked_fields = {"a"};
  context.symbols = &table_;
  const auto tracked =
      tracked_call_event(upy::parse_expression("self.a.open()"), context);
  ASSERT_TRUE(tracked.has_value());
  EXPECT_EQ(table_.name(*tracked), "a.open");
  EXPECT_FALSE(tracked_call_event(upy::parse_expression("self.x.open()"),
                                  context)
                   .has_value());
  EXPECT_FALSE(tracked_call_event(upy::parse_expression("a.open()"), context)
                   .has_value());
  EXPECT_FALSE(
      tracked_call_event(upy::parse_expression("self.a.open"), context)
          .has_value());
}

TEST_F(LoweringTest, DeepExpressionTreeFailsWithDiagnosticNotCrash) {
  // A hand-built AST deeper than the recursion cap (the parser's own guard
  // keeps parsed trees shallower, so construct one directly): the lowering
  // visitor must throw a structured ResourceError, not smash the stack.
  // 4096 levels: safely past the 256-frame guard, but shallow enough that
  // the shared_ptr chain's own (recursive) destruction stays in bounds.
  upy::ExprPtr expr = std::make_shared<const upy::Expr>(
      upy::Expr{{1, 1}, upy::NameExpr{"x"}});
  for (int i = 0; i < 4096; ++i) {
    expr = std::make_shared<const upy::Expr>(
        upy::Expr{{1, 1}, upy::UnaryExpr{"-", std::move(expr)}});
  }
  LoweringContext context;
  context.tracked_fields = {"a"};
  context.symbols = &table_;
  EXPECT_THROW((void)events_in_expr(expr, context),
               support::guard::ResourceError);
}

TEST_F(LoweringTest, DeepStatementTreeFailsWithDiagnosticNotCrash) {
  upy::Block body;
  body.push_back(std::make_shared<const upy::Stmt>(
      upy::Stmt{{1, 1}, upy::PassStmt{}}));
  for (int i = 0; i < 4096; ++i) {
    upy::Block outer;
    outer.push_back(std::make_shared<const upy::Stmt>(upy::Stmt{
        {1, 1}, upy::WhileStmt{nullptr, std::move(body)}}));
    body = std::move(outer);
  }
  LoweringContext context;
  context.tracked_fields = {"a"};
  context.symbols = &table_;
  EXPECT_THROW((void)lower_block(body, context),
               support::guard::ResourceError);
}

}  // namespace
}  // namespace shelley::ir
