#include "ir/inference.hpp"

#include <gtest/gtest.h>

#include "rex/derivative.hpp"
#include "rex/equivalence.hpp"
#include "rex/parser.hpp"

namespace shelley::ir {
namespace {

class InferenceTest : public ::testing::Test {
 protected:
  rex::Regex rex_(const char* text) { return rex::parse(text, table_); }

  SymbolTable table_;
  Symbol a_ = table_.intern("a");
  Symbol b_ = table_.intern("b");
  Symbol c_ = table_.intern("c");
};

// -- The defining equations of Figure 4, case by case ------------------------

TEST_F(InferenceTest, CallCase) {
  const Behavior b = analyze(call(a_));
  EXPECT_TRUE(rex::structurally_equal(b.ongoing, rex::symbol(a_)));
  EXPECT_TRUE(b.returned.empty());
}

TEST_F(InferenceTest, SkipCase) {
  const Behavior b = analyze(skip());
  EXPECT_EQ(b.ongoing->kind(), rex::Kind::kEpsilon);
  EXPECT_TRUE(b.returned.empty());
}

TEST_F(InferenceTest, ReturnCase) {
  const Behavior b = analyze(ret());
  EXPECT_EQ(b.ongoing->kind(), rex::Kind::kEmpty);
  ASSERT_EQ(b.returned.size(), 1u);
  EXPECT_EQ(b.returned[0].regex->kind(), rex::Kind::kEpsilon);
}

TEST_F(InferenceTest, SeqCase) {
  // ⟦a(); return⟧ = (a·∅, {a·ε})
  const Behavior b = analyze(seq(call(a_), ret()));
  EXPECT_TRUE(rex::structurally_equal(
      b.ongoing, rex::concat(rex::symbol(a_), rex::empty())));
  ASSERT_EQ(b.returned.size(), 1u);
  EXPECT_TRUE(rex::structurally_equal(
      b.returned[0].regex, rex::concat(rex::symbol(a_), rex::epsilon())));
}

TEST_F(InferenceTest, SeqCaseKeepsEarlyReturnsOfHead) {
  // ⟦(if(★){return} else {skip}); b()⟧: s contains both the early ε and
  // the prefixed returns of the tail (none here).
  const Program p = seq(branch(ret(), skip()), call(b_));
  const Behavior b = analyze(p);
  ASSERT_EQ(b.returned.size(), 1u);
  EXPECT_EQ(b.returned[0].regex->kind(), rex::Kind::kEpsilon);
}

TEST_F(InferenceTest, IfCase) {
  // ⟦if(★){a()} else {b()}⟧ = (a+b, ∅)
  const Behavior b = analyze(branch(call(a_), call(b_)));
  EXPECT_TRUE(rex::structurally_equal(
      b.ongoing, rex::alt(rex::symbol(a_), rex::symbol(b_))));
  EXPECT_TRUE(b.returned.empty());
}

TEST_F(InferenceTest, LoopCase) {
  // ⟦loop(★){a()}⟧ = (a*, ∅)
  const Behavior b = analyze(loop(call(a_)));
  EXPECT_TRUE(rex::structurally_equal(b.ongoing, rex::star(rex::symbol(a_))));
  EXPECT_TRUE(b.returned.empty());
}

TEST_F(InferenceTest, LoopCasePrefixesReturnedBehaviors) {
  // ⟦loop(★){a(); return}⟧ = ((a·∅)*, {(a·∅)*·(a·ε)})
  const Behavior b = analyze(loop(seq(call(a_), ret())));
  const rex::Regex a_empty = rex::concat(rex::symbol(a_), rex::empty());
  EXPECT_TRUE(rex::structurally_equal(b.ongoing, rex::star(a_empty)));
  ASSERT_EQ(b.returned.size(), 1u);
  EXPECT_TRUE(rex::structurally_equal(
      b.returned[0].regex,
      rex::concat(rex::star(a_empty),
                  rex::concat(rex::symbol(a_), rex::epsilon()))));
}

// -- Example 3, pinned to the exact structure printed in the paper ----------

TEST_F(InferenceTest, PaperExample3ExactShape) {
  // ⟦loop(★){a(); if(★){b(); return} else {c()}}⟧ =
  //   ((a·((b·∅)+c))*, {(a·((b·∅)+c))*·a·b})
  const Program p = loop(
      seq(call(a_), branch(seq(call(b_), ret()), call(c_))));
  const Behavior behavior = analyze(p);

  // Note: our ⟦seq⟧ composes b1.ongoing with nested concat exactly as the
  // rule states; the returned element is r1*·(a·(b·ε)) before any
  // simplification, which the paper abbreviates to r1*·a·b.
  const rex::Regex body_ongoing = rex::concat(
      rex::symbol(a_),
      rex::alt(rex::concat(rex::symbol(b_), rex::empty()), rex::symbol(c_)));
  EXPECT_TRUE(rex::structurally_equal(behavior.ongoing,
                                      rex::star(body_ongoing)));
  EXPECT_EQ(rex::to_string(behavior.ongoing, table_), "(a · (b · ∅ + c))*");

  ASSERT_EQ(behavior.returned.size(), 1u);
  // Language-wise the returned behavior is exactly (a·((b·∅)+c))*·a·b.
  EXPECT_TRUE(rex::equivalent(behavior.returned[0].regex,
                              rex_("(a (b void + c))* a b")));
  // And its printed form only differs from the paper by the ε the paper
  // elides: (a · (b · ∅ + c))* · a · (b · ε).
  EXPECT_EQ(rex::to_string(behavior.returned[0].regex, table_),
            "(a · (b · ∅ + c))* · a · b · ε");
}

TEST_F(InferenceTest, PaperExample3InferMergesBothComponents) {
  const Program p = loop(
      seq(call(a_), branch(seq(call(b_), ret()), call(c_))));
  EXPECT_TRUE(rex::equivalent(
      infer(p), rex_("(a (b void + c))* + (a (b void + c))* a b")));
  EXPECT_TRUE(rex::equivalent(
      infer_simplified(p), rex_("(a c)* + (a c)* a b")));
}

// -- Exit-id routing ----------------------------------------------------------

TEST_F(InferenceTest, ExitIdsSurviveAnalysis) {
  // if(★){a(); return#0} else {b(); return#1}
  const Program p = branch(seq(call(a_), ret_with_id(0)),
                           seq(call(b_), ret_with_id(1)));
  const Behavior behavior = analyze(p);
  ASSERT_EQ(behavior.returned.size(), 2u);
  EXPECT_EQ(behavior.returned[0].exit_id, 0u);
  EXPECT_EQ(behavior.returned[1].exit_id, 1u);
  EXPECT_TRUE(rex::equivalent(behavior.returned[0].regex, rex_("a")));
  EXPECT_TRUE(rex::equivalent(behavior.returned[1].regex, rex_("b")));
}

TEST_F(InferenceTest, SameExitIdThroughLoopKeepsTag) {
  const Program p = loop(seq(call(a_), ret_with_id(3)));
  const Behavior behavior = analyze(p);
  ASSERT_EQ(behavior.returned.size(), 1u);
  EXPECT_EQ(behavior.returned[0].exit_id, 3u);
}

TEST_F(InferenceTest, DuplicateReturnedBehaviorsAreSetLike) {
  // if(★){return#0} else {return#0}: the set s has one element.
  const Program p = branch(ret_with_id(0), ret_with_id(0));
  EXPECT_EQ(analyze(p).returned.size(), 1u);
  // Distinct ids stay distinct even with equal regexes.
  const Program q = branch(ret_with_id(0), ret_with_id(1));
  EXPECT_EQ(analyze(q).returned.size(), 2u);
}

TEST_F(InferenceTest, InferOfProgramWithoutReturnsIsOngoingOnly) {
  const Program p = seq(call(a_), loop(call(b_)));
  EXPECT_TRUE(rex::equivalent(infer(p), rex_("a b*")));
}

}  // namespace
}  // namespace shelley::ir
