#include "ir/program.hpp"

#include <gtest/gtest.h>

namespace shelley::ir {
namespace {

class IrProgramTest : public ::testing::Test {
 protected:
  SymbolTable table_;
  Symbol a_ = table_.intern("a");
  Symbol b_ = table_.intern("b");
  Symbol c_ = table_.intern("c");
};

TEST_F(IrProgramTest, FactoryKinds) {
  EXPECT_EQ(call(a_)->kind(), Kind::kCall);
  EXPECT_EQ(skip()->kind(), Kind::kSkip);
  EXPECT_EQ(ret()->kind(), Kind::kReturn);
  EXPECT_EQ(seq(skip(), skip())->kind(), Kind::kSeq);
  EXPECT_EQ(branch(skip(), skip())->kind(), Kind::kIf);
  EXPECT_EQ(loop(skip())->kind(), Kind::kLoop);
}

TEST_F(IrProgramTest, ReturnExitIds) {
  EXPECT_EQ(ret()->exit_id(), 0u);
  EXPECT_EQ(ret_with_id(7)->exit_id(), 7u);
  EXPECT_EQ(ret_with_id(7)->kind(), Kind::kReturn);
}

TEST_F(IrProgramTest, SeqOfFoldsRightNested) {
  const Program p = seq_of({call(a_), call(b_), call(c_)});
  ASSERT_EQ(p->kind(), Kind::kSeq);
  EXPECT_EQ(p->left()->kind(), Kind::kCall);
  EXPECT_EQ(p->right()->kind(), Kind::kSeq);
  EXPECT_EQ(seq_of({})->kind(), Kind::kSkip);
  EXPECT_EQ(seq_of({call(a_)})->kind(), Kind::kCall);
}

TEST_F(IrProgramTest, SizeCountsNodes) {
  EXPECT_EQ(skip()->size(), 1u);
  EXPECT_EQ(seq(call(a_), ret())->size(), 3u);
  EXPECT_EQ(loop(branch(call(a_), skip()))->size(), 4u);
}

TEST_F(IrProgramTest, AlphabetCollectsCalls) {
  const Program p = loop(seq(call(a_), branch(seq(call(b_), ret()),
                                              call(c_))));
  const auto sigma = alphabet(p);
  EXPECT_EQ(sigma.size(), 3u);
  EXPECT_TRUE(alphabet(skip()).empty());
}

TEST_F(IrProgramTest, StructuralEquality) {
  EXPECT_TRUE(structurally_equal(call(a_), call(a_)));
  EXPECT_FALSE(structurally_equal(call(a_), call(b_)));
  EXPECT_TRUE(structurally_equal(seq(call(a_), ret()), seq(call(a_), ret())));
  EXPECT_FALSE(structurally_equal(seq(call(a_), ret()),
                                  seq(ret(), call(a_))));
  EXPECT_FALSE(structurally_equal(branch(skip(), ret()), loop(skip())));
}

TEST_F(IrProgramTest, PrintingMatchesPaperNotation) {
  // The Example 1 program.
  const Program p = loop(
      seq(call(a_), branch(seq(call(b_), ret()), call(c_))));
  EXPECT_EQ(to_string(p, table_),
            "loop(★){ a(); if(★){ b(); return } else { c() } }");
  EXPECT_EQ(to_string(skip(), table_), "skip");
  EXPECT_EQ(to_string(ret(), table_), "return");
  EXPECT_EQ(to_string(call(a_), table_), "a()");
}

}  // namespace
}  // namespace shelley::ir
