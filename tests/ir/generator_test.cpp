#include "ir/generator.hpp"

#include <gtest/gtest.h>

#include "ir/semantics.hpp"

namespace shelley::ir {
namespace {

TEST(Generator, DeterministicUnderSeed) {
  SymbolTable table_a;
  SymbolTable table_b;
  GeneratorOptions options;
  ProgramGenerator first(123, options, table_a);
  ProgramGenerator second(123, options, table_b);
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(structurally_equal(first.next(), second.next()));
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  SymbolTable table;
  GeneratorOptions options;
  ProgramGenerator first(1, options, table);
  ProgramGenerator second(2, options, table);
  bool any_difference = false;
  for (int i = 0; i < 20 && !any_difference; ++i) {
    any_difference = !structurally_equal(first.next(), second.next());
  }
  EXPECT_TRUE(any_difference);
}

TEST(Generator, RespectsDepthBound) {
  SymbolTable table;
  GeneratorOptions options;
  options.max_depth = 3;
  ProgramGenerator generator(7, options, table);
  const std::function<std::size_t(const Program&)> depth =
      [&](const Program& p) -> std::size_t {
    std::size_t below = 0;
    if (p->left()) below = std::max(below, depth(p->left()));
    if (p->right()) below = std::max(below, depth(p->right()));
    return 1 + below;
  };
  for (int i = 0; i < 50; ++i) {
    EXPECT_LE(depth(generator.next()), 4u);  // max_depth interior + leaf
  }
}

TEST(Generator, RespectsAlphabetSize) {
  SymbolTable table;
  GeneratorOptions options;
  options.alphabet_size = 2;
  ProgramGenerator generator(11, options, table);
  for (int i = 0; i < 50; ++i) {
    for (Symbol s : alphabet(generator.next())) {
      const std::string& name = table.name(s);
      EXPECT_TRUE(name == "f0" || name == "f1") << name;
    }
  }
}

TEST(Generator, ZeroWeightProductionsNeverAppear) {
  SymbolTable table;
  GeneratorOptions options;
  options.loop_weight = 0;
  options.return_weight = 0;
  ProgramGenerator generator(13, options, table);
  const std::function<void(const Program&)> check =
      [&](const Program& p) {
        EXPECT_NE(p->kind(), Kind::kLoop);
        EXPECT_NE(p->kind(), Kind::kReturn);
        if (p->left()) check(p->left());
        if (p->right()) check(p->right());
      };
  for (int i = 0; i < 50; ++i) check(generator.next());
}

TEST(Generator, GeneratedProgramsAreWellFormed) {
  SymbolTable table;
  GeneratorOptions options;
  ProgramGenerator generator(17, options, table);
  for (int i = 0; i < 50; ++i) {
    const Program p = generator.next();
    // Exercise the semantics without crashing: enumerate a few traces.
    const auto traces = enumerate_traces(p, {4, 2});
    for (const Trace& trace : traces) {
      EXPECT_TRUE(derives(p, trace.word, trace.status));
    }
  }
}

}  // namespace
}  // namespace shelley::ir
