#include "ir/semantics.hpp"

#include <gtest/gtest.h>

#include "testing.hpp"

namespace shelley::ir {
namespace {

class SemanticsTest : public ::testing::Test {
 protected:
  Word word_(std::initializer_list<const char*> names) {
    return testing::word(table_, names);
  }

  SymbolTable table_;
  Symbol a_ = table_.intern("a");
  Symbol b_ = table_.intern("b");
  Symbol c_ = table_.intern("c");
  // The program of Examples 1 and 2:
  //   loop(★){ a(); if(★){ b(); return } else { c() } }
  Program example_ = loop(
      seq(call(a_), branch(seq(call(b_), ret()), call(c_))));
};

// -- Leaf rules --------------------------------------------------------------

TEST_F(SemanticsTest, RuleCall) {
  EXPECT_TRUE(derives(call(a_), {a_}, Status::kOngoing));
  EXPECT_FALSE(derives(call(a_), {a_}, Status::kReturned));
  EXPECT_FALSE(derives(call(a_), {}, Status::kOngoing));
  EXPECT_FALSE(derives(call(a_), {b_}, Status::kOngoing));
  EXPECT_FALSE(derives(call(a_), {a_, a_}, Status::kOngoing));
}

TEST_F(SemanticsTest, RuleSkip) {
  EXPECT_TRUE(derives(skip(), {}, Status::kOngoing));
  EXPECT_FALSE(derives(skip(), {}, Status::kReturned));
  EXPECT_FALSE(derives(skip(), {a_}, Status::kOngoing));
}

TEST_F(SemanticsTest, RuleReturn) {
  EXPECT_TRUE(derives(ret(), {}, Status::kReturned));
  EXPECT_FALSE(derives(ret(), {}, Status::kOngoing));
  EXPECT_FALSE(derives(ret(), {a_}, Status::kReturned));
}

// -- Sequence ----------------------------------------------------------------

TEST_F(SemanticsTest, RuleSeq2ConcatenatesOngoing) {
  const Program p = seq(call(a_), call(b_));
  EXPECT_TRUE(derives(p, {a_, b_}, Status::kOngoing));
  EXPECT_FALSE(derives(p, {a_}, Status::kOngoing));
  EXPECT_FALSE(derives(p, {b_, a_}, Status::kOngoing));
}

TEST_F(SemanticsTest, RuleSeq1EarlyReturnSkipsTail) {
  // (return); b()  -- the return discards b entirely.
  const Program p = seq(ret(), call(b_));
  EXPECT_TRUE(derives(p, {}, Status::kReturned));
  EXPECT_FALSE(derives(p, {b_}, Status::kReturned));
  EXPECT_FALSE(derives(p, {}, Status::kOngoing));
}

TEST_F(SemanticsTest, SeqPropagatesReturnStatusOfTail) {
  const Program p = seq(call(a_), ret());
  EXPECT_TRUE(derives(p, {a_}, Status::kReturned));
  EXPECT_FALSE(derives(p, {a_}, Status::kOngoing));
}

TEST_F(SemanticsTest, SeqWithBranchingEarlyReturn) {
  // if(★){return} else {skip}; b()
  const Program p = seq(branch(ret(), skip()), call(b_));
  EXPECT_TRUE(derives(p, {}, Status::kReturned));   // took the return
  EXPECT_TRUE(derives(p, {b_}, Status::kOngoing));  // took skip, then b
  EXPECT_FALSE(derives(p, {b_}, Status::kReturned));
}

// -- Conditional -------------------------------------------------------------

TEST_F(SemanticsTest, RuleIfTakesEitherBranch) {
  const Program p = branch(call(a_), call(b_));
  EXPECT_TRUE(derives(p, {a_}, Status::kOngoing));
  EXPECT_TRUE(derives(p, {b_}, Status::kOngoing));
  EXPECT_FALSE(derives(p, {a_, b_}, Status::kOngoing));
  EXPECT_FALSE(derives(p, {}, Status::kOngoing));
}

TEST_F(SemanticsTest, IfPreservesStatusPerBranch) {
  const Program p = branch(ret(), call(b_));
  EXPECT_TRUE(derives(p, {}, Status::kReturned));
  EXPECT_TRUE(derives(p, {b_}, Status::kOngoing));
  EXPECT_FALSE(derives(p, {}, Status::kOngoing));
  EXPECT_FALSE(derives(p, {b_}, Status::kReturned));
}

// -- Loop --------------------------------------------------------------------

TEST_F(SemanticsTest, RuleLoop1EmptyTrace) {
  EXPECT_TRUE(derives(loop(call(a_)), {}, Status::kOngoing));
  EXPECT_FALSE(derives(loop(call(a_)), {}, Status::kReturned));
}

TEST_F(SemanticsTest, RuleLoop3Iterates) {
  const Program p = loop(call(a_));
  EXPECT_TRUE(derives(p, {a_}, Status::kOngoing));
  EXPECT_TRUE(derives(p, {a_, a_, a_}, Status::kOngoing));
  EXPECT_FALSE(derives(p, {a_, b_}, Status::kOngoing));
}

TEST_F(SemanticsTest, RuleLoop2ReturnInsideBody) {
  const Program p = loop(seq(call(a_), ret()));
  EXPECT_TRUE(derives(p, {a_}, Status::kReturned));
  // Iterating is impossible: the body always returns after one a.
  EXPECT_FALSE(derives(p, {a_, a_}, Status::kReturned));
  EXPECT_TRUE(derives(p, {}, Status::kOngoing));
}

TEST_F(SemanticsTest, PaperExample1) {
  // 0 ⊢ [a, c, a, c] ∈ loop(★){a(); if(★){b(); return} else {c()}}
  EXPECT_TRUE(derives(example_, {a_, c_, a_, c_}, Status::kOngoing));
}

TEST_F(SemanticsTest, PaperExample2) {
  // R ⊢ [a, c, a, b] ∈ the same program.
  EXPECT_TRUE(derives(example_, {a_, c_, a_, b_}, Status::kReturned));
}

TEST_F(SemanticsTest, ExampleProgramNegativeCases) {
  // After b the loop has returned: nothing may follow.
  EXPECT_FALSE(derives(example_, {a_, b_, a_, c_}, Status::kOngoing));
  EXPECT_FALSE(derives(example_, {a_, b_, a_, c_}, Status::kReturned));
  // A trace ending mid-iteration is not derivable.
  EXPECT_FALSE(derives(example_, {a_}, Status::kOngoing));
  // The returned trace [a, b] is not an ongoing trace.
  EXPECT_FALSE(derives(example_, {a_, b_}, Status::kOngoing));
  EXPECT_TRUE(derives(example_, {a_, b_}, Status::kReturned));
}

TEST_F(SemanticsTest, InLanguageIsUnionOverStatuses) {
  EXPECT_TRUE(in_language(example_, {}));
  EXPECT_TRUE(in_language(example_, {a_, c_}));
  EXPECT_TRUE(in_language(example_, {a_, b_}));
  EXPECT_FALSE(in_language(example_, {b_}));
}

// -- Enumeration -------------------------------------------------------------

TEST_F(SemanticsTest, EnumerateLeaves) {
  EXPECT_EQ(enumerate_traces(skip(), {}),
            (std::vector<Trace>{{{}, Status::kOngoing}}));
  EXPECT_EQ(enumerate_traces(ret(), {}),
            (std::vector<Trace>{{{}, Status::kReturned}}));
  EXPECT_EQ(enumerate_traces(call(a_), {}),
            (std::vector<Trace>{{{a_}, Status::kOngoing}}));
}

TEST_F(SemanticsTest, EnumerateExampleProgram) {
  const auto traces = enumerate_traces(example_, {6, 3});
  // Spot checks from the paper.
  const Trace example1{{a_, c_, a_, c_}, Status::kOngoing};
  const Trace example2{{a_, c_, a_, b_}, Status::kReturned};
  EXPECT_NE(std::find(traces.begin(), traces.end(), example1), traces.end());
  EXPECT_NE(std::find(traces.begin(), traces.end(), example2), traces.end());
  // Everything enumerated must be derivable.
  for (const Trace& trace : traces) {
    EXPECT_TRUE(derives(example_, trace.word, trace.status))
        << testing::str(trace.word, table_);
  }
}

TEST_F(SemanticsTest, EnumerationRespectsLengthBound) {
  for (const Trace& trace : enumerate_traces(example_, {4, 8})) {
    EXPECT_LE(trace.word.size(), 4u);
  }
}

TEST_F(SemanticsTest, EnumerationIsExactForLoopFreePrograms) {
  // if(★){a(); return} else {b(); c()}
  const Program p = branch(seq(call(a_), ret()), seq(call(b_), call(c_)));
  const auto traces = enumerate_traces(p, {10, 1});
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_EQ(traces[0], (Trace{{a_}, Status::kReturned}));
  EXPECT_EQ(traces[1], (Trace{{b_, c_}, Status::kOngoing}));
}

}  // namespace
}  // namespace shelley::ir
