#include "viz/dot.hpp"

#include <gtest/gtest.h>

#include "fsm/ops.hpp"
#include "fsm/thompson.hpp"
#include "paper_sources.hpp"
#include "rex/parser.hpp"
#include "upy/parser.hpp"

namespace shelley::viz {
namespace {

class DotTest : public ::testing::Test {
 protected:
  core::ClassSpec extract_(const char* source) {
    const upy::Module module = upy::parse_module(source);
    return core::extract_class_spec(module.classes.at(0), diagnostics_);
  }
  SymbolTable table_;
  DiagnosticEngine diagnostics_;
};

TEST_F(DotTest, ValveDiagramMatchesFigure1Structure) {
  const core::ClassSpec valve = extract_(examples::kValveSource);
  const std::string dot = dot_class_diagram(valve);

  // Figure 1: test is the initial op (arrow from the start point); close
  // and clean are final (double circles); edges follow the return lists.
  EXPECT_NE(dot.find("digraph Valve"), std::string::npos);
  EXPECT_NE(dot.find("__start -> \"test\""), std::string::npos);
  EXPECT_NE(dot.find("\"close\" [shape=doublecircle]"), std::string::npos);
  EXPECT_NE(dot.find("\"clean\" [shape=doublecircle]"), std::string::npos);
  EXPECT_NE(dot.find("\"open\" [shape=circle]"), std::string::npos);
  EXPECT_NE(dot.find("\"test\" -> \"open\""), std::string::npos);
  EXPECT_NE(dot.find("\"test\" -> \"clean\""), std::string::npos);
  EXPECT_NE(dot.find("\"open\" -> \"close\""), std::string::npos);
  EXPECT_NE(dot.find("\"close\" -> \"test\""), std::string::npos);
  EXPECT_NE(dot.find("\"clean\" -> \"test\""), std::string::npos);
  // No invented edges.
  EXPECT_EQ(dot.find("\"open\" -> \"clean\""), std::string::npos);
}

TEST_F(DotTest, SectorModelMatchesFigure3Structure) {
  const core::ClassSpec sector = extract_(examples::kSectorSource);
  const core::DependencyGraph graph =
      core::DependencyGraph::build(sector, diagnostics_);
  const std::string dot = dot_dependency_graph(sector, graph);

  EXPECT_NE(dot.find("digraph Sector_model"), std::string::npos);
  // Entry nodes are boxes labelled with the method name.
  EXPECT_NE(dot.find("label=\"open_a\", shape=box"), std::string::npos);
  EXPECT_NE(dot.find("label=\"open_b\", shape=box"), std::string::npos);
  // Exit nodes show their successor lists.
  EXPECT_NE(dot.find("return [close_a, open_b]"), std::string::npos);
  EXPECT_NE(dot.find("return [clean_a]"), std::string::npos);
  EXPECT_NE(dot.find("return []"), std::string::npos);
}

TEST_F(DotTest, SystemModelRendersStatesAndEdges) {
  const core::ClassSpec sector = extract_(examples::kBadSectorSource);
  const auto behaviors =
      core::extract_behaviors(sector, table_, diagnostics_);
  const core::SystemModel model =
      core::build_system_model(sector, behaviors, table_, diagnostics_);
  const std::string dot = dot_system_model(model, table_);
  EXPECT_NE(dot.find("digraph system"), std::string::npos);
  EXPECT_NE(dot.find("label=\"open_a\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"a.test\""), std::string::npos);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);
  EXPECT_NE(dot.find("__start"), std::string::npos);
}

TEST_F(DotTest, SystemModelHighlightsCounterexampleEdges) {
  const core::ClassSpec sector = extract_(examples::kBadSectorSource);
  const auto behaviors =
      core::extract_behaviors(sector, table_, diagnostics_);
  const core::SystemModel model =
      core::build_system_model(sector, behaviors, table_, diagnostics_);
  const Word highlight{table_.intern("open_a"), table_.intern("a.test"),
                       table_.intern("a.open")};
  const std::string dot = dot_system_model(model, table_, highlight);
  EXPECT_NE(dot.find("color=red"), std::string::npos);
}

TEST_F(DotTest, NfaAndDfaDumps) {
  const rex::Regex r = rex::parse("a b + c", table_);
  const fsm::Nfa nfa = fsm::from_regex(r);
  const std::string nfa_dot = dot_nfa(nfa, table_, "g");
  EXPECT_NE(nfa_dot.find("digraph g"), std::string::npos);
  EXPECT_NE(nfa_dot.find("label=\"ε\""), std::string::npos);
  EXPECT_NE(nfa_dot.find("label=\"a\""), std::string::npos);

  const fsm::Dfa dfa = fsm::determinize(nfa);
  const std::string dfa_dot = dot_dfa(dfa, table_, "g");
  EXPECT_NE(dfa_dot.find("digraph g"), std::string::npos);
  EXPECT_EQ(dfa_dot.find("label=\"ε\""), std::string::npos);
  EXPECT_NE(dfa_dot.find("doublecircle"), std::string::npos);
}

TEST_F(DotTest, QuotesAreEscaped) {
  const core::ClassSpec valve = extract_(examples::kValveSource);
  // No raw quote-in-quote sequences that would break DOT.
  const std::string dot = dot_class_diagram(valve);
  EXPECT_EQ(dot.find("\"\"\""), std::string::npos);
}

}  // namespace
}  // namespace shelley::viz
