#include "smv/smv.hpp"

#include <gtest/gtest.h>

#include "fsm/ops.hpp"
#include "fsm/thompson.hpp"
#include "ltlf/automaton.hpp"
#include "ltlf/eval.hpp"
#include "ltlf/parser.hpp"
#include "rex/parser.hpp"

namespace shelley::smv {
namespace {

class SmvTest : public ::testing::Test {
 protected:
  fsm::Dfa dfa_(const char* regex_text) {
    return fsm::minimize(
        fsm::determinize(fsm::from_regex(rex::parse(regex_text, table_))));
  }
  SymbolTable table_;
};

TEST_F(SmvTest, MangleIsNuSmvSafe) {
  EXPECT_EQ(mangle("a.open"), "e_a_open");
  EXPECT_EQ(mangle("plain"), "e_plain");
  EXPECT_EQ(mangle("x-y z"), "e_x_y_z");
}

TEST_F(SmvTest, FromDfaCapturesStructure) {
  const fsm::Dfa dfa = dfa_("a.open a.close");
  const SmvModel model = from_dfa(dfa, table_, "m");
  EXPECT_EQ(model.module_name, "m");
  EXPECT_EQ(model.state_names.size(), dfa.state_count());
  EXPECT_EQ(model.event_labels.size(), 2u);
  EXPECT_EQ(model.initial_state, dfa.initial());
}

TEST_F(SmvTest, EmitProducesWellFormedNuSmvText) {
  SmvModel model = from_dfa(dfa_("a b"), table_, "main");
  const ltlf::Formula claim = ltlf::parse("F b", table_);
  add_ltlspec(model, claim, table_);
  const std::string text = emit(model);
  EXPECT_NE(text.find("MODULE main"), std::string::npos);
  EXPECT_NE(text.find("IVAR"), std::string::npos);
  EXPECT_NE(text.find("e__end"), std::string::npos);
  EXPECT_NE(text.find("init(state)"), std::string::npos);
  EXPECT_NE(text.find("next(state) := case"), std::string::npos);
  EXPECT_NE(text.find("LTLSPEC"), std::string::npos);
  EXPECT_NE(text.find("esac"), std::string::npos);
  // The finite-to-infinite guard: claims only constrain completed words.
  EXPECT_NE(text.find("(F is_end) ->"), std::string::npos);
}

TEST_F(SmvTest, LtlspecTranslationShapes) {
  SmvModel model = from_dfa(dfa_("a b"), table_, "main");
  EXPECT_EQ(add_ltlspec(model, ltlf::parse("a", table_), table_),
            "(event = e_a)");
  EXPECT_EQ(add_ltlspec(model, ltlf::parse("X a", table_), table_),
            "X (!is_end & (event = e_a))");
  EXPECT_EQ(add_ltlspec(model, ltlf::parse("N a", table_), table_),
            "X (is_end | (event = e_a))");
  EXPECT_EQ(add_ltlspec(model, ltlf::parse("a U b", table_), table_),
            "((!is_end & (event = e_a)) U (!is_end & (event = e_b)))");
  EXPECT_EQ(add_ltlspec(model, ltlf::parse("end", table_), table_),
            "is_end");
}

TEST_F(SmvTest, RoundTripPreservesLanguage) {
  const char* cases[] = {"a b", "(a + b)* a", "a* b*", "(a.x b.y)* + a.x"};
  for (const char* text : cases) {
    const fsm::Dfa original = dfa_(text);
    const SmvModel model = from_dfa(original, table_, "m");
    const fsm::Dfa back = to_dfa(model, table_);
    EXPECT_TRUE(fsm::equivalent(original, back)) << text;
  }
}

TEST_F(SmvTest, ModelAcceptsRunsWords) {
  const SmvModel model = from_dfa(dfa_("a b + c"), table_, "m");
  EXPECT_TRUE(model_accepts(model, {"a", "b"}));
  EXPECT_TRUE(model_accepts(model, {"c"}));
  EXPECT_FALSE(model_accepts(model, {"a"}));
  EXPECT_FALSE(model_accepts(model, {"b", "a"}));
  EXPECT_FALSE(model_accepts(model, {"unknown_event"}));
}

TEST_F(SmvTest, CheckLtlspecAgreesWithDirectPipeline) {
  const fsm::Dfa system = dfa_("a.test a.open b.open");
  const SmvModel model = from_dfa(system, table_, "m");
  const ltlf::Formula claim = ltlf::parse("(!a.open) W b.open", table_);

  const auto via_smv = check_ltlspec(model, claim, table_);
  const auto direct = ltlf::counterexample(system, claim);
  ASSERT_EQ(via_smv.has_value(), direct.has_value());
  ASSERT_TRUE(via_smv.has_value());
  // Both counterexamples must violate the claim.
  Word witness;
  for (const std::string& label : *via_smv) {
    witness.push_back(table_.intern(label));
  }
  EXPECT_FALSE(ltlf::eval(claim, witness));
}

TEST_F(SmvTest, CheckLtlspecHoldsOnSatisfyingSystem) {
  const fsm::Dfa system = dfa_("b.open a.open");
  const SmvModel model = from_dfa(system, table_, "m");
  const ltlf::Formula claim = ltlf::parse("(!a.open) W b.open", table_);
  EXPECT_FALSE(check_ltlspec(model, claim, table_).has_value());
}

TEST_F(SmvTest, EmittedTransitionTableIsTotal) {
  const SmvModel model = from_dfa(dfa_("a b"), table_, "m");
  const std::string text = emit(model);
  // One case line per (state, event) pair plus the four framing rules and
  // the TRUE fallback.
  std::size_t case_lines = 0;
  for (std::size_t pos = 0; (pos = text.find(" : ", pos)) != std::string::npos;
       ++pos) {
    ++case_lines;
  }
  EXPECT_GE(case_lines,
            model.state_names.size() * model.event_names.size() + 5);
}

}  // namespace
}  // namespace shelley::smv
