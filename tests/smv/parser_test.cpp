#include "smv/parser.hpp"

#include <gtest/gtest.h>

#include "fsm/ops.hpp"
#include "fsm/thompson.hpp"
#include "ltlf/eval.hpp"
#include "ltlf/parser.hpp"
#include "rex/parser.hpp"

namespace shelley::smv {
namespace {

class SmvParserTest : public ::testing::Test {
 protected:
  fsm::Dfa dfa_(const char* regex_text) {
    return fsm::minimize(
        fsm::determinize(fsm::from_regex(rex::parse(regex_text, table_))));
  }
  SymbolTable table_;
};

TEST_F(SmvParserTest, EmitParseRoundTripPreservesEverything) {
  const char* cases[] = {"a.x b.y", "(a.x + b.y)* a.x", "a.x* b.y*"};
  for (const char* text : cases) {
    const fsm::Dfa original = dfa_(text);
    SmvModel before = from_dfa(original, table_, "roundtrip");
    add_ltlspec(before, ltlf::parse("F a.x", table_), table_);

    const SmvModel after = parse_model(emit(before));
    EXPECT_EQ(after.module_name, "roundtrip") << text;
    EXPECT_EQ(after.state_names, before.state_names) << text;
    EXPECT_EQ(after.event_names, before.event_names) << text;
    EXPECT_EQ(after.event_labels, before.event_labels) << text;
    EXPECT_EQ(after.initial_state, before.initial_state) << text;
    EXPECT_EQ(after.accepting, before.accepting) << text;
    EXPECT_EQ(after.transitions, before.transitions) << text;
    EXPECT_EQ(after.ltlspecs, before.ltlspecs) << text;
  }
}

TEST_F(SmvParserTest, RoundTripPreservesLanguage) {
  const fsm::Dfa original = dfa_("(a.open a.close)*");
  const SmvModel model = parse_model(emit(from_dfa(original, table_, "m")));
  SymbolTable fresh;
  const fsm::Dfa recovered = to_dfa(model, fresh);
  // Compare via acceptance of sampled words rendered through labels.
  EXPECT_TRUE(model_accepts(model, {}));
  EXPECT_TRUE(model_accepts(model, {"a.open", "a.close"}));
  EXPECT_FALSE(model_accepts(model, {"a.open"}));
  EXPECT_FALSE(model_accepts(model, {"a.close", "a.open"}));
  EXPECT_EQ(recovered.state_count(), original.state_count());
}

TEST_F(SmvParserTest, ParsedModelChecksClaims) {
  const fsm::Dfa system = dfa_("a.test a.open b.open");
  SmvModel before = from_dfa(system, table_, "m");
  const ltlf::Formula claim = ltlf::parse("(!a.open) W b.open", table_);
  add_ltlspec(before, claim, table_);

  const SmvModel after = parse_model(emit(before));
  SymbolTable fresh;
  const auto witness = check_ltlspec(after, ltlf::parse("(!a.open) W b.open",
                                                        fresh),
                                     fresh);
  ASSERT_TRUE(witness.has_value());
  Word word;
  for (const std::string& label : *witness) {
    word.push_back(fresh.intern(label));
  }
  EXPECT_FALSE(ltlf::eval(ltlf::parse("(!a.open) W b.open", fresh), word));
}

TEST_F(SmvParserTest, AcceptingFalseParses) {
  // A DFA with no accepting state emits `accepting := (FALSE)`.
  SymbolTable t;
  const Symbol a = t.intern("a");
  fsm::Dfa dfa(1, {a});
  dfa.set_transition(0, 0, 0);
  const SmvModel model = parse_model(emit(from_dfa(dfa, t, "m")));
  EXPECT_FALSE(model.accepting.at(0));
}

TEST_F(SmvParserTest, MalformedInputsThrow) {
  EXPECT_THROW(parse_model(""), ParseError);
  EXPECT_THROW(parse_model("MODULE m\n"), ParseError);
  EXPECT_THROW(parse_model("VAR\n  state : {s0};\n"), ParseError);
  EXPECT_THROW(parse_model("MODULE m\nASSIGN\n  init(state) := s9;\n"
                           "VAR\n  state : {s0};\n"),
               ParseError);
}

TEST_F(SmvParserTest, EnumLinesAfterTransitionsStayInBounds) {
  // Regression (found by fuzz_frontend): a duplicated model body declares
  // extra states/events *after* the first transition rule sized the grid,
  // so later rules indexed out of bounds and crashed.  The grid must grow
  // with the declarations instead.
  const char* text =
      "MODULE main\n"
      "IVAR\n  event : {e_a};\n"
      "VAR\n  state : {s_0};\n"
      "ASSIGN\n"
      "  init(state) := s_0;\n"
      "  state = s_0 & event = e_a : s_0;\n"
      "IVAR\n  event : {e_a, e_b, e_c};\n"
      "VAR\n  state : {s_0, s_1, s_2};\n"
      "  state = s_2 & event = e_c : s_1;\n";
  const SmvModel model = parse_model(text);
  ASSERT_EQ(model.state_names.size(), 4u);  // s_0 declared twice
  ASSERT_EQ(model.transitions.size(), model.state_names.size());
  for (const auto& row : model.transitions) {
    EXPECT_EQ(row.size(), model.event_names.size());
  }
}

TEST_F(SmvParserTest, CommentsAndBlankLinesIgnored) {
  const fsm::Dfa original = dfa_("x y");
  std::string text = emit(from_dfa(original, table_, "m"));
  text = "-- a leading comment\n\n" + text + "\n-- trailing\n";
  const SmvModel model = parse_model(text);
  EXPECT_EQ(model.module_name, "m");
  EXPECT_TRUE(model_accepts(model, {"x", "y"}));
}

}  // namespace
}  // namespace shelley::smv
