#include "fsm/dfa.hpp"

#include <gtest/gtest.h>

#include "fsm/ops.hpp"
#include "fsm/thompson.hpp"
#include "rex/derivative.hpp"
#include "rex/parser.hpp"

namespace shelley::fsm {
namespace {

class DfaTest : public ::testing::Test {
 protected:
  rex::Regex parse_(const char* text) { return rex::parse(text, table_); }
  Dfa dfa_of_(const char* text) {
    return determinize(from_regex(parse_(text)));
  }
  Word word_(std::initializer_list<const char*> names) {
    Word out;
    for (const char* name : names) out.push_back(table_.intern(name));
    return out;
  }
  SymbolTable table_;
};

TEST_F(DfaTest, ConstructorValidatesAlphabet) {
  SymbolTable t;
  const Symbol a = t.intern("a");
  EXPECT_THROW(Dfa(0, {a}), std::invalid_argument);
  const Dfa dfa(1, {a});
  EXPECT_EQ(dfa.state_count(), 1u);
  EXPECT_EQ(dfa.alphabet().size(), 1u);
}

TEST_F(DfaTest, FromTableBuildsAndValidates) {
  const Symbol a = table_.intern("a");
  const Symbol b = table_.intern("b");
  std::vector<Symbol> sigma{a, b};
  std::sort(sigma.begin(), sigma.end());
  // Two states over two letters: flip state on the first letter, stay on
  // the second; only state 1 accepts.
  const Dfa dfa =
      Dfa::from_table(sigma, {1, 0, 0, 1}, {false, true}, 0);
  EXPECT_EQ(dfa.state_count(), 2u);
  EXPECT_EQ(dfa.initial(), 0u);
  EXPECT_TRUE(dfa.is_accepting(1));
  EXPECT_EQ(dfa.transition(0, 0), 1u);
  EXPECT_EQ(dfa.transition(1, 1), 1u);

  EXPECT_THROW(Dfa::from_table(sigma, {1, 0, 0}, {false, true}, 0),
               std::invalid_argument);  // table size mismatch
  EXPECT_THROW(Dfa::from_table(sigma, {1, 0, 0, 2}, {false, true}, 0),
               std::out_of_range);  // target out of range
  EXPECT_THROW(Dfa::from_table(sigma, {1, 0, 0, 1}, {false, true}, 2),
               std::out_of_range);  // initial out of range
}

TEST_F(DfaTest, LetterIndexBinarySearch) {
  const Symbol a = table_.intern("a");
  const Symbol b = table_.intern("b");
  const Symbol c = table_.intern("c");
  std::vector<Symbol> sigma{a, b, c};
  std::sort(sigma.begin(), sigma.end());
  const Dfa dfa(1, sigma);
  EXPECT_TRUE(dfa.letter_index(a).has_value());
  EXPECT_TRUE(dfa.letter_index(c).has_value());
  EXPECT_FALSE(dfa.letter_index(table_.intern("zz")).has_value());
}

TEST_F(DfaTest, DeterminizePreservesLanguage) {
  const char* cases[] = {"a b",        "a + b",  "(a b)* c", "a* b*",
                         "(a + b)* a", "a (b + eps)", "(a (b void + c))*"};
  for (const char* text : cases) {
    const rex::Regex r = parse_(text);
    const Dfa dfa = determinize(from_regex(r));
    for (const Word& w : rex::enumerate_language(r, 5)) {
      EXPECT_TRUE(dfa.accepts(w)) << text;
    }
    // And some negatives: every word of the complement up to length 3.
    const std::set<Symbol> sigma_set = rex::alphabet(r);
    std::vector<Word> words{{}};
    for (std::size_t i = 0; i < words.size(); ++i) {
      if (words[i].size() >= 3) continue;
      for (Symbol s : sigma_set) {
        Word w = words[i];
        w.push_back(s);
        words.push_back(std::move(w));
      }
    }
    for (const Word& w : words) {
      EXPECT_EQ(dfa.accepts(w), rex::matches(r, w)) << text;
    }
  }
}

TEST_F(DfaTest, DeterminizeRejectsSymbolsOutsideAlphabet) {
  const Dfa dfa = dfa_of_("a");
  EXPECT_FALSE(dfa.accepts(word_({"zz"})));
  EXPECT_FALSE(dfa.run(word_({"zz"})).has_value());
}

TEST_F(DfaTest, DeterminizeOverLargerAlphabetAddsSink) {
  const rex::Regex r = parse_("a");
  const Symbol b = table_.intern("b");
  Nfa nfa = from_regex(r);
  const Dfa dfa = determinize(nfa, {table_.intern("a"), b});
  EXPECT_TRUE(dfa.accepts(word_({"a"})));
  EXPECT_FALSE(dfa.accepts(word_({"b"})));
  EXPECT_FALSE(dfa.accepts(word_({"a", "b"})));
}

TEST_F(DfaTest, DeterminizeThrowsWhenAlphabetTooSmall) {
  Nfa nfa = from_regex(parse_("a b"));
  EXPECT_THROW(determinize(nfa, {table_.intern("a")}),
               std::invalid_argument);
}

TEST_F(DfaTest, MinimizeReachesKnownMinimalSizes) {
  // L = words over {a} with length divisible by 3: minimal DFA has 3 states.
  const Dfa dfa = minimize(dfa_of_("(a a a)*"));
  EXPECT_EQ(dfa.state_count(), 3u);

  // a* needs exactly 1 state.
  EXPECT_EQ(minimize(dfa_of_("a*")).state_count(), 1u);
}

TEST_F(DfaTest, MinimizePreservesLanguage) {
  const char* cases[] = {"(a b)* c", "a* b*", "(a + b)* a b", "a (b + eps)"};
  for (const char* text : cases) {
    const Dfa full = dfa_of_(text);
    const Dfa minimal = minimize(full);
    EXPECT_LE(minimal.state_count(), full.state_count()) << text;
    EXPECT_TRUE(equivalent(full, minimal)) << text;
  }
}

TEST_F(DfaTest, MinimizeIsIdempotent) {
  const Dfa once = minimize(dfa_of_("(a + b)* a b"));
  const Dfa twice = minimize(once);
  EXPECT_EQ(once.state_count(), twice.state_count());
}

TEST_F(DfaTest, ProductIntersection) {
  // (a+b)* a  ∩  a (a+b)*  =  words starting and ending with a.
  const Dfa lhs = extend_alphabet(dfa_of_("(a + b)* a"),
                                  {table_.intern("a"), table_.intern("b")});
  const Dfa rhs = extend_alphabet(dfa_of_("a (a + b)*"),
                                  {table_.intern("a"), table_.intern("b")});
  const Dfa both = product(lhs, rhs, ProductMode::kIntersection);
  EXPECT_TRUE(both.accepts(word_({"a"})));
  EXPECT_TRUE(both.accepts(word_({"a", "b", "a"})));
  EXPECT_FALSE(both.accepts(word_({"a", "b"})));
  EXPECT_FALSE(both.accepts(word_({"b", "a"})));
}

TEST_F(DfaTest, ProductUnionAndDifference) {
  const std::vector<Symbol> sigma{table_.intern("a"), table_.intern("b")};
  const Dfa lhs = extend_alphabet(dfa_of_("a"), sigma);
  const Dfa rhs = extend_alphabet(dfa_of_("b"), sigma);
  const Dfa either = product(lhs, rhs, ProductMode::kUnion);
  EXPECT_TRUE(either.accepts(word_({"a"})));
  EXPECT_TRUE(either.accepts(word_({"b"})));
  EXPECT_FALSE(either.accepts({}));

  const Dfa diff = product(either, rhs, ProductMode::kDifference);
  EXPECT_TRUE(diff.accepts(word_({"a"})));
  EXPECT_FALSE(diff.accepts(word_({"b"})));
}

TEST_F(DfaTest, ProductRequiresMatchingAlphabets) {
  const Dfa lhs = dfa_of_("a");
  const Dfa rhs = dfa_of_("b");
  EXPECT_THROW(product(lhs, rhs, ProductMode::kIntersection),
               std::invalid_argument);
}

TEST_F(DfaTest, ComplementFlipsMembership) {
  const Dfa dfa = dfa_of_("(a b)*");
  const Dfa comp = complement(dfa);
  EXPECT_FALSE(comp.accepts({}));
  EXPECT_FALSE(comp.accepts(word_({"a", "b"})));
  EXPECT_TRUE(comp.accepts(word_({"a"})));
  EXPECT_TRUE(comp.accepts(word_({"b", "a"})));
}

TEST_F(DfaTest, EmptinessAndShortestWord) {
  EXPECT_TRUE(is_empty(determinize(from_regex(rex::empty()),
                                   {table_.intern("a")})));
  const Dfa dfa = dfa_of_("a a (b + a)");
  const auto shortest = shortest_word(dfa);
  ASSERT_TRUE(shortest.has_value());
  EXPECT_EQ(shortest->size(), 3u);

  const Dfa eps = determinize(from_regex(rex::epsilon()),
                              {table_.intern("a")});
  const auto empty_word = shortest_word(eps);
  ASSERT_TRUE(empty_word.has_value());
  EXPECT_TRUE(empty_word->empty());
}

TEST_F(DfaTest, InclusionWitnessIsShortestAndCorrect) {
  const Dfa lhs = dfa_of_("a* ");
  const Dfa rhs = dfa_of_("a a*");
  const auto witness = inclusion_witness(lhs, rhs);
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(witness->empty());  // ε ∈ a* \ a·a*
  EXPECT_FALSE(inclusion_witness(rhs, lhs).has_value());
  EXPECT_TRUE(included(rhs, lhs));
  EXPECT_FALSE(included(lhs, rhs));
}

TEST_F(DfaTest, EquivalenceJoinsAlphabets) {
  // a over {a} vs a over {a, b}: same language.
  const Dfa small = dfa_of_("a");
  const Dfa big = extend_alphabet(small, {table_.intern("b")});
  EXPECT_TRUE(equivalent(small, big));
}

TEST_F(DfaTest, ExtendAlphabetRejectingSink) {
  const Dfa dfa = extend_alphabet(dfa_of_("a*"), {table_.intern("x")});
  EXPECT_TRUE(dfa.accepts(word_({"a", "a"})));
  EXPECT_FALSE(dfa.accepts(word_({"x"})));
  EXPECT_FALSE(dfa.accepts(word_({"a", "x", "a"})));
}

TEST_F(DfaTest, ExtendAlphabetIgnoreSelfLoops) {
  const Dfa dfa = extend_alphabet_ignore(dfa_of_("a b"),
                                         {table_.intern("x")});
  EXPECT_TRUE(dfa.accepts(word_({"a", "b"})));
  EXPECT_TRUE(dfa.accepts(word_({"x", "a", "x", "b", "x"})));
  EXPECT_FALSE(dfa.accepts(word_({"a", "x", "a"})));
}

TEST_F(DfaTest, LiveStates) {
  const Dfa dfa = dfa_of_("a b");
  const auto live = live_states(dfa);
  // Initial state must be live (the language is non-empty); the sink is not.
  EXPECT_TRUE(live[dfa.initial()]);
  std::size_t dead = 0;
  for (StateId s = 0; s < dfa.state_count(); ++s) {
    if (!live[s]) ++dead;
  }
  EXPECT_GE(dead, 1u);  // the rejecting sink
}

TEST_F(DfaTest, MapLabelsRenames) {
  Nfa nfa = from_regex(parse_("a b"));
  const Symbol x = table_.intern("x");
  const Symbol a = table_.intern("a");
  const Nfa renamed = map_labels(nfa, [&](Symbol s) {
    return s == a ? x : s;
  });
  EXPECT_TRUE(renamed.accepts(word_({"x", "b"})));
  EXPECT_FALSE(renamed.accepts(word_({"a", "b"})));
}

TEST_F(DfaTest, MapLabelsErasesToEpsilon) {
  Nfa nfa = from_regex(parse_("a b a"));
  const Symbol a = table_.intern("a");
  const Nfa projected = map_labels(nfa, [&](Symbol s) {
    return s == a ? Symbol{} : s;  // erase all a's
  });
  EXPECT_TRUE(projected.accepts(word_({"b"})));
  EXPECT_FALSE(projected.accepts(word_({"a", "b", "a"})));
  EXPECT_FALSE(projected.accepts({}));
}

TEST_F(DfaTest, ToNfaRoundTrip) {
  const Dfa dfa = dfa_of_("(a + b)* a");
  const Dfa back = determinize(to_nfa(dfa));
  EXPECT_TRUE(equivalent(dfa, back));
}

TEST_F(DfaTest, ReachableCount) {
  const Dfa dfa = dfa_of_("a");
  EXPECT_EQ(reachable_count(dfa), dfa.state_count());
}

}  // namespace
}  // namespace shelley::fsm
