#include "fsm/to_regex.hpp"

#include <gtest/gtest.h>

#include "fsm/ops.hpp"
#include "fsm/thompson.hpp"
#include "rex/derivative.hpp"
#include "rex/equivalence.hpp"
#include "rex/parser.hpp"

namespace shelley::fsm {
namespace {

// Kleene round trip: regex -> NFA -> regex preserves the language.
class RoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTrip, LanguagePreserved) {
  SymbolTable table;
  const rex::Regex original = rex::parse(GetParam(), table);
  const Nfa nfa = from_regex(original);
  const rex::Regex recovered = to_regex(nfa);
  EXPECT_TRUE(rex::equivalent(original, recovered))
      << GetParam() << "  recovered: " << rex::to_string(recovered, table);
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, RoundTrip,
    ::testing::Values("a", "a b", "a + b", "a*", "(a b)* c", "a* b*",
                      "(a + b)* a b", "eps", "void", "a (b + eps)",
                      "(a (b void + c))*", "((a + b) c)*", "a b c + a c b"));

TEST(ToRegex, DfaOverloadMatchesNfa) {
  SymbolTable table;
  const rex::Regex original = rex::parse("(a + b)* a", table);
  const Dfa dfa = minimize(determinize(from_regex(original)));
  const rex::Regex recovered = to_regex(dfa);
  EXPECT_TRUE(rex::equivalent(original, recovered));
}

TEST(ToRegex, EmptyLanguage) {
  SymbolTable table;
  Nfa nfa;
  const StateId s = nfa.add_state();
  nfa.mark_initial(s);  // no accepting state at all
  EXPECT_TRUE(rex::is_empty_language(rex::simplify(to_regex(nfa))));
}

TEST(ToRegex, EpsilonOnlyLanguage) {
  SymbolTable table;
  Nfa nfa;
  const StateId s = nfa.add_state();
  nfa.mark_initial(s);
  nfa.mark_accepting(s);
  const rex::Regex r = to_regex(nfa);
  EXPECT_TRUE(rex::matches(r, {}));
  EXPECT_TRUE(rex::equivalent(r, rex::epsilon()));
}

TEST(ToRegex, MultipleInitialAndAcceptingStates) {
  SymbolTable table;
  const Symbol a = table.intern("a");
  const Symbol b = table.intern("b");
  Nfa nfa;
  nfa.add_states(3);
  nfa.mark_initial(0);
  nfa.mark_initial(1);
  nfa.add_transition(0, a, 2);
  nfa.add_transition(1, b, 2);
  nfa.mark_accepting(2);
  const rex::Regex r = to_regex(nfa);
  EXPECT_TRUE(rex::equivalent(r, rex::parse("a + b", table)));
}

}  // namespace
}  // namespace shelley::fsm
