// CompiledDfa (fsm/table.hpp): compile invariants (sink row, dead-state
// merging, bitmaps, letter order), verdict parity with the source DFA on
// random words, the versioned byte format's round trip, and the adversarial
// decode surface -- every truncation and every bit flip must either throw
// support::BinaryFormatError or decode to a table that still satisfies all
// structural invariants.  Never UB, never a crash.
#include "fsm/table.hpp"

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "fsm/dfa.hpp"
#include "support/binary.hpp"

namespace shelley::fsm {
namespace {

/// The valve usage DFA, hand-built: test -> {open, clean}, open -> close,
/// close/clean -> test, plus an explicit dead state (4) reached nowhere.
/// States: 0 initial/accepting, 1 after test, 2 after open, 4 dead trap.
class TableTest : public ::testing::Test {
 protected:
  TableTest() {
    test_ = table_.intern("test");
    open_ = table_.intern("open");
    close_ = table_.intern("close");
    clean_ = table_.intern("clean");
  }

  /// Alphabet order is sorted symbol order: intern order here.
  Dfa valve_dfa() {
    Dfa dfa(5, {test_, open_, close_, clean_});
    const auto at = [&](Symbol s) { return *dfa.letter_index(s); };
    // Default transitions self-loop on 0; send everything to the trap
    // first, then carve the legal cycle.
    for (StateId from = 0; from < 5; ++from) {
      for (std::size_t letter = 0; letter < 4; ++letter) {
        dfa.set_transition(from, letter, 4);
      }
    }
    dfa.set_transition(0, at(test_), 1);
    dfa.set_transition(1, at(open_), 2);
    dfa.set_transition(1, at(clean_), 0);
    dfa.set_transition(2, at(close_), 0);
    dfa.set_accepting(0, true);
    dfa.set_initial(0);
    return dfa;
  }

  SymbolTable table_;
  Symbol test_, open_, close_, clean_;
};

TEST_F(TableTest, CompileAppendsSinkAndMergesDeadStates) {
  const CompiledDfa compiled = CompiledDfa::compile(valve_dfa(), table_);
  EXPECT_EQ(compiled.state_count(), 6u);  // 5 source states + sink row
  EXPECT_EQ(compiled.letter_count(), 4u);
  EXPECT_EQ(compiled.sink(), 5u);
  EXPECT_EQ(compiled.initial(), 0u);
  // The explicit trap state's targets were redirected to the sink.
  const CompiledDfa::Letter open = compiled.letter_of("open");
  EXPECT_EQ(compiled.step(0, open), compiled.sink());
  // The sink self-loops on every letter and is neither accepting nor live.
  for (CompiledDfa::Letter l = 0; l < compiled.letter_count(); ++l) {
    EXPECT_EQ(compiled.step(compiled.sink(), l), compiled.sink());
  }
  EXPECT_FALSE(compiled.accepting(compiled.sink()));
  EXPECT_FALSE(compiled.live(compiled.sink()));
  // Live states are exactly the legal-cycle ones.
  EXPECT_TRUE(compiled.live(0));
  EXPECT_TRUE(compiled.live(1));
  EXPECT_TRUE(compiled.live(2));
  EXPECT_FALSE(compiled.live(4));
  EXPECT_TRUE(compiled.accepting(0));
  EXPECT_FALSE(compiled.accepting(1));
}

TEST_F(TableTest, LetterOrderIsAlphabetOrder) {
  const Dfa dfa = valve_dfa();
  const CompiledDfa compiled = CompiledDfa::compile(dfa, table_);
  ASSERT_EQ(compiled.event_names().size(), dfa.alphabet().size());
  for (std::size_t i = 0; i < dfa.alphabet().size(); ++i) {
    EXPECT_EQ(compiled.event_names()[i], table_.name(dfa.alphabet()[i]));
    EXPECT_EQ(compiled.event_symbol(static_cast<CompiledDfa::Letter>(i)),
              dfa.alphabet()[i]);
  }
  EXPECT_EQ(compiled.letter_of(test_), compiled.letter_of("test"));
  EXPECT_EQ(compiled.letter_of("explode"), CompiledDfa::kNoLetter);
  EXPECT_EQ(compiled.letter_of(table_.intern("explode")),
            CompiledDfa::kNoLetter);
}

TEST_F(TableTest, StepAgreesWithDfaOnRandomWords) {
  const Dfa dfa = valve_dfa();
  const CompiledDfa compiled = CompiledDfa::compile(dfa, table_);
  const Symbol ops[] = {test_, open_, close_, clean_};
  std::mt19937_64 rng(11);
  for (int round = 0; round < 500; ++round) {
    Word word;
    std::uint32_t state = compiled.initial();
    for (int i = 0; i < 8; ++i) {
      const Symbol symbol = ops[rng() % 4];
      word.push_back(symbol);
      state = compiled.step(state, compiled.letter_of(symbol));
    }
    const auto reached = dfa.run(word);
    ASSERT_TRUE(reached.has_value());
    EXPECT_EQ(compiled.accepting(state), dfa.is_accepting(*reached));
  }
}

TEST_F(TableTest, AllowedLettersAreExactlyTheLiveTargets) {
  const CompiledDfa compiled = CompiledDfa::compile(valve_dfa(), table_);
  std::vector<CompiledDfa::Letter> out;
  compiled.allowed_letters(compiled.initial(), out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(compiled.event_name(out[0]), "test");
  // Appends without clearing, so the scratch-reuse contract holds.
  compiled.allowed_letters(1, out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(compiled.event_name(out[1]), "open");
  EXPECT_EQ(compiled.event_name(out[2]), "clean");
  out.clear();
  compiled.allowed_letters(compiled.sink(), out);
  EXPECT_TRUE(out.empty());
}

TEST_F(TableTest, RoundTripPreservesEverything) {
  const CompiledDfa compiled = CompiledDfa::compile(valve_dfa(), table_);
  const std::string bytes = compiled.to_bytes();

  SymbolTable other;
  other.intern("unrelated");  // different interning on the far side
  const CompiledDfa loaded = CompiledDfa::from_bytes(bytes, other);
  EXPECT_EQ(loaded.state_count(), compiled.state_count());
  EXPECT_EQ(loaded.letter_count(), compiled.letter_count());
  EXPECT_EQ(loaded.initial(), compiled.initial());
  EXPECT_EQ(loaded.sink(), compiled.sink());
  EXPECT_EQ(loaded.cells(), compiled.cells());
  EXPECT_EQ(loaded.event_names(), compiled.event_names());
  for (std::uint32_t s = 0; s < loaded.state_count(); ++s) {
    EXPECT_EQ(loaded.accepting(s), compiled.accepting(s));
    EXPECT_EQ(loaded.live(s), compiled.live(s));
  }
  // Re-serialization is byte-identical (the format is canonical).
  EXPECT_EQ(loaded.to_bytes(), bytes);
}

TEST_F(TableTest, TruncationAtEveryLengthThrows) {
  const std::string bytes =
      CompiledDfa::compile(valve_dfa(), table_).to_bytes();
  for (std::size_t length = 0; length < bytes.size(); ++length) {
    SymbolTable scratch;
    EXPECT_THROW((void)CompiledDfa::from_bytes(bytes.substr(0, length),
                                               scratch),
                 support::BinaryFormatError)
        << "prefix of length " << length << " decoded";
  }
}

/// A decoded table must satisfy every structural invariant, whatever bytes
/// produced it.
void expect_valid(const CompiledDfa& table) {
  ASSERT_GT(table.state_count(), 0u);
  ASSERT_LT(table.initial(), table.state_count());
  ASSERT_LT(table.sink(), table.state_count());
  EXPECT_FALSE(table.live(table.sink()));
  EXPECT_FALSE(table.accepting(table.sink()));
  for (std::uint32_t s = 0; s < table.state_count(); ++s) {
    for (CompiledDfa::Letter l = 0; l < table.letter_count(); ++l) {
      const std::uint32_t next = table.step(s, l);
      ASSERT_LT(next, table.state_count());
      ASSERT_TRUE(table.live(next) || next == table.sink());
    }
  }
}

TEST_F(TableTest, EveryBitFlipRejectsOrStaysStructurallyValid) {
  const std::string bytes =
      CompiledDfa::compile(valve_dfa(), table_).to_bytes();
  for (std::size_t bit = 0; bit < bytes.size() * 8; ++bit) {
    std::string mutated = bytes;
    mutated[bit / 8] = static_cast<char>(
        static_cast<unsigned char>(mutated[bit / 8]) ^ (1u << (bit % 8)));
    SymbolTable scratch;
    try {
      const CompiledDfa loaded = CompiledDfa::from_bytes(mutated, scratch);
      expect_valid(loaded);  // a lucky flip may still be a valid table
    } catch (const support::BinaryFormatError&) {
      // structured rejection is the expected outcome
    }
  }
}

TEST_F(TableTest, TrailingGarbageThrows) {
  const std::string bytes =
      CompiledDfa::compile(valve_dfa(), table_).to_bytes();
  SymbolTable scratch;
  EXPECT_THROW((void)CompiledDfa::from_bytes(bytes + "x", scratch),
               support::BinaryFormatError);
}

TEST_F(TableTest, RandomBytesNeverCrashTheDecoder) {
  std::mt19937_64 rng(23);
  for (int round = 0; round < 2000; ++round) {
    std::string bytes(rng() % 128, '\0');
    for (char& byte : bytes) byte = static_cast<char>(rng());
    SymbolTable scratch;
    try {
      const CompiledDfa loaded = CompiledDfa::from_bytes(bytes, scratch);
      expect_valid(loaded);
    } catch (const support::BinaryFormatError&) {
    }
  }
}

TEST_F(TableTest, SingleAcceptingInitialStateCompiles) {
  // Degenerate but legal: one state, empty-usage-only class.
  SymbolTable symbols;
  const Symbol ping = symbols.intern("ping");
  Dfa dfa(1, {ping});
  dfa.set_transition(0, 0, 0);
  dfa.set_accepting(0, true);
  const CompiledDfa compiled = CompiledDfa::compile(dfa, symbols);
  EXPECT_EQ(compiled.state_count(), 2u);
  EXPECT_TRUE(compiled.live(0));
  EXPECT_EQ(compiled.step(0, 0), 0u);
  SymbolTable other;
  const CompiledDfa loaded =
      CompiledDfa::from_bytes(compiled.to_bytes(), other);
  EXPECT_EQ(loaded.cells(), compiled.cells());
}

}  // namespace
}  // namespace shelley::fsm
