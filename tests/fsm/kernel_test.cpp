// The flat automata kernel's storage layer: CSR transition views, the
// packed ε-closure table, accepting bitmaps, and the word-parallel StateSet
// sweeps they feed.  These pin the layout invariants docs/KERNEL.md states
// (sorted runs, self bits, cache invalidation on mutation) independently of
// the algorithms in ops.cpp.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "fsm/nfa.hpp"
#include "fsm/ops.hpp"
#include "fsm/state_set.hpp"

namespace shelley::fsm {
namespace {

class KernelTest : public ::testing::Test {
 protected:
  SymbolTable table_;
  Symbol a_ = table_.intern("a");
  Symbol b_ = table_.intern("b");
  Symbol c_ = table_.intern("c");
};

TEST_F(KernelTest, SymbolCsrRunsAreSortedBySymbol) {
  Nfa nfa;
  nfa.add_states(3);
  // Insert out of symbol order on purpose.
  nfa.add_transition(0, c_, 2);
  nfa.add_transition(0, a_, 1);
  nfa.add_transition(0, b_, 0);
  nfa.add_transition(2, a_, 0);

  const Nfa::SymbolCsr csr = nfa.symbol_csr();
  ASSERT_EQ(csr.offsets[0], 0u);
  ASSERT_EQ(csr.offsets[1], 3u);  // state 0 has three edges
  ASSERT_EQ(csr.offsets[2], 3u);  // state 1 has none
  ASSERT_EQ(csr.offsets[3], 4u);
  EXPECT_TRUE(std::is_sorted(csr.symbols, csr.symbols + 3));
  EXPECT_EQ(csr.symbols[0], a_);
  EXPECT_EQ(csr.targets[0], 1u);
  EXPECT_EQ(csr.symbols[1], b_);
  EXPECT_EQ(csr.targets[1], 0u);
  EXPECT_EQ(csr.symbols[2], c_);
  EXPECT_EQ(csr.targets[2], 2u);
  EXPECT_EQ(csr.symbols[3], a_);
  EXPECT_EQ(csr.targets[3], 0u);
}

TEST_F(KernelTest, SymbolCsrDuplicateSymbolsKeepInsertionOrder) {
  Nfa nfa;
  nfa.add_states(4);
  nfa.add_transition(0, a_, 3);
  nfa.add_transition(0, a_, 1);
  nfa.add_transition(0, a_, 2);
  const Nfa::SymbolCsr csr = nfa.symbol_csr();
  // The per-run sort is stable: equal symbols keep the order they were
  // added in, which is what keeps determinization byte-reproducible.
  EXPECT_EQ(csr.targets[0], 3u);
  EXPECT_EQ(csr.targets[1], 1u);
  EXPECT_EQ(csr.targets[2], 2u);
}

TEST_F(KernelTest, EpsilonEdgesLiveInTheirOwnCsr) {
  Nfa nfa;
  nfa.add_states(3);
  nfa.add_transition(0, a_, 1);
  nfa.add_epsilon(0, 2);
  nfa.add_epsilon(1, 0);

  const Nfa::SymbolCsr sym = nfa.symbol_csr();
  const Nfa::EpsilonCsr eps = nfa.epsilon_csr();
  EXPECT_EQ(sym.offsets[3], 1u);  // only the labelled edge
  EXPECT_EQ(eps.offsets[3], 2u);  // both ε edges
  EXPECT_EQ(eps.targets[eps.offsets[0]], 2u);
  EXPECT_EQ(eps.targets[eps.offsets[1]], 0u);
}

TEST_F(KernelTest, ClosureTableSetsSelfBits) {
  Nfa nfa;
  nfa.add_states(70);  // spans two uint64 words
  const Nfa::ClosureTable closures = nfa.closures();
  ASSERT_EQ(closures.stride, 2u);
  for (StateId s = 0; s < 70; ++s) {
    const std::uint64_t* row = closures.row(s);
    EXPECT_EQ((row[s / 64] >> (s % 64)) & 1, 1u) << "state " << s;
  }
}

TEST_F(KernelTest, ClosureTableIsTransitiveAcrossWordBoundaries) {
  Nfa nfa;
  nfa.add_states(130);  // three words per row
  // A chain of ε edges crossing both word boundaries: 0 -> 63 -> 64 -> 129.
  nfa.add_epsilon(0, 63);
  nfa.add_epsilon(63, 64);
  nfa.add_epsilon(64, 129);
  const Nfa::ClosureTable closures = nfa.closures();
  const std::uint64_t* row = closures.row(0);
  for (StateId t : {0u, 63u, 64u, 129u}) {
    EXPECT_EQ((row[t / 64] >> (t % 64)) & 1, 1u) << "missing " << t;
  }
  // And nothing else.
  std::size_t bits = 0;
  for (std::size_t w = 0; w < closures.stride; ++w) {
    bits += static_cast<std::size_t>(__builtin_popcountll(row[w]));
  }
  EXPECT_EQ(bits, 4u);
}

TEST_F(KernelTest, ClosureHandlesEpsilonCyclesBackwardEdges) {
  Nfa nfa;
  nfa.add_states(5);
  // Backward ε edges force the fixpoint sweep to iterate.
  nfa.add_epsilon(4, 3);
  nfa.add_epsilon(3, 2);
  nfa.add_epsilon(2, 1);
  nfa.add_epsilon(1, 0);
  nfa.add_epsilon(0, 4);  // close the cycle
  const Nfa::ClosureTable closures = nfa.closures();
  for (StateId s = 0; s < 5; ++s) {
    EXPECT_EQ(closures.row(s)[0] & 0x1F, 0x1Fu) << "state " << s;
  }
}

TEST_F(KernelTest, AcceptingWordsMatchAcceptingStates) {
  Nfa nfa;
  nfa.add_states(100);
  for (StateId s : {0u, 63u, 64u, 99u}) nfa.mark_accepting(s);
  const std::uint64_t* words = nfa.accepting_words();
  for (StateId s = 0; s < 100; ++s) {
    const bool bit = (words[s / 64] >> (s % 64)) & 1;
    EXPECT_EQ(bit, nfa.is_accepting(s)) << "state " << s;
  }
}

TEST_F(KernelTest, MutationInvalidatesCachedViews) {
  Nfa nfa;
  nfa.add_states(2);
  nfa.add_transition(0, a_, 1);
  const Nfa::SymbolCsr before = nfa.symbol_csr();
  EXPECT_EQ(before.offsets[2], 1u);
  EXPECT_EQ(nfa.alphabet().size(), 1u);

  nfa.add_transition(1, b_, 0);
  const Nfa::SymbolCsr after = nfa.symbol_csr();
  EXPECT_EQ(after.offsets[2], 2u);
  EXPECT_EQ(nfa.alphabet().size(), 2u);

  nfa.add_epsilon(1, 0);
  const Nfa::ClosureTable closures = nfa.closures();
  EXPECT_EQ((closures.row(1)[0] >> 0) & 1, 1u);  // 0 ∈ closure(1)
}

TEST_F(KernelTest, StateSetUniteRowIsWordParallel) {
  StateSet set(128);
  set.insert(3);
  const std::uint64_t row[2] = {std::uint64_t{1} << 40,
                                std::uint64_t{1} << 1};  // states 40, 65
  EXPECT_TRUE(set.unite_row(row));
  EXPECT_TRUE(set.contains(3));
  EXPECT_TRUE(set.contains(40));
  EXPECT_TRUE(set.contains(65));
  EXPECT_EQ(set.count(), 3u);
  // A second union with the same row changes nothing.
  EXPECT_FALSE(set.unite_row(row));
}

TEST_F(KernelTest, BitsetClosureAgreesWithSetClosure) {
  Nfa nfa;
  nfa.add_states(80);
  for (StateId s = 0; s + 1 < 80; s += 2) nfa.add_epsilon(s, s + 1);
  nfa.add_epsilon(1, 70);

  StateSet seed(nfa.state_count());
  seed.insert(0);
  const StateSet closed = nfa.epsilon_closure(seed);
  const std::set<StateId> reference =
      nfa.epsilon_closure(std::set<StateId>{0});
  std::set<StateId> flat;
  closed.for_each([&](StateId s) { flat.insert(s); });
  EXPECT_EQ(flat, reference);
}

TEST_F(KernelTest, StepAgreesAcrossRepresentations) {
  Nfa nfa;
  nfa.add_states(70);
  nfa.add_transition(0, a_, 65);
  nfa.add_transition(0, b_, 1);
  nfa.add_transition(65, a_, 0);

  StateSet from(nfa.state_count());
  from.insert(0);
  from.insert(65);
  const StateSet stepped = nfa.step(from, a_);
  std::set<StateId> flat;
  stepped.for_each([&](StateId s) { flat.insert(s); });
  EXPECT_EQ(flat, (std::set<StateId>{0, 65}));
  EXPECT_EQ(nfa.step(std::set<StateId>{0, 65}, a_),
            (std::set<StateId>{0, 65}));
}

TEST_F(KernelTest, DeterminizeOverWideAutomatonMatchesSimulation) {
  // A 3-word-wide NFA with ε edges and nondeterminism: the DFA must accept
  // exactly the words the subset simulation accepts.
  Nfa nfa;
  nfa.add_states(150);
  nfa.mark_initial(0);
  for (StateId s = 0; s < 149; ++s) {
    nfa.add_transition(s, s % 2 == 0 ? a_ : b_, s + 1);
    if (s % 7 == 0) nfa.add_epsilon(s, (s + 50) % 150);
    if (s % 11 == 0) nfa.add_transition(s, a_, (s + 3) % 150);
  }
  nfa.mark_accepting(149);
  nfa.mark_accepting(75);

  const Dfa dfa = determinize(nfa);
  const std::vector<Word> probes = {
      {}, {a_}, {a_, b_}, {a_, b_, a_}, {b_}, {a_, a_}, {a_, b_, a_, b_},
      {a_, a_, a_, b_, b_, a_}};
  for (const Word& word : probes) {
    EXPECT_EQ(dfa.accepts(word), nfa.accepts(word));
  }
}

TEST_F(KernelTest, DfaAcceptingBitmapSurvivesMinimize) {
  Nfa nfa;
  nfa.add_states(4);
  nfa.mark_initial(0);
  nfa.add_transition(0, a_, 1);
  nfa.add_transition(1, a_, 2);
  nfa.add_transition(2, a_, 3);
  nfa.add_transition(3, a_, 0);
  nfa.mark_accepting(0);
  const Dfa dfa = determinize(nfa);
  const Dfa minimal = minimize_hopcroft(dfa);
  EXPECT_EQ(minimal.accepting_count(), 1u);
  EXPECT_TRUE(minimal.accepts({a_, a_, a_, a_}));
  EXPECT_FALSE(minimal.accepts({a_}));
  // The bitmap view has exactly one bit set.
  std::size_t bits = 0;
  for (std::size_t w = 0; w < minimal.accepting_word_count(); ++w) {
    bits += static_cast<std::size_t>(
        __builtin_popcountll(minimal.accepting_words()[w]));
  }
  EXPECT_EQ(bits, 1u);
}

}  // namespace
}  // namespace shelley::fsm
