// The allocation regression gate for the flat kernel: once the per-thread
// arena and scratch pools are warm, determinize + minimize over the ring-50
// automaton must stay under a fixed heap-allocation ceiling.  The counts
// come from the PR-2 metrics sink (AutomataStats.determinize_allocs /
// minimize_allocs), which ops.cpp fills from the process-wide allocation
// counter -- the same numbers `shelleyc --stats` reports.
//
// The seed kernel spent ~7,300 heap allocations on this workload; the flat
// kernel spends ~10.  The ceiling of 64 leaves room for allocator noise
// (e.g. a std::vector deciding to regrow) without ever letting quadratic
// per-state allocation patterns back in.
#include <gtest/gtest.h>

#include <cstdint>

#include "fsm/dfa.hpp"
#include "fsm/nfa.hpp"
#include "fsm/ops.hpp"
#include "support/metrics.hpp"

namespace shelley::fsm {
namespace {

constexpr std::size_t kRingStates = 50;
constexpr std::uint64_t kWarmAllocCeiling = 64;

/// A ring of N states over {a, b}: `a` advances, `b` resets to 0, sparse
/// ε shortcuts keep the closure sweeps honest.  Subsets stay short
/// contiguous windows, so the construction is O(N) states -- the workload
/// measures allocation discipline, not subset blowup.
Nfa ring_nfa(SymbolTable& table, std::size_t states) {
  const Symbol a = table.intern("a");
  const Symbol b = table.intern("b");
  Nfa nfa;
  nfa.add_states(states);
  nfa.mark_initial(0);
  for (StateId s = 0; s < states; ++s) {
    const StateId next = (s + 1) % static_cast<StateId>(states);
    nfa.add_transition(s, a, next);
    nfa.add_transition(s, b, 0);
    if (s % 10 == 0) nfa.add_epsilon(s, next);
  }
  nfa.mark_accepting(0);
  return nfa;
}

TEST(AllocRegressionTest, Ring50StaysUnderWarmCeiling) {
  SymbolTable table;

  // Warm-up: first calls may grow the arena chunks and thread-local
  // scratch; those one-time costs are not the regression surface.
  {
    const Nfa nfa = ring_nfa(table, kRingStates);
    const Dfa dfa = determinize(nfa);
    (void)minimize_hopcroft(dfa);
  }

  support::metrics::AutomataStats stats;
  {
    const support::metrics::ScopedSink sink(&stats);
    const Nfa nfa = ring_nfa(table, kRingStates);
    const Dfa dfa = determinize(nfa);
    const Dfa minimal = minimize_hopcroft(dfa);
    ASSERT_GE(minimal.state_count(), 1u);
  }

  ASSERT_TRUE(stats.collected);
  EXPECT_EQ(stats.determinize_calls, 1u);
  EXPECT_EQ(stats.minimize_calls, 1u);
  EXPECT_LE(stats.determinize_allocs + stats.minimize_allocs,
            kWarmAllocCeiling)
      << "warm determinize+minimize regressed to "
      << stats.determinize_allocs << " + " << stats.minimize_allocs
      << " heap allocations on ring-" << kRingStates;
}

TEST(AllocRegressionTest, WarmAllocsDoNotScaleWithStateCount) {
  SymbolTable table;
  const auto measure = [&table](std::size_t states) {
    {
      const Nfa warm = ring_nfa(table, states);
      (void)minimize_hopcroft(determinize(warm));
    }
    support::metrics::AutomataStats stats;
    const support::metrics::ScopedSink sink(&stats);
    const Nfa nfa = ring_nfa(table, states);
    (void)minimize_hopcroft(determinize(nfa));
    return stats.determinize_allocs + stats.minimize_allocs;
  };

  const std::uint64_t at_50 = measure(50);
  const std::uint64_t at_200 = measure(200);
  // 4x the states must not mean 4x the allocations: the whole point of the
  // arena is that warm allocation count is flat in the input size.
  EXPECT_LE(at_200, at_50 + kWarmAllocCeiling);
}

}  // namespace
}  // namespace shelley::fsm
