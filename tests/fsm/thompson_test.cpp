#include "fsm/thompson.hpp"

#include <gtest/gtest.h>

#include <random>

#include "fsm/ops.hpp"
#include "rex/derivative.hpp"
#include "rex/parser.hpp"

namespace shelley::fsm {
namespace {

class ThompsonTest : public ::testing::Test {
 protected:
  rex::Regex parse_(const char* text) { return rex::parse(text, table_); }
  Word word_(std::initializer_list<const char*> names) {
    Word out;
    for (const char* name : names) out.push_back(table_.intern(name));
    return out;
  }
  SymbolTable table_;
};

TEST_F(ThompsonTest, EmptyLanguageAcceptsNothing) {
  const Nfa nfa = from_regex(rex::empty());
  EXPECT_FALSE(nfa.accepts({}));
  EXPECT_FALSE(nfa.accepts(word_({"a"})));
}

TEST_F(ThompsonTest, EpsilonAcceptsOnlyEmptyWord) {
  const Nfa nfa = from_regex(rex::epsilon());
  EXPECT_TRUE(nfa.accepts({}));
  EXPECT_FALSE(nfa.accepts(word_({"a"})));
}

TEST_F(ThompsonTest, SymbolAcceptsExactlyThatSymbol) {
  const Nfa nfa = from_regex(parse_("a"));
  EXPECT_TRUE(nfa.accepts(word_({"a"})));
  EXPECT_FALSE(nfa.accepts({}));
  EXPECT_FALSE(nfa.accepts(word_({"b"})));
  EXPECT_FALSE(nfa.accepts(word_({"a", "a"})));
}

TEST_F(ThompsonTest, ConcatUnionStar) {
  const Nfa concat = from_regex(parse_("a b"));
  EXPECT_TRUE(concat.accepts(word_({"a", "b"})));
  EXPECT_FALSE(concat.accepts(word_({"a"})));

  const Nfa alt = from_regex(parse_("a + b"));
  EXPECT_TRUE(alt.accepts(word_({"a"})));
  EXPECT_TRUE(alt.accepts(word_({"b"})));
  EXPECT_FALSE(alt.accepts(word_({"a", "b"})));

  const Nfa star = from_regex(parse_("a*"));
  EXPECT_TRUE(star.accepts({}));
  EXPECT_TRUE(star.accepts(word_({"a", "a", "a"})));
  EXPECT_FALSE(star.accepts(word_({"b"})));
}

TEST_F(ThompsonTest, Example3RegexFromPaper) {
  // ((a · ((b · ∅) + c))*  +  (a · ((b · ∅) + c))* · a · b  -- the full
  // infer() output of Example 3; traces: (a c)^n  and  (a c)^n a b.
  const Nfa nfa =
      from_regex(parse_("(a (b void + c))* + (a (b void + c))* a b"));
  EXPECT_TRUE(nfa.accepts({}));
  EXPECT_TRUE(nfa.accepts(word_({"a", "c"})));
  EXPECT_TRUE(nfa.accepts(word_({"a", "c", "a", "c"})));
  EXPECT_TRUE(nfa.accepts(word_({"a", "b"})));
  EXPECT_TRUE(nfa.accepts(word_({"a", "c", "a", "b"})));
  EXPECT_FALSE(nfa.accepts(word_({"a"})));
  EXPECT_FALSE(nfa.accepts(word_({"a", "b", "a", "c"})));
  EXPECT_FALSE(nfa.accepts(word_({"b"})));
}

// Property: NFA membership agrees with derivative membership on every word
// up to length 4 over the regex's alphabet, for a corpus of regexes.
class ThompsonAgreement : public ::testing::TestWithParam<const char*> {};

TEST_P(ThompsonAgreement, NfaMatchesDerivativeOracle) {
  SymbolTable table;
  const rex::Regex r = rex::parse(GetParam(), table);
  const Nfa nfa = from_regex(r);

  const std::set<Symbol> sigma_set = rex::alphabet(r);
  const std::vector<Symbol> sigma(sigma_set.begin(), sigma_set.end());
  // Enumerate all words of length <= 4.
  std::vector<Word> words{{}};
  for (int len = 0; len < 4; ++len) {
    const std::size_t start = words.size();
    std::vector<Word> next;
    for (const Word& w : words) {
      if (w.size() != static_cast<std::size_t>(len)) continue;
      for (Symbol s : sigma) {
        Word extended = w;
        extended.push_back(s);
        next.push_back(std::move(extended));
      }
    }
    words.insert(words.end(), next.begin(), next.end());
    (void)start;
  }
  for (const Word& w : words) {
    EXPECT_EQ(nfa.accepts(w), rex::matches(r, w))
        << GetParam() << " on word of length " << w.size();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, ThompsonAgreement,
    ::testing::Values("a", "a b", "a + b", "a*", "(a b)*", "a* b*",
                      "(a + b)* a", "a (b + eps)", "void", "eps",
                      "(a (b void + c))*", "a b + a c", "((a + b) (a + b))*",
                      "a* + b*", "(a* b)* a*"));

}  // namespace
}  // namespace shelley::fsm
