// Boolean-algebra laws of the DFA operations, checked on a corpus of
// regular languages: De Morgan, double complement, distributivity,
// inclusion antisymmetry, and consistency between product modes.
#include <gtest/gtest.h>

#include "fsm/ops.hpp"
#include "fsm/thompson.hpp"
#include "rex/parser.hpp"

namespace shelley::fsm {
namespace {

struct LanguagePair {
  const char* lhs;
  const char* rhs;
};

class AlgebraTest : public ::testing::TestWithParam<LanguagePair> {
 protected:
  void SetUp() override {
    // Build both machines over the *joint* alphabet so products are legal.
    const rex::Regex left = rex::parse(GetParam().lhs, table_);
    const rex::Regex right = rex::parse(GetParam().rhs, table_);
    std::set<Symbol> sigma = rex::alphabet(left);
    const auto rhs_sigma = rex::alphabet(right);
    sigma.insert(rhs_sigma.begin(), rhs_sigma.end());
    sigma.insert(table_.intern("z"));  // a letter outside both languages
    const std::vector<Symbol> alphabet(sigma.begin(), sigma.end());
    a_ = determinize(from_regex(left), alphabet);
    b_ = determinize(from_regex(right), alphabet);
  }

  SymbolTable table_;
  std::optional<Dfa> a_;
  std::optional<Dfa> b_;
};

TEST_P(AlgebraTest, DoubleComplement) {
  EXPECT_TRUE(equivalent(complement(complement(*a_)), *a_));
}

TEST_P(AlgebraTest, DeMorgan) {
  // !(A ∪ B) = !A ∩ !B
  const Dfa lhs = complement(product(*a_, *b_, ProductMode::kUnion));
  const Dfa rhs =
      product(complement(*a_), complement(*b_), ProductMode::kIntersection);
  EXPECT_TRUE(equivalent(lhs, rhs));
}

TEST_P(AlgebraTest, DifferenceAsIntersectionWithComplement) {
  const Dfa diff = product(*a_, *b_, ProductMode::kDifference);
  const Dfa via_complement =
      product(*a_, complement(*b_), ProductMode::kIntersection);
  EXPECT_TRUE(equivalent(diff, via_complement));
}

TEST_P(AlgebraTest, UnionAbsorbsIntersection) {
  // A ∪ (A ∩ B) = A
  const Dfa inter = product(*a_, *b_, ProductMode::kIntersection);
  const Dfa absorbed = product(*a_, inter, ProductMode::kUnion);
  EXPECT_TRUE(equivalent(absorbed, *a_));
}

TEST_P(AlgebraTest, InclusionAntisymmetry) {
  if (included(*a_, *b_) && included(*b_, *a_)) {
    EXPECT_TRUE(equivalent(*a_, *b_));
  }
  // A ∩ B ⊆ A ⊆ A ∪ B  always.
  const Dfa inter = product(*a_, *b_, ProductMode::kIntersection);
  const Dfa uni = product(*a_, *b_, ProductMode::kUnion);
  EXPECT_TRUE(included(inter, *a_));
  EXPECT_TRUE(included(*a_, uni));
}

TEST_P(AlgebraTest, EmptinessOfDifferenceMatchesInclusion) {
  EXPECT_EQ(is_empty(product(*a_, *b_, ProductMode::kDifference)),
            included(*a_, *b_));
}

TEST_P(AlgebraTest, MinimizationCommutesWithComplement) {
  // minimize(!A) and !minimize(A) recognize the same language.
  EXPECT_TRUE(
      equivalent(minimize(complement(*a_)), complement(minimize(*a_))));
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, AlgebraTest,
    ::testing::Values(LanguagePair{"a b", "a (b + c)"},
                      LanguagePair{"(a + b)*", "a*"},
                      LanguagePair{"(a b)* c", "a b c"},
                      LanguagePair{"a* b", "b + a b"},
                      LanguagePair{"eps", "a*"},
                      LanguagePair{"void", "a"},
                      LanguagePair{"(a + b)* a", "(a + b)* b"}));

}  // namespace
}  // namespace shelley::fsm
