#include "fsm/state_set.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace shelley::fsm {
namespace {

TEST(StateSet, StartsEmpty) {
  StateSet set(100);
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.count(), 0u);
  EXPECT_FALSE(set.contains(0));
  EXPECT_FALSE(set.contains(99));
}

TEST(StateSet, InsertReportsNovelty) {
  StateSet set(70);
  EXPECT_TRUE(set.insert(3));
  EXPECT_FALSE(set.insert(3));
  EXPECT_TRUE(set.insert(64));  // second word
  EXPECT_TRUE(set.contains(3));
  EXPECT_TRUE(set.contains(64));
  EXPECT_EQ(set.count(), 2u);
}

TEST(StateSet, ForEachVisitsAscending) {
  StateSet set(200);
  for (StateId s : {199u, 0u, 63u, 64u, 65u, 128u}) set.insert(s);
  std::vector<StateId> seen;
  set.for_each([&](StateId s) { seen.push_back(s); });
  EXPECT_EQ(seen, (std::vector<StateId>{0, 63, 64, 65, 128, 199}));
}

TEST(StateSet, UniteReportsChange) {
  StateSet a(128);
  StateSet b(128);
  a.insert(1);
  b.insert(1);
  b.insert(100);
  EXPECT_TRUE(a.unite(b));
  EXPECT_FALSE(a.unite(b));  // already a superset
  EXPECT_TRUE(a.contains(100));
  EXPECT_EQ(a.count(), 2u);
}

TEST(StateSet, EqualityAndHashAgree) {
  StateSet a(90);
  StateSet b(90);
  a.insert(7);
  a.insert(80);
  b.insert(80);
  b.insert(7);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  b.insert(8);
  EXPECT_FALSE(a == b);
}

TEST(StateSet, IntersectsAndClear) {
  StateSet a(64);
  StateSet b(64);
  a.insert(10);
  b.insert(11);
  EXPECT_FALSE(a.intersects(b));
  b.insert(10);
  EXPECT_TRUE(a.intersects(b));
  a.clear();
  EXPECT_TRUE(a.empty());
  EXPECT_FALSE(a.intersects(b));
}

}  // namespace
}  // namespace shelley::fsm
