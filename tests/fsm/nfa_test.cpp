#include "fsm/nfa.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "testing.hpp"

namespace shelley::fsm {
namespace {

class NfaTest : public ::testing::Test {
 protected:
  SymbolTable table_;
  Symbol a_ = table_.intern("a");
  Symbol b_ = table_.intern("b");
};

TEST_F(NfaTest, AddStatesReturnsSequentialIds) {
  Nfa nfa;
  EXPECT_EQ(nfa.add_state(), 0u);
  EXPECT_EQ(nfa.add_state(), 1u);
  EXPECT_EQ(nfa.add_states(3), 2u);
  EXPECT_EQ(nfa.state_count(), 5u);
}

TEST_F(NfaTest, TransitionBoundsChecked) {
  Nfa nfa;
  nfa.add_state();
  EXPECT_THROW(nfa.add_transition(0, a_, 7), std::out_of_range);
  EXPECT_THROW(nfa.add_transition(7, a_, 0), std::out_of_range);
  EXPECT_THROW(nfa.mark_initial(9), std::out_of_range);
  EXPECT_THROW(nfa.mark_accepting(9), std::out_of_range);
}

TEST_F(NfaTest, AcceptsSimpleChain) {
  Nfa nfa;
  const StateId s0 = nfa.add_state();
  const StateId s1 = nfa.add_state();
  const StateId s2 = nfa.add_state();
  nfa.add_transition(s0, a_, s1);
  nfa.add_transition(s1, b_, s2);
  nfa.mark_initial(s0);
  nfa.mark_accepting(s2);
  EXPECT_TRUE(nfa.accepts({a_, b_}));
  EXPECT_FALSE(nfa.accepts({a_}));
  EXPECT_FALSE(nfa.accepts({b_, a_}));
  EXPECT_FALSE(nfa.accepts({}));
}

TEST_F(NfaTest, EpsilonClosureIsTransitive) {
  Nfa nfa;
  nfa.add_states(4);
  nfa.add_epsilon(0, 1);
  nfa.add_epsilon(1, 2);
  nfa.add_transition(2, a_, 3);
  const auto closure = nfa.epsilon_closure(std::set<StateId>{0});
  EXPECT_EQ(closure, (std::set<StateId>{0, 1, 2}));
}

TEST_F(NfaTest, EpsilonClosureHandlesCycles) {
  Nfa nfa;
  nfa.add_states(2);
  nfa.add_epsilon(0, 1);
  nfa.add_epsilon(1, 0);
  EXPECT_EQ(nfa.epsilon_closure(std::set<StateId>{0}),
            (std::set<StateId>{0, 1}));
}

TEST_F(NfaTest, AcceptanceThroughEpsilon) {
  Nfa nfa;
  nfa.add_states(3);
  nfa.mark_initial(0);
  nfa.add_epsilon(0, 1);
  nfa.add_transition(1, a_, 2);
  nfa.mark_accepting(2);
  EXPECT_TRUE(nfa.accepts({a_}));
  EXPECT_FALSE(nfa.accepts({}));
  nfa.mark_accepting(1);  // now ε-reachable accepting
  EXPECT_TRUE(nfa.accepts({}));
}

TEST_F(NfaTest, NondeterministicBranching) {
  Nfa nfa;
  nfa.add_states(3);
  nfa.mark_initial(0);
  nfa.add_transition(0, a_, 1);
  nfa.add_transition(0, a_, 2);
  nfa.add_transition(1, a_, 1);
  nfa.add_transition(2, b_, 2);
  nfa.mark_accepting(1);
  nfa.mark_accepting(2);
  EXPECT_TRUE(nfa.accepts({a_, a_, a_}));
  EXPECT_TRUE(nfa.accepts({a_, b_, b_}));
  EXPECT_FALSE(nfa.accepts({a_, a_, b_}));
}

TEST_F(NfaTest, AlphabetExcludesEpsilon) {
  Nfa nfa;
  nfa.add_states(2);
  nfa.add_transition(0, a_, 1);
  nfa.add_epsilon(0, 1);
  const auto& sigma = nfa.alphabet();
  EXPECT_EQ(sigma.size(), 1u);
  EXPECT_TRUE(std::binary_search(sigma.begin(), sigma.end(), a_));
  // The alphabet is cached: repeated calls return the same storage.
  EXPECT_EQ(sigma.data(), nfa.alphabet().data());
}

TEST_F(NfaTest, ImportStatesOffsetsEverything) {
  Nfa lhs;
  lhs.add_states(2);
  lhs.add_transition(0, a_, 1);
  lhs.mark_initial(0);
  lhs.mark_accepting(1);

  Nfa rhs;
  rhs.add_states(2);
  rhs.add_transition(0, b_, 1);
  rhs.mark_initial(0);
  rhs.mark_accepting(1);

  const StateId offset = lhs.import_states(rhs);
  EXPECT_EQ(offset, 2u);
  EXPECT_EQ(lhs.state_count(), 4u);
  // Imported initial/accepting markings are NOT carried over.
  EXPECT_EQ(lhs.initial_states().size(), 1u);
  EXPECT_EQ(lhs.accepting_states().size(), 1u);
  // But transitions are, shifted by the offset.
  bool found = false;
  for (const Transition& t : lhs.transitions()) {
    if (t.from == offset && t.to == offset + 1 && t.symbol == b_) found = true;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace shelley::fsm
