#include <gtest/gtest.h>

#include "fsm/ops.hpp"
#include "fsm/thompson.hpp"
#include "rex/derivative.hpp"
#include "rex/parser.hpp"

namespace shelley::fsm {
namespace {

class BrzozowskiTest : public ::testing::TestWithParam<const char*> {};

TEST_P(BrzozowskiTest, AgreesWithMooreMinimization) {
  SymbolTable table;
  const rex::Regex r = rex::parse(GetParam(), table);
  const Dfa dfa = determinize(from_regex(r));
  const Dfa moore = minimize(dfa);
  const Dfa brzozowski = minimize_brzozowski(dfa);
  // Both are minimal for the same language: equal language, and the
  // Brzozowski result (restricted to reachable states) has the same count.
  EXPECT_TRUE(equivalent(moore, brzozowski)) << GetParam();
  EXPECT_EQ(reachable_count(moore), reachable_count(brzozowski))
      << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, BrzozowskiTest,
    ::testing::Values("a", "a b", "(a b)* c", "a* b*", "(a + b)* a b",
                      "(a a a)*", "a (b + eps)", "((a + b) c)*",
                      "(a + b)* a (a + b)"));

TEST(Reverse, ReversesLanguage) {
  SymbolTable table;
  const Symbol a = table.intern("a");
  const Symbol b = table.intern("b");
  const Symbol c = table.intern("c");
  const Nfa nfa = from_regex(rex::parse("a b c", table));
  const Nfa reversed = reverse(nfa);
  EXPECT_TRUE(reversed.accepts({c, b, a}));
  EXPECT_FALSE(reversed.accepts({a, b, c}));
}

TEST(Reverse, InvolutionPreservesLanguage) {
  SymbolTable table;
  const rex::Regex r = rex::parse("(a + b)* a b", table);
  const Nfa nfa = from_regex(r);
  const Nfa twice = reverse(reverse(nfa));
  for (const Word& w : rex::enumerate_language(r, 5)) {
    EXPECT_TRUE(twice.accepts(w));
  }
}

TEST(Reverse, EmptyWordHandling) {
  SymbolTable table;
  const Nfa nfa = from_regex(rex::parse("a*", table));
  EXPECT_TRUE(reverse(nfa).accepts({}));
}

}  // namespace
}  // namespace shelley::fsm
