// DFA binary round-trip (fsm/serialize.hpp): language preservation across
// symbol tables with different interning orders, and structured rejection of
// every malformed encoding.
#include "fsm/serialize.hpp"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fsm/dfa.hpp"
#include "support/binary.hpp"
#include "testing.hpp"

namespace shelley::fsm {
namespace {

using shelley::testing::word;

/// A 3-state DFA over {open, close}: accepts (open close)*.
Dfa sample_dfa(SymbolTable& table) {
  const Symbol open = table.intern("open");
  const Symbol close = table.intern("close");
  std::vector<Symbol> alphabet{open, close};
  if (alphabet[1] < alphabet[0]) std::swap(alphabet[0], alphabet[1]);
  Dfa dfa(3, alphabet);
  const std::size_t o = *dfa.letter_index(open);
  const std::size_t c = *dfa.letter_index(close);
  // 0 -open-> 1 -close-> 0; everything else -> sink 2.
  dfa.set_transition(0, o, 1);
  dfa.set_transition(0, c, 2);
  dfa.set_transition(1, o, 2);
  dfa.set_transition(1, c, 0);
  dfa.set_transition(2, o, 2);
  dfa.set_transition(2, c, 2);
  dfa.set_accepting(0, true);
  return dfa;
}

TEST(Serialize, RoundTripSameTable) {
  SymbolTable table;
  const Dfa dfa = sample_dfa(table);
  const Dfa back = dfa_from_bytes(dfa_to_bytes(dfa, table), table);

  EXPECT_EQ(back.state_count(), dfa.state_count());
  EXPECT_EQ(back.initial(), dfa.initial());
  EXPECT_EQ(back.alphabet(), dfa.alphabet());
  EXPECT_EQ(back.transition_table(), dfa.transition_table());
  EXPECT_TRUE(back.accepts(word(table, {"open", "close"})));
  EXPECT_FALSE(back.accepts(word(table, {"close"})));
}

TEST(Serialize, RoundTripAcrossTablesWithDifferentInterningOrder) {
  SymbolTable source;
  const Dfa dfa = sample_dfa(source);  // interns open then close

  // The destination table interns in the opposite relative order (and with
  // extra symbols in between), so the raw symbol ids all differ; only the
  // names carry over.  The language must survive.
  SymbolTable dest;
  dest.intern("unrelated");
  dest.intern("close");
  dest.intern("padding");
  dest.intern("open");
  const Dfa back = dfa_from_bytes(dfa_to_bytes(dfa, source), dest);

  // The Dfa invariant: alphabet sorted by (destination) symbol id.
  ASSERT_EQ(back.alphabet().size(), 2u);
  EXPECT_LT(back.alphabet()[0], back.alphabet()[1]);

  EXPECT_TRUE(back.accepts(word(dest, {"open", "close"})));
  EXPECT_TRUE(back.accepts(word(dest, {"open", "close", "open", "close"})));
  EXPECT_TRUE(back.accepts(word(dest, {})));
  EXPECT_FALSE(back.accepts(word(dest, {"open", "open"})));
  EXPECT_FALSE(back.accepts(word(dest, {"close"})));
}

TEST(Serialize, TruncationAtEveryPrefixThrows) {
  SymbolTable table;
  const std::string bytes = dfa_to_bytes(sample_dfa(table), table);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    SymbolTable fresh;
    EXPECT_THROW(
        { (void)dfa_from_bytes(bytes.substr(0, cut), fresh); },
        support::BinaryFormatError)
        << "prefix of " << cut << " bytes decoded";
  }
}

TEST(Serialize, TrailingGarbageThrows) {
  SymbolTable table;
  const std::string bytes = dfa_to_bytes(sample_dfa(table), table) + "x";
  SymbolTable fresh;
  EXPECT_THROW({ (void)dfa_from_bytes(bytes, fresh); },
               support::BinaryFormatError);
}

TEST(Serialize, RejectsImplausibleSizes) {
  // A huge alphabet count must be rejected before any allocation happens.
  support::BinaryWriter writer;
  writer.u64(std::uint64_t{1} << 40);
  SymbolTable table;
  EXPECT_THROW({ (void)dfa_from_bytes(writer.take(), table); },
               support::BinaryFormatError);
}

TEST(Serialize, RejectsDuplicateAlphabetNames) {
  support::BinaryWriter writer;
  writer.u64(2);  // alphabet size
  writer.str("open");
  writer.str("open");
  writer.u64(1);  // states
  writer.u32(0);  // initial
  writer.u8(1);   // accepting
  writer.u32(0);  // cells
  writer.u32(0);
  SymbolTable table;
  EXPECT_THROW({ (void)dfa_from_bytes(writer.take(), table); },
               support::BinaryFormatError);
}

TEST(Serialize, RejectsOutOfRangeTransition) {
  SymbolTable table;
  std::string bytes = dfa_to_bytes(sample_dfa(table), table);
  // The last u32 is a transition target; 0xffffffff is out of range for a
  // 3-state automaton.
  bytes[bytes.size() - 1] = '\xff';
  bytes[bytes.size() - 2] = '\xff';
  bytes[bytes.size() - 3] = '\xff';
  bytes[bytes.size() - 4] = '\xff';
  SymbolTable fresh;
  EXPECT_THROW({ (void)dfa_from_bytes(bytes, fresh); },
               support::BinaryFormatError);
}

TEST(Serialize, RejectsOutOfRangeInitialState) {
  support::BinaryWriter writer;
  writer.u64(1);  // alphabet
  writer.str("a");
  writer.u64(1);   // states
  writer.u32(99);  // initial out of range
  writer.u8(0);
  writer.u32(0);
  SymbolTable table;
  EXPECT_THROW({ (void)dfa_from_bytes(writer.take(), table); },
               support::BinaryFormatError);
}

}  // namespace
}  // namespace shelley::fsm
