#include "ltlf/parser.hpp"

#include <gtest/gtest.h>

#include <string>

#include "support/guard.hpp"

namespace shelley::ltlf {
namespace {

class LtlfParserTest : public ::testing::Test {
 protected:
  Formula parse_(const char* text) { return parse(text, table_); }
  SymbolTable table_;
};

TEST_F(LtlfParserTest, AtomsAndConstants) {
  EXPECT_EQ(parse_("true")->kind(), Kind::kTrue);
  EXPECT_EQ(parse_("false")->kind(), Kind::kFalse);
  EXPECT_EQ(parse_("end")->kind(), Kind::kEnd);
  const Formula a = parse_("a.open");
  ASSERT_EQ(a->kind(), Kind::kAtom);
  EXPECT_EQ(table_.name(a->symbol()), "a.open");
}

TEST_F(LtlfParserTest, PaperClaimParses) {
  // (!a.open) W b.open  desugars to  (!a.open U b.open) | G !a.open.
  const Formula claim = parse_("(!a.open) W b.open");
  ASSERT_EQ(claim->kind(), Kind::kOr);
  EXPECT_TRUE(structurally_equal(
      claim, make_weak_until(make_not(atom(*table_.lookup("a.open"))),
                             atom(*table_.lookup("b.open")))));
}

TEST_F(LtlfParserTest, UnarySpellings) {
  EXPECT_TRUE(structurally_equal(parse_("!a"), parse_("not a")));
  EXPECT_TRUE(structurally_equal(parse_("!a"), parse_("¬a")));
  EXPECT_EQ(parse_("X a")->kind(), Kind::kNext);
  EXPECT_EQ(parse_("N a")->kind(), Kind::kWeakNext);
  EXPECT_EQ(parse_("F a")->kind(), Kind::kUntil);   // F a = true U a
  EXPECT_EQ(parse_("G a")->kind(), Kind::kRelease); // G a = false R a
}

TEST_F(LtlfParserTest, BinarySpellings) {
  EXPECT_TRUE(structurally_equal(parse_("a & b"), parse_("a && b")));
  EXPECT_TRUE(structurally_equal(parse_("a & b"), parse_("a and b")));
  EXPECT_TRUE(structurally_equal(parse_("a | b"), parse_("a || b")));
  EXPECT_TRUE(structurally_equal(parse_("a | b"), parse_("a or b")));
}

TEST_F(LtlfParserTest, PrecedenceUnaryOverAndOverOrOverTemporal) {
  // !a & b  ==  (!a) & b
  const Formula f1 = parse_("!a & b");
  ASSERT_EQ(f1->kind(), Kind::kAnd);
  // a & b | c  ==  (a & b) | c
  const Formula f2 = parse_("a & b | c");
  ASSERT_EQ(f2->kind(), Kind::kOr);
  // a | b U c  ==  a | (b U c)   (temporal binds tighter than | and &)
  const Formula f3 = parse_("a | b U c");
  ASSERT_EQ(f3->kind(), Kind::kOr);
}

TEST_F(LtlfParserTest, TemporalRightAssociative) {
  // a U b U c  ==  a U (b U c)
  const Formula f = parse_("a U b U c");
  ASSERT_EQ(f->kind(), Kind::kUntil);
  EXPECT_EQ(f->right()->kind(), Kind::kUntil);
}

TEST_F(LtlfParserTest, ImpliesIsRightAssociativeAndLoosest) {
  // a -> b -> c  ==  a -> (b -> c)  ==  !a | (!b | c)
  const Formula f = parse_("a -> b -> c");
  ASSERT_EQ(f->kind(), Kind::kOr);
}

TEST_F(LtlfParserTest, NestedTemporal) {
  const Formula f = parse_("G (request -> F grant)");
  ASSERT_EQ(f->kind(), Kind::kRelease);
  EXPECT_EQ(f->left()->kind(), Kind::kFalse);
}

TEST_F(LtlfParserTest, Errors) {
  EXPECT_THROW(parse_(""), ParseError);
  EXPECT_THROW(parse_("a &"), ParseError);
  EXPECT_THROW(parse_("(a"), ParseError);
  EXPECT_THROW(parse_("a b"), ParseError);  // juxtaposition is not valid
  EXPECT_THROW(parse_("U a"), ParseError);
  EXPECT_THROW(parse_("a # b"), ParseError);
}

TEST_F(LtlfParserTest, ErrorsCarryTheColumnWithinTheFormula) {
  // Regression: every error used to claim line 1, regardless of where the
  // claim annotation lives in its file.
  try {
    (void)parse_("a # b");
    FAIL() << "expected ParseError";
  } catch (const ParseError& error) {
    EXPECT_EQ(error.loc(), (SourceLoc{1, 3}));
  }
}

TEST_F(LtlfParserTest, ErrorsAreOffsetByTheAnnotationOrigin) {
  // A claim embedded at line 12, column 8 of a .py file reports errors in
  // that file's coordinates.
  try {
    (void)parse("a # b", table_, {12, 8});
    FAIL() << "expected ParseError";
  } catch (const ParseError& error) {
    EXPECT_EQ(error.loc(), (SourceLoc{12, 10}));
  }
  try {
    (void)parse("a &", table_, {33, 5});
    FAIL() << "expected ParseError";
  } catch (const ParseError& error) {
    EXPECT_EQ(error.loc().line, 33u);
  }
}

TEST_F(LtlfParserTest, OriginDoesNotChangeTheParse) {
  EXPECT_TRUE(structurally_equal(parse("G (a -> F b)", table_, {99, 42}),
                                 parse_("G (a -> F b)")));
}

TEST_F(LtlfParserTest, DeepNestingFailsWithDiagnosticNotCrash) {
  std::string text(100000, '(');
  text += "a";
  text += std::string(100000, ')');
  try {
    (void)parse(text, table_);
    FAIL() << "expected ResourceError";
  } catch (const support::guard::ResourceError& error) {
    EXPECT_EQ(error.resource(), support::guard::Resource::kRecursionDepth);
  }
}

TEST_F(LtlfParserTest, DeepNotChainAlsoGuarded) {
  std::string text;
  for (int i = 0; i < 100000; ++i) text += "!";
  text += "a";
  EXPECT_THROW((void)parse(text, table_), support::guard::ResourceError);
}

TEST_F(LtlfParserTest, NestingBelowTheCapStillParses) {
  std::string text(100, '(');
  text += "a";
  text += std::string(100, ')');
  EXPECT_NO_THROW((void)parse(text, table_));
}

TEST_F(LtlfParserTest, RoundTripThroughPrinter) {
  const char* cases[] = {"a U b", "G a", "F a", "!a & b | c",
                         "G (a.open -> F a.close)", "N a", "X a"};
  for (const char* text : cases) {
    const Formula first = parse(text, table_);
    const Formula second = parse(to_string(first, table_), table_);
    EXPECT_TRUE(structurally_equal(first, second)) << text;
  }
}

}  // namespace
}  // namespace shelley::ltlf
