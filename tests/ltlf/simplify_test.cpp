#include <gtest/gtest.h>

#include "ltlf/eval.hpp"
#include "ltlf/formula.hpp"
#include "ltlf/parser.hpp"

namespace shelley::ltlf {
namespace {

class SimplifyTest : public ::testing::Test {
 protected:
  Formula parse_(const char* text) { return parse(text, table_); }
  SymbolTable table_;
};

TEST_F(SimplifyTest, UntilIdempotence) {
  EXPECT_TRUE(structurally_equal(simplify(parse_("a U (a U b)")),
                                 parse_("a U b")));
}

TEST_F(SimplifyTest, NestedFinally) {
  EXPECT_TRUE(structurally_equal(simplify(parse_("F F a")), parse_("F a")));
}

TEST_F(SimplifyTest, NestedGlobally) {
  EXPECT_TRUE(structurally_equal(simplify(parse_("G G a")), parse_("G a")));
}

TEST_F(SimplifyTest, ReleaseIdempotence) {
  EXPECT_TRUE(structurally_equal(simplify(parse_("a R (a R b)")),
                                 parse_("a R b")));
}

TEST_F(SimplifyTest, DeepNestsCollapse) {
  EXPECT_TRUE(
      structurally_equal(simplify(parse_("F F F F a")), parse_("F a")));
  EXPECT_TRUE(structurally_equal(simplify(parse_("G (G (G a))")),
                                 parse_("G a")));
}

TEST_F(SimplifyTest, SimplificationInsideConnectives) {
  EXPECT_TRUE(structurally_equal(simplify(parse_("F F a & G G b")),
                                 parse_("F a & G b")));
  EXPECT_TRUE(structurally_equal(simplify(parse_("!(F F a)")),
                                 parse_("!(F a)")));
  EXPECT_TRUE(structurally_equal(simplify(parse_("X (F F a)")),
                                 parse_("X (F a)")));
}

TEST_F(SimplifyTest, IrreducibleFormulasUnchanged) {
  const char* cases[] = {"a", "a U b", "G (a -> F b)", "N a", "a W b"};
  for (const char* text : cases) {
    const Formula f = parse(text, table_);
    EXPECT_TRUE(structurally_equal(simplify(f), f)) << text;
  }
}

// The critical property: simplification preserves the finite-trace
// semantics on every word up to length 4.
class SimplifyPreservation : public ::testing::TestWithParam<const char*> {};

TEST_P(SimplifyPreservation, SameSemantics) {
  SymbolTable table;
  const Formula original = parse(GetParam(), table);
  const Formula simplified = simplify(original);
  const Symbol sigma[] = {table.intern("a"), table.intern("b")};

  std::vector<Word> words{{}};
  for (std::size_t i = 0; i < words.size(); ++i) {
    if (words[i].size() >= 4) continue;
    for (Symbol s : sigma) {
      Word w = words[i];
      w.push_back(s);
      words.push_back(std::move(w));
    }
  }
  for (const Word& w : words) {
    EXPECT_EQ(eval(original, w), eval(simplified, w)) << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, SimplifyPreservation,
    ::testing::Values("F F a", "G G a", "a U (a U b)", "a R (a R b)",
                      "F F a | G G b", "G (a -> F F b)", "X F F a",
                      "!(G G a)", "(a U (a U b)) & G G a", "N (F F a)"));

}  // namespace
}  // namespace shelley::ltlf
