#include "ltlf/automaton.hpp"

#include <gtest/gtest.h>

#include "fsm/ops.hpp"
#include "fsm/thompson.hpp"
#include "ltlf/eval.hpp"
#include "ltlf/parser.hpp"
#include "rex/parser.hpp"

namespace shelley::ltlf {
namespace {

std::vector<Word> all_words(const std::vector<Symbol>& sigma,
                            std::size_t max_length) {
  std::vector<Word> words{{}};
  for (std::size_t i = 0; i < words.size(); ++i) {
    if (words[i].size() >= max_length) continue;
    for (Symbol s : sigma) {
      Word w = words[i];
      w.push_back(s);
      words.push_back(std::move(w));
    }
  }
  return words;
}

// The defining property of the construction: the DFA accepts exactly the
// words (over the joint alphabet) satisfying the formula.
class ToDfaProperty : public ::testing::TestWithParam<const char*> {};

TEST_P(ToDfaProperty, DfaAgreesWithEvalOracle) {
  SymbolTable table;
  const Formula f = parse(GetParam(), table);
  const std::vector<Symbol> sigma{table.intern("a"), table.intern("b"),
                                  table.intern("c")};
  const fsm::Dfa dfa = to_dfa(f, sigma);
  for (const Word& w : all_words(sigma, 4)) {
    EXPECT_EQ(dfa.accepts(w), eval(f, w))
        << GetParam() << " on " << to_string(w, table);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, ToDfaProperty,
    ::testing::Values("a", "!a", "X a", "N a", "a U b", "a R b", "F a",
                      "G a", "a W b", "G (a -> X b)", "G (a -> N b)",
                      "F (a & X b)", "(a U b) & G !c", "end", "N end",
                      "true", "false", "G (a -> F b)", "!a U (b & X c)"));

TEST(ToDfa, AlphabetJoinsFormulaAtoms) {
  SymbolTable table;
  const Formula f = parse("x.err", table);
  // System alphabet does not mention x.err; the DFA's alphabet must.
  const fsm::Dfa dfa = to_dfa(f, {table.intern("a")});
  EXPECT_EQ(dfa.alphabet().size(), 2u);
}

TEST(ToDfa, StateBoundEnforced) {
  SymbolTable table;
  const Formula f = parse("G (a -> X (b & X (c & X a)))", table);
  EXPECT_THROW(
      to_dfa(f, {table.intern("a"), table.intern("b"), table.intern("c")},
             /*max_states=*/1),
      std::runtime_error);
}

TEST(ToDfa, ProducesSmallAutomataForTypicalClaims) {
  SymbolTable table;
  const Formula f = parse("(!a.open) W b.open", table);
  const fsm::Dfa dfa =
      to_dfa(f, {table.intern("a.open"), table.intern("b.open"),
                 table.intern("a.test")});
  EXPECT_LE(dfa.state_count(), 8u);
}

class CounterexampleTest : public ::testing::Test {
 protected:
  fsm::Dfa system_(const char* regex_text) {
    return fsm::determinize(
        fsm::from_regex(rex::parse(regex_text, table_)));
  }
  SymbolTable table_;
};

TEST_F(CounterexampleTest, HoldsWhenAllTracesSatisfy) {
  // System: a then b.  Claim: F b.
  const auto witness = counterexample(system_("a b"), parse("F b", table_));
  EXPECT_FALSE(witness.has_value());
}

TEST_F(CounterexampleTest, FindsShortestViolation) {
  // System: (a + b) (a + b).  Claim: G !a -- violated by words containing a.
  const auto witness =
      counterexample(system_("(a + b) (a + b)"), parse("G !a", table_));
  ASSERT_TRUE(witness.has_value());
  EXPECT_EQ(witness->size(), 2u);  // every system word has length 2
  // The witness must actually violate the claim and be in the system.
  EXPECT_FALSE(eval(parse("G !a", table_), *witness));
}

TEST_F(CounterexampleTest, PaperClaimOnOpenBeforeB) {
  // System language: a.test a.open b.open  -- violates (!a.open) W b.open.
  const auto witness = counterexample(
      system_("a.test a.open b.open"), parse("(!a.open) W b.open", table_));
  ASSERT_TRUE(witness.has_value());
  EXPECT_FALSE(eval(parse("(!a.open) W b.open", table_), *witness));
}

TEST_F(CounterexampleTest, EmptySystemSatisfiesEverything) {
  const auto witness =
      counterexample(system_("void"), parse("false", table_));
  EXPECT_FALSE(witness.has_value());
}

TEST_F(CounterexampleTest, EmptyTraceCanViolate) {
  // System contains ε; claim F a fails on ε.
  const auto witness = counterexample(system_("a*"), parse("F a", table_));
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(witness->empty());
}

}  // namespace
}  // namespace shelley::ltlf
