// Negation normal form (make_not) and DNF state canonicalization (to_dnf):
// the pair that keeps the progression construction finite.  Includes
// regression cases that previously made to_dfa diverge.
#include <gtest/gtest.h>

#include <chrono>

#include "ltlf/automaton.hpp"
#include "ltlf/eval.hpp"
#include "ltlf/parser.hpp"

namespace shelley::ltlf {
namespace {

class NnfTest : public ::testing::Test {
 protected:
  Formula parse_(const char* text) { return parse(text, table_); }
  SymbolTable table_;
};

TEST_F(NnfTest, NegationOnlyWrapsAtomsAndEnd) {
  const Formula cases[] = {
      make_not(parse_("a & b")),        make_not(parse_("a | b")),
      make_not(parse_("X a")),          make_not(parse_("N a")),
      make_not(parse_("a U b")),        make_not(parse_("a R b")),
      make_not(parse_("G (a -> F b)")), make_not(parse_("(a U b) U F c")),
  };
  const std::function<void(const Formula&)> check =
      [&](const Formula& f) {
        if (f->kind() == Kind::kNot) {
          EXPECT_TRUE(f->left()->kind() == Kind::kAtom ||
                      f->left()->kind() == Kind::kEnd)
              << to_string(f, table_);
          return;
        }
        if (f->left()) check(f->left());
        if (f->right()) check(f->right());
      };
  for (const Formula& f : cases) check(f);
}

TEST_F(NnfTest, DualizationLaws) {
  // De Morgan.
  EXPECT_TRUE(structurally_equal(make_not(parse_("a & b")),
                                 parse_("!a | !b")));
  EXPECT_TRUE(structurally_equal(make_not(parse_("a | b")),
                                 parse_("!a & !b")));
  // Temporal duals.
  EXPECT_TRUE(structurally_equal(make_not(parse_("X a")), parse_("N !a")));
  EXPECT_TRUE(structurally_equal(make_not(parse_("N a")), parse_("X !a")));
  EXPECT_TRUE(structurally_equal(make_not(parse_("a U b")),
                                 parse_("!a R !b")));
  EXPECT_TRUE(structurally_equal(make_not(parse_("a R b")),
                                 parse_("!a U !b")));
  // Involution.
  const Formula f = parse_("G (a -> F b)");
  EXPECT_TRUE(structurally_equal(make_not(make_not(f)), f));
}

TEST_F(NnfTest, NegationIsSemanticComplement) {
  const char* cases[] = {"a & b", "X a", "N a", "a U b", "a R b",
                         "G (a -> F b)", "(a U b) U F c", "a W b"};
  const Symbol sigma[] = {table_.intern("a"), table_.intern("b"),
                          table_.intern("c")};
  std::vector<Word> words{{}};
  for (std::size_t i = 0; i < words.size(); ++i) {
    if (words[i].size() >= 4) continue;
    for (Symbol s : sigma) {
      Word w = words[i];
      w.push_back(s);
      words.push_back(std::move(w));
    }
  }
  for (const char* text : cases) {
    const Formula f = parse(text, table_);
    const Formula negated = make_not(f);
    for (const Word& w : words) {
      EXPECT_NE(eval(f, w), eval(negated, w))
          << text << " on word of length " << w.size();
    }
  }
}

TEST_F(NnfTest, DnfIsSemanticallyEqual) {
  const char* cases[] = {"(a | b) & (c | a)", "a & (b | c) & (a | c)",
                        "G a & (F b | X c)", "(a & b) | (a & b & c)"};
  const Symbol sigma[] = {table_.intern("a"), table_.intern("b"),
                          table_.intern("c")};
  std::vector<Word> words{{}};
  for (std::size_t i = 0; i < words.size(); ++i) {
    if (words[i].size() >= 3) continue;
    for (Symbol s : sigma) {
      Word w = words[i];
      w.push_back(s);
      words.push_back(std::move(w));
    }
  }
  for (const char* text : cases) {
    const Formula f = parse(text, table_);
    const Formula dnf = to_dnf(f);
    for (const Word& w : words) {
      EXPECT_EQ(eval(f, w), eval(dnf, w)) << text;
    }
  }
}

TEST_F(NnfTest, AbsorptionCollapses) {
  // A | (A & B) = A;  A & (A | B) = A.
  const Formula a = parse_("a");
  const Formula ab = parse_("a & b");
  EXPECT_TRUE(structurally_equal(make_or(a, ab), a));
  const Formula a_or_b = parse_("a | b");
  EXPECT_TRUE(structurally_equal(make_and(a, a_or_b), a));
}

// Regression: these negated nested-until formulas previously generated
// unboundedly many structurally distinct progression states.
class ProgressionConvergence : public ::testing::TestWithParam<const char*> {
};

TEST_P(ProgressionConvergence, ToDfaTerminatesQuicklyOnNegation) {
  SymbolTable table;
  const Formula f = parse(GetParam(), table);
  std::vector<Symbol> sigma{table.intern("a"), table.intern("b"),
                            table.intern("c")};
  const auto start = std::chrono::steady_clock::now();
  const fsm::Dfa dfa = to_dfa(make_not(f), sigma);
  const auto elapsed = std::chrono::duration_cast<std::chrono::seconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_LT(dfa.state_count(), 64u) << GetParam();
  EXPECT_LT(elapsed.count(), 10) << GetParam();
  // And the automaton is still correct (spot-check against the evaluator).
  for (const Word w : {Word{}, Word{table.intern("a")},
                       Word{table.intern("a"), table.intern("b")}}) {
    EXPECT_EQ(dfa.accepts(w), eval(make_not(f), w)) << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Regressions, ProgressionConvergence,
    ::testing::Values("(a U b) U (F c)",
                      "((a U b) | (G a) U (F c)) | (G ((a U b) | (G a)))",
                      "(a U b) R (c U a)", "G ((a U b) U c)",
                      "F ((a R b) R c)"));

}  // namespace
}  // namespace shelley::ltlf
