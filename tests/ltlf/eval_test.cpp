#include "ltlf/eval.hpp"

#include <gtest/gtest.h>

#include <random>

#include "ltlf/parser.hpp"
#include "testing.hpp"

namespace shelley::ltlf {
namespace {

class EvalTest : public ::testing::Test {
 protected:
  Formula parse_(const char* text) { return parse(text, table_); }
  Word word_(std::initializer_list<const char*> names) {
    return testing::word(table_, names);
  }
  SymbolTable table_;
};

TEST_F(EvalTest, AtomsHoldAtMatchingPosition) {
  EXPECT_TRUE(eval(parse_("a"), word_({"a"})));
  EXPECT_TRUE(eval(parse_("a"), word_({"a", "b"})));
  EXPECT_FALSE(eval(parse_("a"), word_({"b", "a"})));
  EXPECT_FALSE(eval(parse_("a"), {}));
}

TEST_F(EvalTest, BooleanConnectives) {
  EXPECT_TRUE(eval(parse_("a & X b"), word_({"a", "b"})));
  EXPECT_FALSE(eval(parse_("a & X b"), word_({"a", "c"})));
  EXPECT_TRUE(eval(parse_("a | b"), word_({"b"})));
  EXPECT_TRUE(eval(parse_("!a"), word_({"b"})));
  EXPECT_TRUE(eval(parse_("a -> b"), word_({"c"})));  // vacuous
  EXPECT_FALSE(eval(parse_("a -> b"), word_({"a"})));
}

TEST_F(EvalTest, StrongVersusWeakNext) {
  // At the last position X φ fails, N φ holds.
  EXPECT_FALSE(eval(parse_("X true"), word_({"a"})));
  EXPECT_TRUE(eval(parse_("N false"), word_({"a"})));
  EXPECT_TRUE(eval(parse_("X b"), word_({"a", "b"})));
  EXPECT_FALSE(eval(parse_("X b"), word_({"a", "c"})));
  EXPECT_TRUE(eval(parse_("N b"), word_({"a", "b"})));
}

TEST_F(EvalTest, UntilRequiresWitness) {
  EXPECT_TRUE(eval(parse_("a U b"), word_({"a", "a", "b"})));
  EXPECT_TRUE(eval(parse_("a U b"), word_({"b"})));
  EXPECT_FALSE(eval(parse_("a U b"), word_({"a", "a"})));  // b never happens
  EXPECT_FALSE(eval(parse_("a U b"), word_({"a", "c", "b"})));
  EXPECT_FALSE(eval(parse_("a U b"), {}));
}

TEST_F(EvalTest, FinallyAndGlobally) {
  EXPECT_TRUE(eval(parse_("F b"), word_({"a", "a", "b"})));
  EXPECT_FALSE(eval(parse_("F b"), word_({"a", "a"})));
  EXPECT_FALSE(eval(parse_("F b"), {}));
  EXPECT_TRUE(eval(parse_("G a"), word_({"a", "a", "a"})));
  EXPECT_FALSE(eval(parse_("G a"), word_({"a", "b"})));
  EXPECT_TRUE(eval(parse_("G a"), {}));  // vacuous on the empty trace
}

TEST_F(EvalTest, ReleaseSemantics) {
  // b must hold up to and including the first a (or forever).
  EXPECT_TRUE(eval(parse_("a R b"), word_({"b", "b", "b"})));
  EXPECT_TRUE(eval(parse_("a R b"), word_({"b", "b"})));
  Word w = word_({"b"});
  w.push_back(table_.intern("ab"));
  EXPECT_FALSE(eval(parse_("a R b"), word_({"b", "c"})));
  EXPECT_TRUE(eval(parse_("a R b"), {}));
}

TEST_F(EvalTest, WeakUntilPaperDefinition) {
  // (!a.open) W b.open: a.open must not happen until b.open does.
  const Formula claim = parse_("(!a.open) W b.open");
  EXPECT_TRUE(eval(claim, {}));
  EXPECT_TRUE(eval(claim, word_({"a.test", "a.clean"})));
  EXPECT_TRUE(eval(claim, word_({"b.open", "a.open"})));
  EXPECT_FALSE(eval(claim, word_({"a.open"})));
  EXPECT_FALSE(eval(claim, word_({"a.test", "a.open", "b.open"})));
  // W does not require b.open to ever happen.
  EXPECT_TRUE(eval(claim, word_({"a.test", "a.test"})));
}

TEST_F(EvalTest, EndAtomMarksTraceEnd) {
  EXPECT_TRUE(eval(parse_("end"), {}));
  EXPECT_FALSE(eval(parse_("end"), word_({"a"})));
  // Positions range over events, and `end` never holds at an event
  // position, so the strong F end fails on every trace -- including ε,
  // where F has no position to use as a witness.
  EXPECT_FALSE(eval(parse_("F end"), {}));
  EXPECT_FALSE(eval(parse_("F end"), word_({"a"})));
  // N end says "at most one event follows... i.e. we are at the last".
  EXPECT_TRUE(eval(parse_("N end"), word_({"a"})));
  EXPECT_FALSE(eval(parse_("N end"), word_({"a", "b"})));
}

TEST_F(EvalTest, EmptyTraceTable) {
  EXPECT_TRUE(eval_empty(parse_("true")));
  EXPECT_FALSE(eval_empty(parse_("false")));
  EXPECT_FALSE(eval_empty(parse_("a")));
  EXPECT_TRUE(eval_empty(parse_("!a")));
  EXPECT_FALSE(eval_empty(parse_("X true")));
  EXPECT_TRUE(eval_empty(parse_("N false")));
  EXPECT_FALSE(eval_empty(parse_("a U b")));
  EXPECT_TRUE(eval_empty(parse_("a R b")));
  EXPECT_TRUE(eval_empty(parse_("G a")));
  EXPECT_FALSE(eval_empty(parse_("F a")));
}

TEST_F(EvalTest, ProgressionBaseCases) {
  const Symbol a = table_.intern("a");
  EXPECT_EQ(progress(parse_("true"), a)->kind(), Kind::kTrue);
  EXPECT_EQ(progress(parse_("false"), a)->kind(), Kind::kFalse);
  EXPECT_EQ(progress(parse_("end"), a)->kind(), Kind::kFalse);
  EXPECT_EQ(progress(parse_("a"), a)->kind(), Kind::kTrue);
  EXPECT_EQ(progress(parse_("b"), a)->kind(), Kind::kFalse);
}

// The fundamental progression property:  a·l ⊨ φ  iff  l ⊨ progress(φ, a),
// checked for a corpus of formulas over all words up to length 4.
class ProgressionProperty : public ::testing::TestWithParam<const char*> {};

TEST_P(ProgressionProperty, AgreesWithDirectEvaluation) {
  SymbolTable table;
  const Formula f = parse(GetParam(), table);
  const Symbol sigma[] = {table.intern("a"), table.intern("b"),
                          table.intern("c")};

  std::vector<Word> words{{}};
  for (std::size_t i = 0; i < words.size(); ++i) {
    if (words[i].size() >= 4) continue;
    for (Symbol s : sigma) {
      Word w = words[i];
      w.push_back(s);
      words.push_back(std::move(w));
    }
  }
  for (const Word& w : words) {
    if (w.empty()) {
      EXPECT_EQ(eval(f, w), eval_empty(f));
      continue;
    }
    const Word tail(w.begin() + 1, w.end());
    EXPECT_EQ(eval(f, w), eval(progress(f, w.front()), tail))
        << GetParam() << " on " << to_string(w, table);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, ProgressionProperty,
    ::testing::Values("a", "!a", "a & b", "a | X b", "X a", "N a", "a U b",
                      "a R b", "F a", "G a", "a W b", "G (a -> X b)",
                      "F (a & X b)", "(a U b) & G !c", "G (a -> N b)",
                      "end", "F end", "!end U a", "G (a -> F b)"));

// Randomized deep-formula progression check.
TEST(ProgressionRandom, RandomFormulasAgree) {
  SymbolTable table;
  const Symbol syms[] = {table.intern("a"), table.intern("b")};
  std::mt19937_64 rng(42);

  std::function<Formula(int)> gen = [&](int depth) -> Formula {
    std::uniform_int_distribution<int> pick(0, depth == 0 ? 3 : 11);
    switch (pick(rng)) {
      case 0: return truth();
      case 1: return falsity();
      case 2: return atom(syms[rng() % 2]);
      case 3: return end();
      case 4: return make_not(gen(depth - 1));
      case 5: return make_and(gen(depth - 1), gen(depth - 1));
      case 6: return make_or(gen(depth - 1), gen(depth - 1));
      case 7: return make_next(gen(depth - 1));
      case 8: return make_weak_next(gen(depth - 1));
      case 9: return make_until(gen(depth - 1), gen(depth - 1));
      case 10: return make_release(gen(depth - 1), gen(depth - 1));
      default: return make_weak_until(gen(depth - 1), gen(depth - 1));
    }
  };

  for (int round = 0; round < 300; ++round) {
    const Formula f = gen(3);
    Word w;
    const std::size_t length = rng() % 5;
    for (std::size_t i = 0; i < length; ++i) w.push_back(syms[rng() % 2]);
    if (w.empty()) {
      EXPECT_EQ(eval(f, w), eval_empty(f));
    } else {
      const Word tail(w.begin() + 1, w.end());
      EXPECT_EQ(eval(f, w), eval(progress(f, w.front()), tail))
          << to_string(f, table);
    }
  }
}

}  // namespace
}  // namespace shelley::ltlf
