#include <gtest/gtest.h>

#include "ltlf/eval.hpp"
#include "ltlf/parser.hpp"
#include "testing.hpp"

namespace shelley::ltlf {
namespace {

class IffTest : public ::testing::Test {
 protected:
  Formula parse_(const char* text) { return parse(text, table_); }
  Word word_(std::initializer_list<const char*> names) {
    return testing::word(table_, names);
  }
  SymbolTable table_;
};

TEST_F(IffTest, DesugarsToConjunctionOfImplications) {
  EXPECT_TRUE(structurally_equal(
      parse_("a <-> b"), parse_("(a -> b) & (b -> a)")));
}

TEST_F(IffTest, SemanticsOnTraces) {
  const Formula f = parse_("a <-> b");  // at position 0: both or neither
  EXPECT_FALSE(eval(f, word_({"a"})));
  EXPECT_FALSE(eval(f, word_({"b"})));
  EXPECT_TRUE(eval(f, word_({"c"})));  // neither holds
  EXPECT_TRUE(eval(f, {}));            // vacuously
}

TEST_F(IffTest, BindsLoosestLikeImplies) {
  // a & b <-> c  ==  (a & b) <-> c
  const Formula f = parse_("a & b <-> c");
  EXPECT_TRUE(structurally_equal(
      f, parse_("((a & b) -> c) & (c -> (a & b))")));
}

TEST_F(IffTest, TemporalOperandsWork) {
  const Formula f = parse_("F a <-> F b");
  EXPECT_TRUE(eval(f, word_({"c", "c"})));        // neither ever
  EXPECT_TRUE(eval(f, word_({"a", "b"})));        // both eventually
  EXPECT_FALSE(eval(f, word_({"a", "c"})));       // only a
}

}  // namespace
}  // namespace shelley::ltlf
