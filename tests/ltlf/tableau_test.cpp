// The on-the-fly tableau engine (ltlf/tableau.hpp): verdicts and witnesses
// against hand-built NFAs, cross-checked pair by pair against the
// progression-DFA oracle, plus the resource-guard regressions -- a
// pathological formula must time out as a clean ResourceError in BOTH
// engines, never a hang.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "fsm/ops.hpp"
#include "ltlf/automaton.hpp"
#include "ltlf/eval.hpp"
#include "ltlf/parser.hpp"
#include "ltlf/tableau.hpp"
#include "support/guard.hpp"

namespace shelley::ltlf {
namespace {

namespace guard = support::guard;

/// The DFA-oracle answer for the same (system, alphabet, formula) query.
std::optional<Word> oracle(const fsm::Nfa& system,
                           const std::vector<Symbol>& alphabet,
                           const Formula& formula) {
  return counterexample(fsm::minimize(fsm::determinize(system, alphabet)),
                        formula);
}

/// Asserts the two engines agree verdict-for-verdict and witness-for-witness
/// and that any witness independently checks out.
void expect_agreement(const fsm::Nfa& system,
                      const std::vector<Symbol>& alphabet,
                      const Formula& formula) {
  const TableauResult tableau = check_tableau(system, alphabet, formula);
  ASSERT_NE(tableau.verdict, TableauVerdict::kLimited);
  const auto witness = oracle(system, alphabet, formula);
  if (tableau.verdict == TableauVerdict::kHolds) {
    EXPECT_FALSE(witness.has_value());
    return;
  }
  ASSERT_TRUE(witness.has_value());
  EXPECT_EQ(tableau.counterexample, *witness);
  EXPECT_TRUE(system.accepts(tableau.counterexample));
  EXPECT_FALSE(eval(formula, tableau.counterexample));
}

class Tableau : public ::testing::Test {
 protected:
  /// (open close)* with a final `clean` option: open -> close cycles,
  /// accepting at the start state and after clean.
  fsm::Nfa valve() {
    fsm::Nfa nfa;
    const auto idle = nfa.add_state();
    const auto opened = nfa.add_state();
    const auto done = nfa.add_state();
    nfa.mark_initial(idle);
    nfa.mark_accepting(idle);
    nfa.mark_accepting(done);
    nfa.add_transition(idle, open_, opened);
    nfa.add_transition(opened, close_, idle);
    nfa.add_transition(idle, clean_, done);
    return nfa;
  }

  SymbolTable table_;
  Symbol open_ = table_.intern("open");
  Symbol close_ = table_.intern("close");
  Symbol clean_ = table_.intern("clean");
  std::vector<Symbol> alphabet_{open_, close_, clean_};
};

TEST_F(Tableau, HoldingClaimIsProved) {
  const Formula f = parse("G (open -> X close)", table_);
  const TableauResult result = check_tableau(valve(), alphabet_, f);
  EXPECT_EQ(result.verdict, TableauVerdict::kHolds);
  EXPECT_GT(result.frames, 0u);
}

TEST_F(Tableau, ViolatedClaimYieldsLexLeastShortestWitness) {
  // F open fails on the empty usage -- and the empty word is the shortest
  // violation, so it must be THE witness.
  const Formula f = parse("F open", table_);
  const TableauResult result = check_tableau(valve(), alphabet_, f);
  ASSERT_EQ(result.verdict, TableauVerdict::kCounterexample);
  EXPECT_TRUE(result.counterexample.empty());
  expect_agreement(valve(), alphabet_, f);
}

TEST_F(Tableau, NonEmptyWitnessMatchesOracle) {
  // G !clean is violated; shortest witness is the one-letter word "clean".
  const Formula f = parse("G !clean", table_);
  const TableauResult result = check_tableau(valve(), alphabet_, f);
  ASSERT_EQ(result.verdict, TableauVerdict::kCounterexample);
  EXPECT_EQ(result.counterexample, Word{clean_});
  expect_agreement(valve(), alphabet_, f);
}

TEST_F(Tableau, EmptyLanguageSatisfiesEverything) {
  fsm::Nfa empty;
  const auto s = empty.add_state();
  empty.mark_initial(s);  // no accepting state: L = {}
  empty.add_transition(s, open_, s);
  const TableauResult result =
      check_tableau(empty, alphabet_, parse("false", table_));
  EXPECT_EQ(result.verdict, TableauVerdict::kHolds);
}

TEST_F(Tableau, EpsilonTransitionsAreClosedOver) {
  // a --ε--> b --open--> accepting: the witness must thread the ε edge.
  fsm::Nfa nfa;
  const auto a = nfa.add_state();
  const auto b = nfa.add_state();
  const auto c = nfa.add_state();
  nfa.mark_initial(a);
  nfa.mark_accepting(c);
  nfa.add_epsilon(a, b);
  nfa.add_transition(b, open_, c);
  const Formula f = parse("G !open", table_);
  const TableauResult result = check_tableau(nfa, alphabet_, f);
  ASSERT_EQ(result.verdict, TableauVerdict::kCounterexample);
  EXPECT_EQ(result.counterexample, Word{open_});
  expect_agreement(nfa, alphabet_, f);
}

TEST_F(Tableau, AgreesWithOracleOnClaimPanel) {
  const char* claims[] = {
      "G (open -> F close)", "F clean",         "!open U clean",
      "G (close -> N !close)", "X (open | clean)", "end",
      "G end",               "F (open & close)", "true",
  };
  for (const char* text : claims) {
    SCOPED_TRACE(text);
    expect_agreement(valve(), alphabet_, parse(text, table_));
  }
}

TEST_F(Tableau, FrameBudgetReturnsLimitedNotWrong) {
  const Formula f = parse("G (open -> F close)", table_);
  const TableauResult result = check_tableau(valve(), alphabet_, f, 1);
  EXPECT_EQ(result.verdict, TableauVerdict::kLimited);
  EXPECT_NE(result.limit.find("frames"), std::string::npos);
}

TEST_F(Tableau, StateBudgetGuardThrows) {
  guard::Limits limits;
  limits.max_states = 1;
  guard::ScopedLimits scope(limits);
  EXPECT_THROW(check_tableau(valve(), alphabet_,
                             parse("G (open -> F close)", table_)),
               guard::ResourceError);
}

/// A deep right-nested Until chain over many distinct atoms: progression
/// explodes combinatorially, which is exactly what the deadline guard must
/// interrupt cleanly.
Formula pathological(SymbolTable& table, std::size_t depth) {
  Formula f = atom(table.intern("q" + std::to_string(depth)));
  for (std::size_t i = depth; i-- > 0;) {
    f = make_until(make_or(atom(table.intern("q" + std::to_string(i))),
                           make_next(f)),
                   make_and(f, make_finally(atom(table.intern(
                                   "q" + std::to_string(i))))));
  }
  return f;
}

TEST_F(Tableau, DeadlineGuardTimesOutCleanly) {
  guard::Limits limits;
  limits.timeout_ms = 1;
  guard::ScopedLimits scope(limits);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  // Negated so the root frame is not an immediate ε-counterexample (the
  // unnegated chain is strong, so ε would violate it on the spot) and the
  // tableau actually has to search.
  EXPECT_THROW(
      check_tableau(valve(), alphabet_, make_not(pathological(table_, 8))),
      guard::ResourceError);
}

// Satellite regression: the same pathological formula through ltlf::to_dfa
// must also die on the deadline (the per-letter check inside the row loop),
// not hang until the row finishes.
TEST_F(Tableau, ToDfaDeadlineTimesOutCleanly) {
  guard::Limits limits;
  limits.timeout_ms = 1;
  guard::ScopedLimits scope(limits);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_THROW(to_dfa(pathological(table_, 8), alphabet_),
               guard::ResourceError);
}

TEST_F(Tableau, SatisfiabilityClassifiesTheLintCases) {
  const Symbol a = table_.intern("a");
  const Symbol b = table_.intern("b");
  const std::vector<Symbol> sigma{a, b};
  // F a & G !a: the eventuality contradicts the invariant.
  EXPECT_EQ(satisfiable(make_and(make_finally(atom(a)),
                                 make_globally(make_not(atom(a)))),
                        sigma),
            Satisfiability::kUnsatisfiable);
  // One event cannot be two distinct symbols at once.
  EXPECT_EQ(satisfiable(make_finally(make_and(atom(a), atom(b))), sigma),
            Satisfiability::kUnsatisfiable);
  EXPECT_EQ(satisfiable(make_finally(atom(a)), sigma),
            Satisfiability::kSatisfiable);
  EXPECT_EQ(satisfiable(truth(), sigma), Satisfiability::kSatisfiable);
  // The negation of a tautology over this alphabet is unsatisfiable --
  // the shape the trivially-true lint tests.
  EXPECT_EQ(satisfiable(make_not(make_globally(make_or(
                            make_or(atom(a), atom(b)), falsity()))),
                        sigma),
            Satisfiability::kUnsatisfiable);
}

TEST_F(Tableau, SatisfiabilityBudgetReturnsUnknown) {
  EXPECT_EQ(satisfiable(pathological(table_, 6), {}, 1),
            Satisfiability::kUnknown);
}

}  // namespace
}  // namespace shelley::ltlf
