#include "ltlf/formula.hpp"

#include <gtest/gtest.h>

namespace shelley::ltlf {
namespace {

class FormulaTest : public ::testing::Test {
 protected:
  SymbolTable table_;
  Formula a_ = atom(table_.intern("a"));
  Formula b_ = atom(table_.intern("b"));
  Formula c_ = atom(table_.intern("c"));
};

TEST_F(FormulaTest, ConstantFolding) {
  EXPECT_EQ(make_not(truth())->kind(), Kind::kFalse);
  EXPECT_EQ(make_not(falsity())->kind(), Kind::kTrue);
  EXPECT_TRUE(structurally_equal(make_not(make_not(a_)), a_));
  EXPECT_EQ(make_and(a_, falsity())->kind(), Kind::kFalse);
  EXPECT_TRUE(structurally_equal(make_and(a_, truth()), a_));
  EXPECT_EQ(make_or(a_, truth())->kind(), Kind::kTrue);
  EXPECT_TRUE(structurally_equal(make_or(a_, falsity()), a_));
}

TEST_F(FormulaTest, AndOrAreACI) {
  EXPECT_TRUE(structurally_equal(make_and(a_, b_), make_and(b_, a_)));
  EXPECT_TRUE(structurally_equal(make_and(a_, make_and(b_, c_)),
                                 make_and(make_and(a_, b_), c_)));
  EXPECT_TRUE(structurally_equal(make_and(a_, a_), a_));
  EXPECT_TRUE(structurally_equal(make_or(a_, make_or(a_, b_)),
                                 make_or(b_, a_)));
}

TEST_F(FormulaTest, ComplementaryPairsCollapse) {
  EXPECT_EQ(make_and(a_, make_not(a_))->kind(), Kind::kFalse);
  EXPECT_EQ(make_or(a_, make_not(a_))->kind(), Kind::kTrue);
  // Even nested inside an n-ary operand list.
  EXPECT_EQ(make_and(make_and(a_, b_), make_not(a_))->kind(), Kind::kFalse);
}

TEST_F(FormulaTest, TemporalSimplifications) {
  EXPECT_EQ(make_next(falsity())->kind(), Kind::kFalse);
  EXPECT_EQ(make_weak_next(truth())->kind(), Kind::kTrue);
  EXPECT_EQ(make_until(a_, falsity())->kind(), Kind::kFalse);
  EXPECT_EQ(make_until(a_, truth())->kind(), Kind::kTrue);
  EXPECT_TRUE(structurally_equal(make_until(falsity(), b_), b_));
  EXPECT_TRUE(structurally_equal(make_release(truth(), b_), b_));
  EXPECT_EQ(make_release(a_, truth())->kind(), Kind::kTrue);
}

TEST_F(FormulaTest, DerivedOperators) {
  // F a = true U a
  const Formula f = make_finally(a_);
  ASSERT_EQ(f->kind(), Kind::kUntil);
  EXPECT_EQ(f->left()->kind(), Kind::kTrue);
  // G a = false R a
  const Formula g = make_globally(a_);
  ASSERT_EQ(g->kind(), Kind::kRelease);
  EXPECT_EQ(g->left()->kind(), Kind::kFalse);
  // a W b = (a U b) | G a  -- the paper's definition.
  const Formula w = make_weak_until(a_, b_);
  ASSERT_EQ(w->kind(), Kind::kOr);
  // a -> b = !a | b
  const Formula imp = make_implies(a_, b_);
  ASSERT_EQ(imp->kind(), Kind::kOr);
}

TEST_F(FormulaTest, AtomsCollected) {
  const Formula f =
      make_until(a_, make_and(b_, make_globally(make_not(c_))));
  EXPECT_EQ(atoms(f).size(), 3u);
  EXPECT_TRUE(atoms(truth()).empty());
}

TEST_F(FormulaTest, StructuralCompareTotalOrder) {
  const Formula items[] = {truth(),    falsity(),       end(),
                           a_,         b_,              make_not(a_),
                           make_and(a_, b_), make_next(a_),
                           make_until(a_, b_)};
  for (const Formula& x : items) {
    EXPECT_EQ(structural_compare(x, x), 0);
    for (const Formula& y : items) {
      EXPECT_EQ(structural_compare(x, y), -structural_compare(y, x));
    }
  }
}

TEST_F(FormulaTest, Printing) {
  EXPECT_EQ(to_string(a_, table_), "a");
  EXPECT_EQ(to_string(make_not(a_), table_), "!a");
  EXPECT_EQ(to_string(make_and(a_, b_), table_), "a & b");
  EXPECT_EQ(to_string(make_next(a_), table_), "X a");
  EXPECT_EQ(to_string(make_finally(a_), table_), "F a");
  EXPECT_EQ(to_string(make_globally(a_), table_), "G a");
  EXPECT_EQ(to_string(make_until(a_, b_), table_), "a U b");
  // Or binds looser than and; note the normalizing constructors sort
  // operands canonically (atoms before conjunctions).
  EXPECT_EQ(to_string(make_or(make_and(a_, b_), c_), table_), "c | a & b");
}

TEST_F(FormulaTest, SizeAccountsForSharing) {
  EXPECT_EQ(a_->size(), 1u);
  EXPECT_EQ(make_and(a_, b_)->size(), 3u);
}

}  // namespace
}  // namespace shelley::ltlf
