// The two routes to "the model" agree (the repository's model-inference
// cross-validation):
//
//   static:  annotations/returns --extract--> usage automaton   (the paper)
//   dynamic: black-box object + monitor --L*--> learned DFA     (LearnLib-
//                                                                style)
//
// For every specification, the learned model must be language-equal to the
// statically extracted one.
#include <gtest/gtest.h>

#include "fsm/ops.hpp"
#include "learn/lstar.hpp"
#include "paper_sources.hpp"
#include "shelley/automata.hpp"
#include "shelley/monitor.hpp"
#include "upy/parser.hpp"

namespace shelley::learn {
namespace {

class ModelInferenceTest : public ::testing::Test {
 protected:
  core::ClassSpec extract_(const char* source, std::size_t index = 0) {
    const upy::Module module = upy::parse_module(source);
    return core::extract_class_spec(module.classes.at(index), diagnostics_);
  }

  /// Learns the usage model through the monitor only (black-box access).
  LearnResult learn_through_monitor_(const core::ClassSpec& spec) {
    monitor_.emplace(spec, table_);
    std::vector<Symbol> alphabet;
    for (const core::Operation& op : spec.operations) {
      alphabet.push_back(table_.intern(op.name));
    }
    // Membership: replay the word through a fresh monitor run; the word is
    // in the usage language iff no violation occurred and the lifecycle is
    // complete at the end.
    BlackBoxTeacher teacher(
        [this](const Word& word) {
          monitor_->reset();
          for (Symbol s : word) {
            if (monitor_->feed(table_.name(s)) ==
                core::Verdict::kViolation) {
              return false;
            }
          }
          return monitor_->completed();
        },
        alphabet, /*test_depth=*/7);
    return learn_dfa(teacher, alphabet);
  }

  SymbolTable table_;
  DiagnosticEngine diagnostics_;
  std::optional<core::Monitor> monitor_;
};

TEST_F(ModelInferenceTest, ValveLearnedModelMatchesExtractedModel) {
  const core::ClassSpec valve = extract_(examples::kValveSource);
  const LearnResult learned = learn_through_monitor_(valve);
  const fsm::Dfa extracted = fsm::minimize(
      fsm::determinize(core::usage_nfa(valve, table_)));
  EXPECT_TRUE(fsm::equivalent(learned.dfa, extracted));
  EXPECT_EQ(fsm::minimize(learned.dfa).state_count(),
            extracted.state_count());
}

TEST_F(ModelInferenceTest, GoodSectorLearnedModelMatches) {
  const core::ClassSpec sector = extract_(examples::kGoodSectorSource);
  const LearnResult learned = learn_through_monitor_(sector);
  const fsm::Dfa extracted = fsm::minimize(
      fsm::determinize(core::usage_nfa(sector, table_)));
  EXPECT_TRUE(fsm::equivalent(learned.dfa, extracted));
}

TEST_F(ModelInferenceTest, LearnedModelDetectsTheSameViolations) {
  // The paper's BadSector bug, re-found through the *learned* Valve model:
  // the projection of the bad behavior is rejected by the learned DFA too.
  const core::ClassSpec valve = extract_(examples::kValveSource);
  const LearnResult learned = learn_through_monitor_(valve);
  const Word bad_projection{table_.intern("test"), table_.intern("open")};
  EXPECT_FALSE(learned.dfa.accepts(bad_projection));
  const Word good{table_.intern("test"), table_.intern("open"),
                  table_.intern("close")};
  EXPECT_TRUE(learned.dfa.accepts(good));
}

TEST_F(ModelInferenceTest, QueryComplexityIsReasonable) {
  const core::ClassSpec valve = extract_(examples::kValveSource);
  const LearnResult learned = learn_through_monitor_(valve);
  // 4 ops, 4-state minimal model: should be learnable in a handful of
  // rounds and well under ten thousand membership queries.
  EXPECT_LE(learned.rounds, 10u);
  EXPECT_LE(learned.membership_queries, 10000u);
}

}  // namespace
}  // namespace shelley::learn
