#include "learn/lstar.hpp"

#include <gtest/gtest.h>

#include "fsm/ops.hpp"
#include "fsm/thompson.hpp"
#include "rex/parser.hpp"

namespace shelley::learn {
namespace {

class LStarTest : public ::testing::Test {
 protected:
  fsm::Dfa target_(const char* regex_text) {
    return fsm::minimize(
        fsm::determinize(fsm::from_regex(rex::parse(regex_text, table_))));
  }
  std::vector<Symbol> sigma_(std::initializer_list<const char*> names) {
    std::vector<Symbol> out;
    for (const char* name : names) out.push_back(table_.intern(name));
    return out;
  }
  SymbolTable table_;
};

TEST_F(LStarTest, LearnsSingleSymbolLanguage) {
  DfaTeacher teacher(target_("a"));
  const LearnResult result = learn_dfa(teacher, sigma_({"a"}));
  EXPECT_TRUE(result.dfa.accepts({table_.intern("a")}));
  EXPECT_FALSE(result.dfa.accepts({}));
  EXPECT_FALSE(
      result.dfa.accepts({table_.intern("a"), table_.intern("a")}));
  // Minimal DFA for {a} over {a}: 3 states (start, accept, sink).
  EXPECT_EQ(fsm::minimize(result.dfa).state_count(), 3u);
}

TEST_F(LStarTest, LearnsEmptyAndUniversalLanguages) {
  DfaTeacher empty(target_("void"));
  const LearnResult none = learn_dfa(empty, sigma_({"a"}));
  EXPECT_TRUE(fsm::is_empty(none.dfa));

  DfaTeacher universal(target_("(a + b)*"));
  const LearnResult all = learn_dfa(universal, sigma_({"a", "b"}));
  EXPECT_EQ(fsm::minimize(all.dfa).state_count(), 1u);
}

class LStarCorpus : public ::testing::TestWithParam<const char*> {};

TEST_P(LStarCorpus, LearnedModelIsExactlyTheTarget) {
  SymbolTable table;
  const fsm::Dfa target = fsm::minimize(
      fsm::determinize(fsm::from_regex(rex::parse(GetParam(), table))));
  DfaTeacher teacher(target);
  const LearnResult result = learn_dfa(teacher, target.alphabet());
  EXPECT_TRUE(fsm::equivalent(result.dfa, target)) << GetParam();
  // L* learns the *minimal* machine: state counts match after trimming.
  EXPECT_EQ(fsm::minimize(result.dfa).state_count(),
            fsm::minimize(target).state_count())
      << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, LStarCorpus,
    ::testing::Values("a b", "(a b)* c", "a* b*", "(a + b)* a b",
                      "(a a a)*", "a (b + eps)", "((a + b) c)*",
                      "(a + b)* a (a + b)", "a b c + a c b"));

TEST_F(LStarTest, QueryCountsAreReported) {
  DfaTeacher teacher(target_("(a b)* c"));
  const LearnResult result = learn_dfa(teacher, sigma_({"a", "b", "c"}));
  EXPECT_GT(result.membership_queries, 0u);
  EXPECT_GE(result.equivalence_queries, 1u);
  EXPECT_GE(result.rounds, 1u);
  EXPECT_EQ(result.equivalence_queries, teacher.equivalence_queries());
}

TEST_F(LStarTest, BlackBoxTeacherConformanceTesting) {
  const fsm::Dfa target = target_("(a b)*");
  BlackBoxTeacher teacher(
      [&](const Word& word) { return target.accepts(word); },
      sigma_({"a", "b"}), /*test_depth=*/6);
  const LearnResult result = learn_dfa(teacher, sigma_({"a", "b"}));
  EXPECT_TRUE(fsm::equivalent(result.dfa, target));
}

TEST_F(LStarTest, EmptyAlphabetRejected) {
  DfaTeacher teacher(target_("a"));
  EXPECT_THROW(learn_dfa(teacher, {}), std::invalid_argument);
}

TEST_F(LStarTest, StateBoundEnforced) {
  DfaTeacher teacher(target_("(a + b)* a (a + b) (a + b) (a + b)"));
  EXPECT_THROW(learn_dfa(teacher, sigma_({"a", "b"}), /*max_states=*/2),
               std::runtime_error);
}

}  // namespace
}  // namespace shelley::learn
