// The Rivest-Schapire counterexample strategy: same learned language as
// classic L*, typically with fewer membership queries.
#include <gtest/gtest.h>

#include "fsm/ops.hpp"
#include "fsm/thompson.hpp"
#include "learn/lstar.hpp"
#include "rex/parser.hpp"

namespace shelley::learn {
namespace {

class RivestSchapireCorpus : public ::testing::TestWithParam<const char*> {};

TEST_P(RivestSchapireCorpus, LearnsTheExactTarget) {
  SymbolTable table;
  const fsm::Dfa target = fsm::minimize(
      fsm::determinize(fsm::from_regex(rex::parse(GetParam(), table))));
  DfaTeacher teacher(target);
  const LearnResult result =
      learn_dfa(teacher, target.alphabet(), 4096,
                CexStrategy::kRivestSchapire);
  EXPECT_TRUE(fsm::equivalent(result.dfa, target)) << GetParam();
  EXPECT_EQ(fsm::minimize(result.dfa).state_count(),
            fsm::minimize(target).state_count())
      << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, RivestSchapireCorpus,
    ::testing::Values("a b", "(a b)* c", "a* b*", "(a + b)* a b",
                      "(a a a)*", "((a + b) c)*", "(a + b)* a (a + b)",
                      "a b c + a c b", "(a + b)* a (a + b) (a + b)"));

TEST(RivestSchapire, BothStrategiesAgreeOnLanguage) {
  SymbolTable table;
  const fsm::Dfa target = fsm::minimize(fsm::determinize(
      fsm::from_regex(rex::parse("(a + b)* a (a + b) (a + b)", table))));

  DfaTeacher classic_teacher(target);
  const LearnResult classic = learn_dfa(classic_teacher, target.alphabet(),
                                        4096, CexStrategy::kAllPrefixes);

  DfaTeacher rs_teacher(target);
  const LearnResult rs = learn_dfa(rs_teacher, target.alphabet(), 4096,
                                   CexStrategy::kRivestSchapire);

  EXPECT_TRUE(fsm::equivalent(classic.dfa, rs.dfa));
}

TEST(RivestSchapire, TendsToUseFewerQueriesOnHardTargets) {
  // A language whose minimal DFA is exponential-ish in the suffix length:
  // "the k-th letter from the end is a".  Classic prefix-flooding blows up
  // the table; RS stays lean.  We only assert the direction, not a ratio.
  SymbolTable table;
  const fsm::Dfa target = fsm::minimize(fsm::determinize(fsm::from_regex(
      rex::parse("(a + b)* a (a + b) (a + b) (a + b)", table))));

  DfaTeacher classic_teacher(target);
  const LearnResult classic =
      learn_dfa(classic_teacher, target.alphabet(), 65536,
                CexStrategy::kAllPrefixes);
  DfaTeacher rs_teacher(target);
  const LearnResult rs = learn_dfa(rs_teacher, target.alphabet(), 65536,
                                   CexStrategy::kRivestSchapire);

  EXPECT_TRUE(fsm::equivalent(classic.dfa, rs.dfa));
  EXPECT_LE(rs.membership_queries, classic.membership_queries * 2)
      << "RS should not be dramatically worse";
}

}  // namespace
}  // namespace shelley::learn
