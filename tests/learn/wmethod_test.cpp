#include <gtest/gtest.h>

#include "fsm/ops.hpp"
#include "fsm/thompson.hpp"
#include "learn/lstar.hpp"
#include "rex/parser.hpp"

namespace shelley::learn {
namespace {

fsm::Dfa target_of(const char* text, SymbolTable& table) {
  return fsm::minimize(
      fsm::determinize(fsm::from_regex(rex::parse(text, table))));
}

TEST(CharacterizationSet, DistinguishesEveryStatePair) {
  SymbolTable table;
  const fsm::Dfa dfa = target_of("(a + b)* a b", table);
  const std::vector<Word> w_set = characterization_set(dfa);
  // Every pair of distinct states of a minimal DFA must be separated.
  const auto signature = [&](fsm::StateId s) {
    std::vector<bool> out;
    for (const Word& suffix : w_set) {
      fsm::StateId state = s;
      for (Symbol sym : suffix) {
        state = dfa.transition(state, *dfa.letter_index(sym));
      }
      out.push_back(dfa.is_accepting(state));
    }
    return out;
  };
  for (fsm::StateId a = 0; a < dfa.state_count(); ++a) {
    for (fsm::StateId b = a + 1; b < dfa.state_count(); ++b) {
      EXPECT_NE(signature(a), signature(b))
          << "states " << a << " and " << b << " not distinguished";
    }
  }
}

TEST(CharacterizationSet, SingleStateMachineNeedsOnlyEpsilon) {
  SymbolTable table;
  const fsm::Dfa dfa = target_of("(a + b)*", table);
  EXPECT_EQ(characterization_set(dfa).size(), 1u);
}

TEST(TransitionCover, CoversEveryReachableTransition) {
  SymbolTable table;
  const fsm::Dfa dfa = target_of("(a b)* c", table);
  const std::vector<Word> cover = transition_cover(dfa);
  // |cover| = reachable states * (1 + |Σ|).
  EXPECT_EQ(cover.size(),
            fsm::reachable_count(dfa) * (1 + dfa.alphabet().size()));
  // The empty access word (initial state) is included.
  EXPECT_NE(std::find(cover.begin(), cover.end(), Word{}), cover.end());
}

class WMethodCorpus : public ::testing::TestWithParam<const char*> {};

TEST_P(WMethodCorpus, LearnsExactTargetThroughWMethod) {
  SymbolTable table;
  const fsm::Dfa target = target_of(GetParam(), table);
  WMethodTeacher teacher(
      [&](const Word& word) { return target.accepts(word); },
      target.alphabet(), /*extra_states=*/2);
  const LearnResult result = learn_dfa(teacher, target.alphabet());
  EXPECT_TRUE(fsm::equivalent(result.dfa, target)) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, WMethodCorpus,
    ::testing::Values("a b", "(a b)* c", "a* b*", "(a + b)* a b",
                      "(a a a)*", "((a + b) c)*", "a b c + a c b"));

TEST(WMethod, CheaperThanExhaustiveAtEqualGuarantee) {
  SymbolTable table;
  const fsm::Dfa target = target_of("(a + b)* a (a + b)", table);

  std::size_t exhaustive_queries = 0;
  BlackBoxTeacher exhaustive(
      [&](const Word& word) {
        ++exhaustive_queries;
        return target.accepts(word);
      },
      target.alphabet(), /*test_depth=*/8);
  const LearnResult via_exhaustive = learn_dfa(exhaustive,
                                               target.alphabet());

  std::size_t wmethod_queries = 0;
  WMethodTeacher wmethod(
      [&](const Word& word) {
        ++wmethod_queries;
        return target.accepts(word);
      },
      target.alphabet(), /*extra_states=*/2);
  const LearnResult via_wmethod = learn_dfa(wmethod, target.alphabet());

  EXPECT_TRUE(fsm::equivalent(via_exhaustive.dfa, via_wmethod.dfa));
  EXPECT_LT(wmethod_queries, exhaustive_queries);
}

TEST(WMethod, ReportsTestCount) {
  SymbolTable table;
  const fsm::Dfa target = target_of("a b", table);
  WMethodTeacher teacher(
      [&](const Word& word) { return target.accepts(word); },
      target.alphabet(), 1);
  (void)learn_dfa(teacher, target.alphabet());
  EXPECT_GT(teacher.tests_executed(), 0u);
}

}  // namespace
}  // namespace shelley::learn
