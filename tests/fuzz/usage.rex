(test (open close + clean))* test
