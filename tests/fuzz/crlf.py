@sys
class Crlf:
    @op_initial_final
    def ping(self):
        return ["ping"]

    @op
    def pong(self):
        return ["ping"]
