@sys
class Broken:
    @op_initial
    def test(self:
        return ["open"

    @op
    def open(self)
        return "close"]

    @op_final
    def close(self):
        return ["test"]
