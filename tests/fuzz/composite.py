@sys
class Valve:
    @op_initial
    def test(self):
        if x:
            return ["open"]
        else:
            return ["clean"]

    @op
    def open(self):
        return ["close"]

    @op_final
    def close(self):
        return ["test"]

    @op_final
    def clean(self):
        return ["test"]

@claim("(!a.open) W b.open")
@sys(["a", "b"])
class Sector:
    def __init__(self):
        self.a = Valve()
        self.b = Valve()

    @op_initial_final
    def open_a(self):
        match self.a.test():
            case ["open"]:
                self.a.open()
                return ["open_b"]
            case ["clean"]:
                self.a.clean()
                return []

    @op_final
    def open_b(self):
        match self.b.test():
            case ["open"]:
                self.b.open()
                self.a.close()
                self.b.close()
                return []
            case ["clean"]:
                self.b.clean()
                self.a.close()
                return []
