#include "rex/regex.hpp"

#include <gtest/gtest.h>

namespace shelley::rex {
namespace {

class RegexTest : public ::testing::Test {
 protected:
  SymbolTable table_;
  Symbol a_ = table_.intern("a");
  Symbol b_ = table_.intern("b");
  Symbol c_ = table_.intern("c");
};

TEST_F(RegexTest, FactoriesProduceExpectedKinds) {
  EXPECT_EQ(empty()->kind(), Kind::kEmpty);
  EXPECT_EQ(epsilon()->kind(), Kind::kEpsilon);
  EXPECT_EQ(symbol(a_)->kind(), Kind::kSymbol);
  EXPECT_EQ(concat(symbol(a_), symbol(b_))->kind(), Kind::kConcat);
  EXPECT_EQ(alt(symbol(a_), symbol(b_))->kind(), Kind::kUnion);
  EXPECT_EQ(star(symbol(a_))->kind(), Kind::kStar);
}

TEST_F(RegexTest, RawConstructorsDoNotSimplify) {
  // The inference of Figure 4 needs exact structure: b·∅ must stay b·∅.
  const Regex r = concat(symbol(b_), empty());
  EXPECT_EQ(r->kind(), Kind::kConcat);
  EXPECT_EQ(r->right()->kind(), Kind::kEmpty);
}

TEST_F(RegexTest, StructuralEqualityIsExact) {
  EXPECT_TRUE(structurally_equal(symbol(a_), symbol(a_)));
  EXPECT_FALSE(structurally_equal(symbol(a_), symbol(b_)));
  EXPECT_TRUE(structurally_equal(concat(symbol(a_), symbol(b_)),
                                 concat(symbol(a_), symbol(b_))));
  // Associativity is NOT structural equality.
  EXPECT_FALSE(structurally_equal(
      concat(concat(symbol(a_), symbol(b_)), symbol(c_)),
      concat(symbol(a_), concat(symbol(b_), symbol(c_)))));
  EXPECT_FALSE(structurally_equal(alt(symbol(a_), symbol(b_)),
                                  alt(symbol(b_), symbol(a_))));
}

TEST_F(RegexTest, StructuralCompareIsATotalOrder) {
  const Regex items[] = {empty(), epsilon(), symbol(a_), symbol(b_),
                         concat(symbol(a_), symbol(b_)),
                         alt(symbol(a_), symbol(b_)), star(symbol(a_))};
  for (const Regex& x : items) {
    EXPECT_EQ(structural_compare(x, x), 0);
    for (const Regex& y : items) {
      EXPECT_EQ(structural_compare(x, y), -structural_compare(y, x));
    }
  }
}

TEST_F(RegexTest, SizeCountsEveryConstructor) {
  EXPECT_EQ(symbol(a_)->size(), 1u);
  EXPECT_EQ(concat(symbol(a_), symbol(b_))->size(), 3u);
  EXPECT_EQ(star(alt(symbol(a_), symbol(b_)))->size(), 4u);
}

TEST_F(RegexTest, AlphabetCollectsSymbols) {
  const Regex r = alt(concat(symbol(a_), symbol(b_)), star(symbol(a_)));
  const std::set<Symbol> sigma = alphabet(r);
  EXPECT_EQ(sigma.size(), 2u);
  EXPECT_TRUE(sigma.contains(a_));
  EXPECT_TRUE(sigma.contains(b_));
  EXPECT_TRUE(alphabet(epsilon()).empty());
  EXPECT_TRUE(alphabet(empty()).empty());
}

TEST_F(RegexTest, AltOfAndConcatOfFolds) {
  EXPECT_EQ(alt_of({})->kind(), Kind::kEmpty);
  EXPECT_EQ(concat_of({})->kind(), Kind::kEpsilon);
  EXPECT_TRUE(structurally_equal(alt_of({symbol(a_)}), symbol(a_)));
  EXPECT_TRUE(structurally_equal(
      alt_of({symbol(a_), symbol(b_), symbol(c_)}),
      alt(alt(symbol(a_), symbol(b_)), symbol(c_))));
  EXPECT_TRUE(structurally_equal(
      concat_of({symbol(a_), symbol(b_), symbol(c_)}),
      concat(concat(symbol(a_), symbol(b_)), symbol(c_))));
}

TEST_F(RegexTest, PaperStylePrinting) {
  EXPECT_EQ(to_string(empty(), table_), "∅");
  EXPECT_EQ(to_string(epsilon(), table_), "ε");
  EXPECT_EQ(to_string(symbol(a_), table_), "a");
  EXPECT_EQ(to_string(concat(symbol(a_), symbol(b_)), table_), "a · b");
  EXPECT_EQ(to_string(alt(symbol(a_), symbol(b_)), table_), "a + b");
  EXPECT_EQ(to_string(star(symbol(a_)), table_), "a*");
}

TEST_F(RegexTest, PrintingUsesMinimalParentheses) {
  // union < concat < star
  EXPECT_EQ(to_string(concat(alt(symbol(a_), symbol(b_)), symbol(c_)),
                      table_),
            "(a + b) · c");
  EXPECT_EQ(to_string(alt(concat(symbol(a_), symbol(b_)), symbol(c_)),
                      table_),
            "a · b + c");
  EXPECT_EQ(to_string(star(alt(symbol(a_), symbol(b_))), table_), "(a + b)*");
  EXPECT_EQ(to_string(star(concat(symbol(a_), symbol(b_))), table_),
            "(a · b)*");
  // Example 3's shape renders faithfully.
  const Regex example3 =
      star(concat(symbol(a_), alt(concat(symbol(b_), empty()), symbol(c_))));
  EXPECT_EQ(to_string(example3, table_), "(a · (b · ∅ + c))*");
}

TEST_F(RegexTest, AsciiPrinting) {
  EXPECT_EQ(to_ascii(empty(), table_), "void");
  EXPECT_EQ(to_ascii(epsilon(), table_), "eps");
  EXPECT_EQ(to_ascii(concat(symbol(a_), symbol(b_)), table_), "a b");
}

}  // namespace
}  // namespace shelley::rex
