#include "rex/parser.hpp"

#include <gtest/gtest.h>

#include <string>

#include "rex/derivative.hpp"
#include "rex/equivalence.hpp"
#include "support/guard.hpp"

namespace shelley::rex {
namespace {

class RexParserTest : public ::testing::Test {
 protected:
  Regex parse_(const char* text) { return parse(text, table_); }
  SymbolTable table_;
};

TEST_F(RexParserTest, Atoms) {
  EXPECT_EQ(parse_("eps")->kind(), Kind::kEpsilon);
  EXPECT_EQ(parse_("void")->kind(), Kind::kEmpty);
  EXPECT_EQ(parse_("ε")->kind(), Kind::kEpsilon);
  EXPECT_EQ(parse_("∅")->kind(), Kind::kEmpty);
  const Regex sym = parse_("foo");
  ASSERT_EQ(sym->kind(), Kind::kSymbol);
  EXPECT_EQ(table_.name(sym->symbol()), "foo");
}

TEST_F(RexParserTest, DottedNamesAreSingleSymbols) {
  const Regex r = parse_("a.open");
  ASSERT_EQ(r->kind(), Kind::kSymbol);
  EXPECT_EQ(table_.name(r->symbol()), "a.open");
}

TEST_F(RexParserTest, JuxtapositionAndExplicitDotAreConcat) {
  const Regex juxt = parse_("a b c");
  const Regex dotted = parse_("a · b · c");
  EXPECT_TRUE(structurally_equal(juxt, dotted));
  ASSERT_EQ(juxt->kind(), Kind::kConcat);
}

TEST_F(RexParserTest, PrecedenceStarOverConcatOverUnion) {
  // a b* + c  parses as  (a · (b*)) + c
  const Regex r = parse_("a b* + c");
  ASSERT_EQ(r->kind(), Kind::kUnion);
  ASSERT_EQ(r->left()->kind(), Kind::kConcat);
  EXPECT_EQ(r->left()->right()->kind(), Kind::kStar);
  EXPECT_EQ(r->right()->kind(), Kind::kSymbol);
}

TEST_F(RexParserTest, ParenthesesOverride) {
  const Regex r = parse_("(a + b)*");
  ASSERT_EQ(r->kind(), Kind::kStar);
  EXPECT_EQ(r->left()->kind(), Kind::kUnion);
}

TEST_F(RexParserTest, DoubleStar) {
  const Regex r = parse_("a**");
  ASSERT_EQ(r->kind(), Kind::kStar);
  EXPECT_EQ(r->left()->kind(), Kind::kStar);
}

TEST_F(RexParserTest, RoundTripThroughPrinter) {
  const char* cases[] = {"a · b + c", "(a + b) · c", "a*", "(a · b)*",
                         "a.open · a.close + b.test"};
  for (const char* text : cases) {
    const Regex first = parse(text, table_);
    const Regex second = parse(to_string(first, table_), table_);
    EXPECT_TRUE(structurally_equal(first, second)) << text;
  }
}

TEST_F(RexParserTest, AsciiRoundTripPreservesLanguage) {
  const char* cases[] = {"a b + c", "(a + b) c", "(a (b void + c))*"};
  for (const char* text : cases) {
    const Regex first = parse(text, table_);
    const Regex second = parse(to_ascii(first, table_), table_);
    EXPECT_TRUE(equivalent(first, second)) << text;
  }
}

TEST_F(RexParserTest, Errors) {
  EXPECT_THROW(parse_(""), ParseError);
  EXPECT_THROW(parse_("a +"), ParseError);
  EXPECT_THROW(parse_("(a"), ParseError);
  EXPECT_THROW(parse_("a)"), ParseError);
  EXPECT_THROW(parse_("*a"), ParseError);
  EXPECT_THROW(parse_("a ? b"), ParseError);
}

TEST_F(RexParserTest, WhitespaceIsInsignificantAroundOperators) {
  EXPECT_TRUE(structurally_equal(parse_("a+b"), parse_("a + b")));
  EXPECT_TRUE(structurally_equal(parse_("a*"), parse_(" a * ")));
}

TEST_F(RexParserTest, ErrorsCarryTheColumnWithinTheExpression) {
  // Regression: every error used to claim line 1, column of the lexer's
  // in-text position, even for expressions embedded in a larger file.
  try {
    (void)parse_("a + ?");
    FAIL() << "expected ParseError";
  } catch (const ParseError& error) {
    EXPECT_EQ(error.loc(), (SourceLoc{1, 5}));
  }
}

TEST_F(RexParserTest, ErrorsAreOffsetByTheAnnotationOrigin) {
  // An expression embedded at line 42, column 10 of a .py file must report
  // errors in that file's coordinates.
  try {
    (void)parse("a + ?", table_, {42, 10});
    FAIL() << "expected ParseError";
  } catch (const ParseError& error) {
    EXPECT_EQ(error.loc(), (SourceLoc{42, 14}));
  }
  try {
    (void)parse("(a", table_, {7, 3});
    FAIL() << "expected ParseError";
  } catch (const ParseError& error) {
    EXPECT_EQ(error.loc().line, 7u);
    EXPECT_EQ(error.loc().column, 3u + 2u);  // at the end-of-input token
  }
}

TEST_F(RexParserTest, DeepNestingFailsWithDiagnosticNotCrash) {
  // 100k nested parentheses: the recursion guard must turn this into a
  // structured error instead of a stack overflow.
  std::string text(100000, '(');
  text += "a";
  text += std::string(100000, ')');
  try {
    (void)parse(text, table_);
    FAIL() << "expected ResourceError";
  } catch (const support::guard::ResourceError& error) {
    EXPECT_EQ(error.resource(), support::guard::Resource::kRecursionDepth);
  }
}

TEST_F(RexParserTest, NestingBelowTheCapStillParses) {
  std::string text(100, '(');
  text += "a";
  text += std::string(100, ')');
  EXPECT_NO_THROW((void)parse(text, table_));
}

}  // namespace
}  // namespace shelley::rex
