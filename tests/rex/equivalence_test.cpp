#include "rex/equivalence.hpp"

#include <gtest/gtest.h>

#include <random>

#include "rex/derivative.hpp"
#include "rex/parser.hpp"

namespace shelley::rex {
namespace {

class EquivalenceTest : public ::testing::Test {
 protected:
  Regex parse_(const char* text) { return parse(text, table_); }
  SymbolTable table_;
};

TEST_F(EquivalenceTest, AlgebraicLaws) {
  EXPECT_TRUE(equivalent(parse_("a + b"), parse_("b + a")));
  EXPECT_TRUE(equivalent(parse_("(a + b) + c"), parse_("a + (b + c)")));
  EXPECT_TRUE(equivalent(parse_("a + a"), parse_("a")));
  EXPECT_TRUE(equivalent(parse_("(a b) c"), parse_("a (b c)")));
  EXPECT_TRUE(equivalent(parse_("eps a"), parse_("a")));
  EXPECT_TRUE(equivalent(parse_("void + a"), parse_("a")));
  EXPECT_TRUE(equivalent(parse_("void a"), parse_("void")));
  EXPECT_TRUE(equivalent(parse_("(a*)*"), parse_("a*")));
  EXPECT_TRUE(equivalent(parse_("a* a*"), parse_("a*")));
  EXPECT_TRUE(equivalent(parse_("(a + b)*"), parse_("(a* b*)*")));
  EXPECT_TRUE(equivalent(parse_("eps + a a*"), parse_("a*")));
}

TEST_F(EquivalenceTest, Inequivalences) {
  EXPECT_FALSE(equivalent(parse_("a b"), parse_("b a")));
  EXPECT_FALSE(equivalent(parse_("a*"), parse_("a a*")));
  EXPECT_FALSE(equivalent(parse_("(a b)*"), parse_("a* b*")));
  EXPECT_FALSE(equivalent(parse_("a"), parse_("a + b")));
  EXPECT_FALSE(equivalent(parse_("eps"), parse_("void")));
}

TEST_F(EquivalenceTest, Inclusion) {
  EXPECT_TRUE(included(parse_("a"), parse_("a + b")));
  EXPECT_TRUE(included(parse_("a a"), parse_("a*")));
  EXPECT_TRUE(included(parse_("void"), parse_("a")));
  EXPECT_FALSE(included(parse_("a + b"), parse_("a")));
  EXPECT_FALSE(included(parse_("a*"), parse_("a a*")));
}

TEST_F(EquivalenceTest, DistinguishingWordIsShortestWitness) {
  const auto w1 = distinguishing_word(parse_("a*"), parse_("a a*"));
  ASSERT_TRUE(w1.has_value());
  EXPECT_TRUE(w1->empty());  // ε is in a* but not in a·a*

  const auto w2 = distinguishing_word(parse_("a b c"), parse_("a b d"));
  ASSERT_TRUE(w2.has_value());
  EXPECT_EQ(w2->size(), 3u);

  EXPECT_FALSE(distinguishing_word(parse_("a + b"), parse_("b + a")));
}

TEST_F(EquivalenceTest, DistinguishingWordIsInExactlyOneLanguage) {
  const Regex lhs = parse_("(a b)* (c + eps)");
  const Regex rhs = parse_("(a b c)*");
  const auto witness = distinguishing_word(lhs, rhs);
  ASSERT_TRUE(witness.has_value());
  EXPECT_NE(matches(lhs, *witness), matches(rhs, *witness));
}

// Property: equivalence decided by derivatives agrees with bounded
// enumeration on randomly generated regexes.
class RandomRegexEquivalence : public ::testing::TestWithParam<int> {};

Regex random_regex(std::mt19937_64& rng, SymbolTable& table, int depth) {
  std::uniform_int_distribution<int> pick(0, depth == 0 ? 2 : 5);
  switch (pick(rng)) {
    case 0:
      return epsilon();
    case 1:
      return symbol(table.intern(std::string(1, static_cast<char>(
                                                    'a' + rng() % 3))));
    case 2:
      return rng() % 8 == 0 ? empty()
                            : symbol(table.intern(std::string(
                                  1, static_cast<char>('a' + rng() % 3))));
    case 3:
      return concat(random_regex(rng, table, depth - 1),
                    random_regex(rng, table, depth - 1));
    case 4:
      return alt(random_regex(rng, table, depth - 1),
                 random_regex(rng, table, depth - 1));
    default:
      return star(random_regex(rng, table, depth - 1));
  }
}

TEST_P(RandomRegexEquivalence, AgreesWithBoundedEnumeration) {
  SymbolTable table;
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()));
  const Regex lhs = random_regex(rng, table, 3);
  const Regex rhs = random_regex(rng, table, 3);

  const bool claimed_equal = equivalent(lhs, rhs);
  const auto lhs_words = enumerate_language(lhs, 5);
  const auto rhs_words = enumerate_language(rhs, 5);
  if (claimed_equal) {
    EXPECT_EQ(lhs_words, rhs_words);
  } else {
    const auto witness = distinguishing_word(lhs, rhs);
    ASSERT_TRUE(witness.has_value());
    EXPECT_NE(matches(lhs, *witness), matches(rhs, *witness));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomRegexEquivalence,
                         ::testing::Range(0, 60));

}  // namespace
}  // namespace shelley::rex
