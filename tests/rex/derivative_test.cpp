#include "rex/derivative.hpp"

#include <gtest/gtest.h>

#include "rex/parser.hpp"

namespace shelley::rex {
namespace {

class DerivativeTest : public ::testing::Test {
 protected:
  Regex parse_(const char* text) { return parse(text, table_); }
  Word word_(std::initializer_list<const char*> names) {
    Word out;
    for (const char* name : names) out.push_back(table_.intern(name));
    return out;
  }

  SymbolTable table_;
  Symbol a_ = table_.intern("a");
  Symbol b_ = table_.intern("b");
};

TEST_F(DerivativeTest, Nullable) {
  EXPECT_FALSE(nullable(empty()));
  EXPECT_TRUE(nullable(epsilon()));
  EXPECT_FALSE(nullable(symbol(a_)));
  EXPECT_TRUE(nullable(star(symbol(a_))));
  EXPECT_TRUE(nullable(concat(epsilon(), star(symbol(a_)))));
  EXPECT_FALSE(nullable(concat(symbol(a_), star(symbol(a_)))));
  EXPECT_TRUE(nullable(alt(symbol(a_), epsilon())));
  EXPECT_FALSE(nullable(alt(symbol(a_), symbol(b_))));
}

TEST_F(DerivativeTest, IsEmptyLanguage) {
  EXPECT_TRUE(is_empty_language(empty()));
  EXPECT_FALSE(is_empty_language(epsilon()));
  EXPECT_FALSE(is_empty_language(symbol(a_)));
  EXPECT_TRUE(is_empty_language(concat(symbol(a_), empty())));
  EXPECT_TRUE(is_empty_language(concat(empty(), symbol(a_))));
  EXPECT_FALSE(is_empty_language(alt(empty(), symbol(a_))));
  EXPECT_TRUE(is_empty_language(alt(empty(), empty())));
  // L(∅*) = {ε} is not empty.
  EXPECT_FALSE(is_empty_language(star(empty())));
}

TEST_F(DerivativeTest, SmartConstructorIdentities) {
  // ∅ annihilates concat, ε is its unit.
  EXPECT_EQ(smart_concat(empty(), symbol(a_))->kind(), Kind::kEmpty);
  EXPECT_EQ(smart_concat(symbol(a_), empty())->kind(), Kind::kEmpty);
  EXPECT_TRUE(structurally_equal(smart_concat(epsilon(), symbol(a_)),
                                 symbol(a_)));
  EXPECT_TRUE(structurally_equal(smart_concat(symbol(a_), epsilon()),
                                 symbol(a_)));
  // ∅ is union's unit; idempotence.
  EXPECT_TRUE(structurally_equal(smart_alt(empty(), symbol(a_)), symbol(a_)));
  EXPECT_TRUE(
      structurally_equal(smart_alt(symbol(a_), symbol(a_)), symbol(a_)));
  // Star collapses.
  EXPECT_EQ(smart_star(empty())->kind(), Kind::kEpsilon);
  EXPECT_EQ(smart_star(epsilon())->kind(), Kind::kEpsilon);
  EXPECT_TRUE(structurally_equal(smart_star(star(symbol(a_))),
                                 star(symbol(a_))));
}

TEST_F(DerivativeTest, SmartAltCanonicalizesACI) {
  const Regex x = smart_alt(symbol(a_), smart_alt(symbol(b_), symbol(a_)));
  const Regex y = smart_alt(smart_alt(symbol(b_), symbol(a_)), symbol(b_));
  EXPECT_TRUE(structurally_equal(x, y));
}

TEST_F(DerivativeTest, SimplifyPreservesLanguageOnExamples) {
  const Regex raw = parse_("(a (b void + c))*");
  const Regex simple = simplify(raw);
  for (std::size_t len = 0; len <= 6; ++len) {
    EXPECT_EQ(enumerate_language(raw, len), enumerate_language(simple, len))
        << "length " << len;
  }
}

TEST_F(DerivativeTest, DerivativeBasics) {
  EXPECT_EQ(derivative(empty(), a_)->kind(), Kind::kEmpty);
  EXPECT_EQ(derivative(epsilon(), a_)->kind(), Kind::kEmpty);
  EXPECT_EQ(derivative(symbol(a_), a_)->kind(), Kind::kEpsilon);
  EXPECT_EQ(derivative(symbol(a_), b_)->kind(), Kind::kEmpty);
}

TEST_F(DerivativeTest, DerivativeOfConcatHandlesNullableHead) {
  // d_a(a* · b) = a*·b + d_a(b) = a*·b  (plus ∅)
  const Regex r = concat(star(symbol(a_)), symbol(b_));
  EXPECT_TRUE(matches(r, word_({"a", "a", "b"})));
  EXPECT_TRUE(matches(r, word_({"b"})));
  EXPECT_FALSE(matches(r, word_({"a"})));
  const Regex db = derivative(simplify(r), b_);
  EXPECT_TRUE(nullable(db));
}

TEST_F(DerivativeTest, MatchesAgainstHandWrittenCases) {
  const Regex r = parse_("(a b)* + c");
  EXPECT_TRUE(matches(r, {}));
  EXPECT_TRUE(matches(r, word_({"a", "b"})));
  EXPECT_TRUE(matches(r, word_({"a", "b", "a", "b"})));
  EXPECT_TRUE(matches(r, word_({"c"})));
  EXPECT_FALSE(matches(r, word_({"a"})));
  EXPECT_FALSE(matches(r, word_({"b", "a"})));
  EXPECT_FALSE(matches(r, word_({"c", "c"})));
}

TEST_F(DerivativeTest, MatchesEmptyRegexRejectsEverything) {
  EXPECT_FALSE(matches(empty(), {}));
  EXPECT_FALSE(matches(empty(), word_({"a"})));
}

TEST_F(DerivativeTest, EnumerateLanguageOfFiniteRegex) {
  const Regex r = parse_("a (b + c)");
  const auto words = enumerate_language(r, 5);
  ASSERT_EQ(words.size(), 2u);
  EXPECT_EQ(words[0], word_({"a", "b"}));
  EXPECT_EQ(words[1], word_({"a", "c"}));
}

TEST_F(DerivativeTest, EnumerateLanguageRespectsLengthBound) {
  const Regex r = parse_("a*");
  EXPECT_EQ(enumerate_language(r, 0).size(), 1u);  // ε
  EXPECT_EQ(enumerate_language(r, 3).size(), 4u);  // ε, a, aa, aaa
}

TEST_F(DerivativeTest, EnumerateLanguageIsShortlexSorted) {
  const Regex r = parse_("(a + b)*");
  const auto words = enumerate_language(r, 2);
  ASSERT_EQ(words.size(), 7u);  // ε, a, b, aa, ab, ba, bb
  for (std::size_t i = 1; i < words.size(); ++i) {
    EXPECT_LE(words[i - 1].size(), words[i].size());
  }
}

TEST_F(DerivativeTest, EnumerationAgreesWithMatches) {
  const char* cases[] = {"(a b)* c",     "a* b*",        "(a + b) (a + b)",
                         "(a (b + c))*", "a b c + a c b", "(a* + b)*"};
  for (const char* text : cases) {
    const Regex r = parse(text, table_);
    for (const Word& w : enumerate_language(r, 5)) {
      EXPECT_TRUE(matches(r, w)) << text;
    }
  }
}

}  // namespace
}  // namespace shelley::rex
