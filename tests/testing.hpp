// Shared helpers for the test suite.
#pragma once

#include <initializer_list>
#include <string>
#include <vector>

#include "support/symbol.hpp"

namespace shelley::testing {

/// Interns each name and builds a word.
inline Word word(SymbolTable& table,
                 std::initializer_list<const char*> names) {
  Word out;
  for (const char* name : names) out.push_back(table.intern(name));
  return out;
}

/// Renders a word for readable assertion failures.
inline std::string str(const Word& w, const SymbolTable& table) {
  return to_string(w, table);
}

}  // namespace shelley::testing
