// Workspace: source registry, content-memoized parsing, load summaries,
// and the key-diff protocol of update_source.
#include "engine/workspace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "paper_sources.hpp"

namespace shelley::engine {
namespace {

TEST(WorkspaceTest, LoadSourceRegistersClasses) {
  Workspace workspace;
  const core::FileSummary& summary =
      workspace.load_source("valve.py", examples::kValveSource);
  EXPECT_TRUE(summary.loaded);
  EXPECT_EQ(summary.parse_errors, 0u);
  EXPECT_NE(workspace.verifier().find_class("Valve"), nullptr);
  EXPECT_FALSE(workspace.load_failed());
  EXPECT_EQ(workspace.parse_stats().misses, 1u);
}

TEST(WorkspaceTest, MissingFileRecordsOpenFailure) {
  Workspace workspace;
  const core::FileSummary& summary =
      workspace.load_file("/nonexistent/shelley.py");
  EXPECT_FALSE(summary.loaded);
  EXPECT_EQ(summary.failure, "cannot open file");
  EXPECT_TRUE(workspace.load_failed());
}

TEST(WorkspaceTest, ParseErrorsBecomeDiagnosticsAndSummaryCounts) {
  Workspace workspace;
  const core::FileSummary& summary = workspace.load_source(
      "broken.py", "@sys\nclass Broken:\n    @op_initial\n    def f(self:\n");
  EXPECT_TRUE(summary.loaded);  // recovery keeps the file loaded
  EXPECT_GT(summary.parse_errors, 0u);
  EXPECT_TRUE(workspace.load_failed());
  EXPECT_EQ(workspace.file_diag_ranges().size(), 1u);
  const auto [begin, end] = workspace.file_diag_ranges()[0];
  EXPECT_EQ(begin, 0u);
  EXPECT_EQ(end, workspace.load_diag_end());
  EXPECT_GT(end, begin);
}

TEST(WorkspaceTest, DuplicateClassAcrossFilesIsDiagnosedOnReplayToo) {
  Workspace workspace;
  workspace.load_source("a.py", examples::kValveSource);
  // Identical content: the parse memo hits, but add_class still sees the
  // duplicate (spec extraction re-runs against the live registry).
  const core::FileSummary& summary =
      workspace.load_source("b.py", examples::kValveSource);
  EXPECT_EQ(workspace.parse_stats().hits, 1u);
  EXPECT_GT(summary.parse_errors, 0u);
  EXPECT_TRUE(workspace.verifier().diagnostics().has_errors());
}

TEST(WorkspaceTest, UpdateReparsesOnlyTheEditedFile) {
  Workspace workspace;
  workspace.load_source("valve.py", examples::kValveSource);
  workspace.load_source("sector.py", examples::kSectorSource);
  ASSERT_EQ(workspace.parse_stats().misses, 2u);

  std::string edited = examples::kValveSource;
  const auto pos = edited.find("return [\"test\"]");
  ASSERT_NE(pos, std::string::npos);
  edited.replace(pos, 15, "return [\"test\", \"clean\"]");
  const UpdateResult update = workspace.update_source("valve.py", edited);

  // The rebuild re-applied both files, but only the edited content parsed
  // for real; sector.py replayed from the memo.
  EXPECT_EQ(workspace.parse_stats().misses, 3u);
  EXPECT_EQ(workspace.parse_stats().hits, 1u);
  // Valve changed, and Sector's key folds Valve's in, so both are in the
  // closure.
  std::vector<std::string> changed = update.changed;
  std::sort(changed.begin(), changed.end());
  EXPECT_EQ(changed, (std::vector<std::string>{"Sector", "Valve"}));
  EXPECT_EQ(update.stale_keys.size(), 2u);
}

TEST(WorkspaceTest, CommentOnlyEditChangesNoKeys) {
  Workspace workspace;
  workspace.load_source("valve.py", examples::kValveSource);
  std::string edited = examples::kValveSource;
  const auto pos = edited.find("def test(self):");
  ASSERT_NE(pos, std::string::npos);
  edited.insert(pos + 15, "  # comment");
  const UpdateResult update = workspace.update_source("valve.py", edited);
  // Comments never reach the canonical AST, so the content-addressed keys
  // are unchanged and nothing invalidates.
  EXPECT_TRUE(update.changed.empty());
  EXPECT_TRUE(update.stale_keys.empty());
}

TEST(WorkspaceTest, UpdateOutsideClosureLeavesOtherKeysAlone) {
  Workspace workspace;
  workspace.load_source("valve.py", examples::kValveSource);
  workspace.load_source("sector.py", examples::kSectorSource);
  // Led is unrelated to the valve hierarchy: the canary against
  // over-invalidation.
  workspace.load_source("led.py",
                        "@sys\nclass Led:\n    @op_initial_final\n"
                        "    def blink(self):\n        return [\"blink\"]\n");
  std::string edited_led =
      "@sys\nclass Led:\n    @op_initial_final\n"
      "    def blink(self):\n        return []\n";
  const UpdateResult update = workspace.update_source("led.py", edited_led);
  EXPECT_EQ(update.changed, std::vector<std::string>{"Led"});
  EXPECT_EQ(update.stale_keys.size(), 1u);
}

TEST(WorkspaceTest, RemovedClassReportsItsStaleKey) {
  Workspace workspace;
  workspace.load_source("valve.py", examples::kValveSource);
  const UpdateResult update = workspace.update_source("valve.py", "");
  EXPECT_EQ(update.changed, std::vector<std::string>{"Valve"});
  EXPECT_EQ(update.stale_keys.size(), 1u);
  EXPECT_EQ(workspace.verifier().find_class("Valve"), nullptr);
}

TEST(WorkspaceTest, DependentsClosureFollowsReverseSubsystemEdges) {
  Workspace workspace;
  workspace.load_source("valve.py", examples::kValveSource);
  workspace.load_source("sector.py", examples::kSectorSource);
  workspace.load_source("good.py", examples::kGoodSectorSource);
  std::vector<std::string> closure = workspace.dependents_closure("Valve");
  std::sort(closure.begin(), closure.end());
  EXPECT_EQ(closure,
            (std::vector<std::string>{"GoodSector", "Sector", "Valve"}));
  EXPECT_EQ(workspace.dependents_closure("GoodSector"),
            std::vector<std::string>{"GoodSector"});
}

TEST(WorkspaceTest, DependencyCycleClosureCoversTheWholeScc) {
  // A <-> B subsystem cycle plus an unrelated C: the closure of either
  // cycle member is the whole SCC, and C stays out of it.
  Workspace workspace;
  workspace.load_source("a.py",
                        "@sys([\"b\"])\nclass A:\n"
                        "    def __init__(self):\n        self.b = B()\n"
                        "    @op_initial_final\n    def go(self):\n"
                        "        return []\n");
  workspace.load_source("b.py",
                        "@sys([\"a\"])\nclass B:\n"
                        "    def __init__(self):\n        self.a = A()\n"
                        "    @op_initial_final\n    def go(self):\n"
                        "        return []\n");
  workspace.load_source("c.py",
                        "@sys\nclass C:\n    @op_initial_final\n"
                        "    def go(self):\n        return []\n");
  std::vector<std::string> closure = workspace.dependents_closure("A");
  std::sort(closure.begin(), closure.end());
  EXPECT_EQ(closure, (std::vector<std::string>{"A", "B"}));

  // Editing one member of the SCC changes both keys (cycle markers fold
  // the partner's identity in), and C's key stays put.
  const auto keys_before = workspace.class_keys();
  std::string edited_a =
      "@sys([\"b\"])\nclass A:\n"
      "    def __init__(self):\n        self.b = B()\n"
      "    @op_initial_final\n    def go(self):\n"
      "        return [\"go\"]\n";
  const UpdateResult update = workspace.update_source("a.py", edited_a);
  std::vector<std::string> changed = update.changed;
  std::sort(changed.begin(), changed.end());
  EXPECT_EQ(changed, (std::vector<std::string>{"A", "B"}));
  EXPECT_EQ(workspace.class_keys().at("C"), keys_before.at("C"));
}

TEST(WorkspaceTest, MissingSubsystemStillYieldsAKeyAndInvalidates) {
  // Sector references Valve, which is absent: the key folds a missing
  // marker, so *adding* Valve later changes Sector's key too.
  Workspace workspace;
  workspace.load_source("sector.py", examples::kSectorSource);
  const auto before = workspace.class_keys();
  ASSERT_EQ(before.count("Sector"), 1u);
  const UpdateResult update =
      workspace.update_source("valve.py", examples::kValveSource);
  std::vector<std::string> changed = update.changed;
  std::sort(changed.begin(), changed.end());
  EXPECT_EQ(changed, (std::vector<std::string>{"Sector", "Valve"}));
}

TEST(WorkspaceTest, RewindDropsVerificationDiagnosticsOnly) {
  Workspace workspace;
  workspace.load_source(
      "broken.py", "@sys\nclass Broken:\n    @op_initial\n    def f(self:\n");
  const std::size_t load_diags =
      workspace.verifier().diagnostics().diagnostics().size();
  workspace.verifier().diagnostics().error({}, "verification-time error");
  workspace.rewind_to_loaded();
  EXPECT_EQ(workspace.verifier().diagnostics().diagnostics().size(),
            load_diags);
}

}  // namespace
}  // namespace shelley::engine
