// shelleyd's request loop, driven in-process: a daemon session over the
// paper sources must answer verify/report with the exact bytes a cold
// shelleyc run produces, stay byte-identical when warm, and re-verify
// only the dependency closure after an update.
#include "engine/daemon.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "engine/driver.hpp"
#include "paper_sources.hpp"
#include "shelley/fingerprint.hpp"
#include "support/json.hpp"

namespace shelley::engine {
namespace {

constexpr const char* kLedSource =
    "@sys\nclass Led:\n    @op_initial_final\n"
    "    def blink(self):\n        return [\"blink\"]\n";

/// The outcome of one in-process CLI or daemon run.
struct RunResult {
  int status = 0;
  std::string out;
  std::string err;
};

class DaemonTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::path(::testing::TempDir()) /
           ("daemon_" + std::string(::testing::UnitTest::GetInstance()
                                        ->current_test_info()
                                        ->name()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    write_file("valve.py", examples::kValveSource);
    write_file("bad.py", examples::kBadSectorSource);
    write_file("sector.py", examples::kSectorSource);
    write_file("good.py", examples::kGoodSectorSource);
    write_file("led.py", kLedSource);
  }

  void write_file(const std::string& name, const std::string& text) {
    std::ofstream stream(dir_ / name, std::ios::binary);
    stream << text;
  }

  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  [[nodiscard]] std::vector<std::string> paper_paths() const {
    return {path("valve.py"), path("bad.py"), path("sector.py"),
            path("good.py"), path("led.py")};
  }

  /// A cold shelleyc run over `files` (serial, text mode unless `json`).
  RunResult cold_cli(const std::vector<std::string>& files,
                     bool json = false) {
    CliOptions options;
    options.files = files;
    options.jobs = 1;
    options.json = json;
    std::istringstream in;
    std::ostringstream out;
    std::ostringstream err;
    RunResult result;
    result.status = run_tool(options, in, out, err);
    result.out = out.str();
    result.err = err.str();
    return result;
  }

  /// Feeds `requests` (one JSON document per element) to an in-process
  /// daemon and returns the parsed response lines.
  std::vector<JsonValue> daemon_session(
      const std::vector<std::string>& requests) {
    CliOptions session;
    session.jobs = 1;
    std::string input;
    for (const std::string& request : requests) input += request + "\n";
    std::istringstream in(input);
    std::ostringstream out;
    std::ostringstream err;
    EXPECT_EQ(run_daemon(session, in, out, err), 0);
    EXPECT_EQ(err.str(), "");
    std::vector<JsonValue> responses;
    std::istringstream lines(out.str());
    std::string line;
    while (std::getline(lines, line)) {
      if (!line.empty()) responses.push_back(parse_json(line));
    }
    return responses;
  }

  [[nodiscard]] std::string load_request() const {
    JsonWriter writer;
    writer.begin_object();
    writer.key("cmd").value("load");
    writer.key("files").begin_array();
    for (const std::string& file : paper_paths()) writer.value(file);
    writer.end_array();
    writer.end_object();
    return writer.str();
  }

  [[nodiscard]] static std::string update_request(const std::string& file,
                                                  const std::string& text) {
    JsonWriter writer;
    writer.begin_object();
    writer.key("cmd").value("update");
    writer.key("file").value(file);
    writer.key("text").value(text);
    writer.end_object();
    return writer.str();
  }

  [[nodiscard]] static std::string edited_valve() {
    std::string edited = examples::kValveSource;
    const auto pos = edited.find("return [\"test\"]");
    EXPECT_NE(pos, std::string::npos);
    edited.replace(pos, 15, "return [\"test\", \"clean\"]");
    return edited;
  }

  std::filesystem::path dir_;
};

TEST_F(DaemonTest, VersionReportsTheToolchainVersion) {
  const auto responses = daemon_session({R"({"cmd":"version"})"});
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_TRUE(responses[0].at("ok").as_bool());
  EXPECT_EQ(responses[0].at("version").as_string(), core::kToolchainVersion);
}

TEST_F(DaemonTest, VerifyMatchesColdCliByteForByte) {
  const RunResult cold = cold_cli(paper_paths());
  const auto responses =
      daemon_session({load_request(), R"({"cmd":"verify","jobs":1})"});
  ASSERT_EQ(responses.size(), 2u);
  const JsonValue& load = responses[0];
  const JsonValue& verify = responses[1];
  ASSERT_TRUE(load.at("ok").as_bool());
  ASSERT_TRUE(verify.at("ok").as_bool());
  EXPECT_EQ(load.at("files").as_array().size(), 5u);
  // The loader's stderr and the request's stderr concatenate to exactly
  // the cold run's stderr; stdout and exit status match outright.
  EXPECT_EQ(load.at("errors").as_string() + verify.at("errors").as_string(),
            cold.err);
  EXPECT_EQ(verify.at("output").as_string(), cold.out);
  EXPECT_EQ(static_cast<int>(verify.at("status").as_number()), cold.status);
}

TEST_F(DaemonTest, JsonReportMatchesColdCli) {
  const RunResult cold = cold_cli(paper_paths(), /*json=*/true);
  const auto responses =
      daemon_session({load_request(), R"({"cmd":"report","jobs":1})"});
  ASSERT_EQ(responses.size(), 2u);
  const JsonValue& report = responses[1];
  EXPECT_EQ(report.at("output").as_string(), cold.out);
  EXPECT_EQ(static_cast<int>(report.at("status").as_number()), cold.status);
}

TEST_F(DaemonTest, WarmVerifyIsByteIdenticalAndFullyMemoized) {
  const auto responses = daemon_session({load_request(),
                                         R"({"cmd":"verify","jobs":1})",
                                         R"({"cmd":"verify","jobs":1})",
                                         R"({"cmd":"stats"})"});
  ASSERT_EQ(responses.size(), 4u);
  const JsonValue& first = responses[1];
  const JsonValue& second = responses[2];
  EXPECT_EQ(second.at("output").as_string(), first.at("output").as_string());
  EXPECT_EQ(second.at("errors").as_string(), first.at("errors").as_string());
  const JsonValue& queries = responses[3].at("queries");
  // Cold sweep: 5 misses; warm sweep: 5 hits, not one query re-ran.
  EXPECT_EQ(queries.at("report_misses").as_number(), 5);
  EXPECT_EQ(queries.at("report_hits").as_number(), 5);
}

TEST_F(DaemonTest, UpdateReverifiesOnlyTheDependencyClosure) {
  const std::string edited = edited_valve();
  const auto responses = daemon_session(
      {load_request(), R"({"cmd":"verify","jobs":1})",
       update_request(path("valve.py"), edited),
       R"({"cmd":"verify","jobs":1})", R"({"cmd":"stats"})"});
  ASSERT_EQ(responses.size(), 5u);

  // The edit to Valve invalidates exactly its dependency closure: Valve
  // plus the three composites built on it.  Led stays memoized.
  const JsonValue& update = responses[2];
  ASSERT_TRUE(update.at("ok").as_bool());
  std::vector<std::string> changed;
  for (const JsonValue& name : update.at("changed").as_array()) {
    changed.push_back(name.as_string());
  }
  std::sort(changed.begin(), changed.end());
  EXPECT_EQ(changed, (std::vector<std::string>{"BadSector", "GoodSector",
                                               "Sector", "Valve"}));
  EXPECT_EQ(update.at("invalidated").as_number(), 4);

  const JsonValue& queries = responses[4].at("queries");
  // Cold 5 misses; post-update sweep: 1 hit (Led) + 4 fresh misses.
  EXPECT_EQ(queries.at("report_misses").as_number(), 9);
  EXPECT_EQ(queries.at("report_hits").as_number(), 1);

  // And the post-update answer equals a cold run over the edited sources.
  write_file("valve.py", edited);
  const RunResult cold = cold_cli(paper_paths());
  const JsonValue& verify = responses[3];
  EXPECT_EQ(verify.at("output").as_string(), cold.out);
  EXPECT_EQ(verify.at("errors").as_string(), cold.err);
  EXPECT_EQ(static_cast<int>(verify.at("status").as_number()), cold.status);
}

TEST_F(DaemonTest, ParallelVerifyMatchesSerialBytes) {
  // Same session, serial then parallel then serial again: the merge
  // protocol keeps the bytes identical regardless of jobs (and the
  // parallel run drives the shared pool under TSan).
  const auto responses =
      daemon_session({load_request(), R"({"cmd":"verify","jobs":1})",
                      R"({"cmd":"verify","jobs":4})",
                      R"({"cmd":"verify","jobs":4})"});
  ASSERT_EQ(responses.size(), 4u);
  for (std::size_t i = 2; i < 4; ++i) {
    EXPECT_EQ(responses[i].at("output").as_string(),
              responses[1].at("output").as_string());
    EXPECT_EQ(responses[i].at("errors").as_string(),
              responses[1].at("errors").as_string());
    EXPECT_EQ(responses[i].at("status").as_number(),
              responses[1].at("status").as_number());
  }
}

TEST_F(DaemonTest, CommentOnlyUpdateInvalidatesNothing) {
  std::string edited = examples::kValveSource;
  const auto pos = edited.find("def test(self):");
  ASSERT_NE(pos, std::string::npos);
  edited.insert(pos + 15, "  # comment");
  const auto responses = daemon_session(
      {load_request(), R"({"cmd":"verify","jobs":1})",
       update_request(path("valve.py"), edited),
       R"({"cmd":"verify","jobs":1})", R"({"cmd":"stats"})"});
  ASSERT_EQ(responses.size(), 5u);
  const JsonValue& update = responses[2];
  EXPECT_TRUE(update.at("changed").as_array().empty());
  EXPECT_EQ(update.at("invalidated").as_number(), 0);
  const JsonValue& queries = responses[4].at("queries");
  EXPECT_EQ(queries.at("report_hits").as_number(), 5);
}

TEST_F(DaemonTest, SingleClassVerifyMatchesColdCli) {
  CliOptions options;
  options.files = paper_paths();
  options.jobs = 1;
  options.verify_class = "BadSector";
  std::istringstream in;
  std::ostringstream out;
  std::ostringstream err;
  const int cold_status = run_tool(options, in, out, err);

  const auto responses = daemon_session(
      {load_request(), R"({"cmd":"verify","class":"BadSector"})"});
  ASSERT_EQ(responses.size(), 2u);
  const JsonValue& verify = responses[1];
  EXPECT_EQ(verify.at("output").as_string(), out.str());
  EXPECT_EQ(static_cast<int>(verify.at("status").as_number()), cold_status);
}

TEST_F(DaemonTest, RepeatedRequestsDoNotAccumulateDiagnostics) {
  // The sink rewinds between requests: asking for the same failing class
  // three times yields the same bytes three times.
  const auto responses = daemon_session(
      {load_request(), R"({"cmd":"verify","class":"BadSector"})",
       R"({"cmd":"verify","class":"BadSector"})",
       R"({"cmd":"verify","class":"BadSector"})"});
  ASSERT_EQ(responses.size(), 4u);
  for (std::size_t i = 2; i < 4; ++i) {
    EXPECT_EQ(responses[i].at("output").as_string(),
              responses[1].at("output").as_string());
    EXPECT_EQ(responses[i].at("errors").as_string(),
              responses[1].at("errors").as_string());
  }
}

TEST_F(DaemonTest, MalformedRequestIsAnErrorResponseNotACrash) {
  const auto responses = daemon_session(
      {"this is not json", R"({"no_cmd":true})",
       R"({"cmd":"fly"})", R"({"cmd":"version"})"});
  ASSERT_EQ(responses.size(), 4u);
  EXPECT_FALSE(responses[0].at("ok").as_bool());
  EXPECT_FALSE(responses[1].at("ok").as_bool());
  EXPECT_FALSE(responses[2].at("ok").as_bool());
  EXPECT_NE(responses[2].at("error").as_string().find("unknown command"),
            std::string::npos);
  EXPECT_TRUE(responses[3].at("ok").as_bool());  // the session survived
}

TEST_F(DaemonTest, ShutdownEndsTheLoop) {
  const auto responses = daemon_session(
      {R"({"cmd":"shutdown"})", R"({"cmd":"version"})"});
  // The second request is never answered.
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_TRUE(responses[0].at("ok").as_bool());
}

TEST_F(DaemonTest, LoadReportsPerFileOutcomes) {
  const auto responses = daemon_session({[&] {
    JsonWriter writer;
    writer.begin_object();
    writer.key("cmd").value("load");
    writer.key("files").begin_array();
    writer.value(path("valve.py"));
    writer.value(path("missing.py"));
    writer.end_array();
    writer.end_object();
    return writer.str();
  }()});
  ASSERT_EQ(responses.size(), 1u);
  const JsonValue& load = responses[0];
  EXPECT_TRUE(load.at("ok").as_bool());
  EXPECT_EQ(static_cast<int>(load.at("status").as_number()), 2);
  const auto& files = load.at("files").as_array();
  ASSERT_EQ(files.size(), 2u);
  EXPECT_TRUE(files[0].at("loaded").as_bool());
  EXPECT_FALSE(files[1].at("loaded").as_bool());
  EXPECT_EQ(files[1].at("failure").as_string(), "cannot open file");
  EXPECT_NE(load.at("errors").as_string().find("cannot open"),
            std::string::npos);
}

TEST_F(DaemonTest, MonitorChecksInlineEventsAgainstTheValveSpec) {
  const auto responses = daemon_session(
      {load_request(),
       R"({"cmd":"monitor","class":"Valve","events":[)"
       R"({"device":"a","op":"test"},{"device":"b","op":"test"},)"
       R"({"device":"a","op":"open"},{"device":"b","op":"clean"},)"
       R"({"device":"a","op":"close"}]})"});
  ASSERT_EQ(responses.size(), 2u);
  const JsonValue& reply = responses[1];
  EXPECT_TRUE(reply.at("ok").as_bool());
  EXPECT_EQ(reply.at("class").as_string(), "Valve");
  EXPECT_EQ(reply.at("events").as_number(), 5);
  EXPECT_EQ(reply.at("ok_events").as_number(), 5);
  EXPECT_EQ(reply.at("violations").as_number(), 0);
  EXPECT_EQ(reply.at("malformed").as_number(), 0);
  EXPECT_EQ(reply.at("devices").as_number(), 2);
  EXPECT_EQ(reply.at("completed_devices").as_number(), 2);
  EXPECT_EQ(reply.at("violated_devices").as_number(), 0);
  EXPECT_EQ(reply.at("incomplete_devices").as_number(), 0);
  EXPECT_TRUE(reply.at("reports").as_array().empty());
}

TEST_F(DaemonTest, MonitorReportsViolationsWithSourceLocations) {
  const auto responses = daemon_session(
      {load_request(),
       R"({"cmd":"monitor","class":"Valve","events":[)"
       R"({"device":"v","op":"test"},{"device":"v","op":"open"},)"
       R"({"device":"v","op":"close"},{"device":"v","op":"close"}]})"});
  ASSERT_EQ(responses.size(), 2u);
  const JsonValue& reply = responses[1];
  EXPECT_TRUE(reply.at("ok").as_bool());
  EXPECT_EQ(reply.at("violations").as_number(), 1);
  EXPECT_EQ(reply.at("violated_devices").as_number(), 1);
  const auto& reports = reply.at("reports").as_array();
  ASSERT_EQ(reports.size(), 1u);
  const JsonValue& report = reports[0];
  EXPECT_EQ(report.at("index").as_number(), 3);  // global event index
  EXPECT_EQ(report.at("device").as_string(), "v");
  EXPECT_EQ(report.at("device_index").as_number(), 3);
  EXPECT_EQ(report.at("op").as_string(), "close");
  // `close` is declared in valve.py, so the report carries its location.
  EXPECT_GT(report.at("line").as_number(), 0);
  EXPECT_GT(report.at("column").as_number(), 0);
  const auto& allowed = report.at("allowed").as_array();
  ASSERT_EQ(allowed.size(), 1u);  // after close only test may follow
  EXPECT_EQ(allowed[0].as_string(), "test");
}

TEST_F(DaemonTest, MonitorAcceptsNdjsonBlobsAndCountsMalformedLines) {
  const auto responses = daemon_session(
      {load_request(), [] {
         JsonWriter writer;
         writer.begin_object();
         writer.key("cmd").value("monitor");
         writer.key("class").value("Valve");
         writer.key("shards").value(std::uint64_t{3});
         writer.key("ndjson").value(
             "{\"device\":\"x\",\"op\":\"test\"}\n"
             "not json at all\n"
             "{\"device\":\"x\",\"op\":\"clean\"}");  // no trailing newline
         writer.end_object();
         return writer.str();
       }()});
  ASSERT_EQ(responses.size(), 2u);
  const JsonValue& reply = responses[1];
  EXPECT_TRUE(reply.at("ok").as_bool());
  EXPECT_EQ(reply.at("events").as_number(), 2);
  EXPECT_EQ(reply.at("ok_events").as_number(), 2);
  EXPECT_EQ(reply.at("malformed").as_number(), 1);
  EXPECT_EQ(reply.at("completed_devices").as_number(), 1);
}

TEST_F(DaemonTest, MonitorUnknownClassIsAnErrorResponse) {
  const auto responses = daemon_session(
      {load_request(),
       R"({"cmd":"monitor","class":"Ghost","events":[]})",
       R"({"cmd":"version"})"});
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_FALSE(responses[1].at("ok").as_bool());
  EXPECT_NE(responses[1].at("error").as_string().find("unknown class"),
            std::string::npos);
  EXPECT_TRUE(responses[2].at("ok").as_bool());  // the session survived
}

TEST_F(DaemonTest, MonitorMemoizesTheCompiledTableAcrossRequests) {
  const std::string monitor_request =
      R"({"cmd":"monitor","class":"Valve","events":[)"
      R"({"device":"m","op":"test"}]})";
  const auto responses = daemon_session(
      {load_request(), monitor_request, monitor_request,
       R"({"cmd":"stats"})"});
  ASSERT_EQ(responses.size(), 4u);
  EXPECT_TRUE(responses[1].at("ok").as_bool());
  EXPECT_TRUE(responses[2].at("ok").as_bool());
  const JsonValue& queries = responses[3].at("queries");
  EXPECT_EQ(queries.at("table_misses").as_number(), 1);
  EXPECT_EQ(queries.at("table_hits").as_number(), 1);
}

}  // namespace
}  // namespace shelley::engine
