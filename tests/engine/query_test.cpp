// QueryEngine: memo-tier layering, hit/miss accounting, byte-identical
// warm replay, and precise invalidation along the dependency closure.
#include "engine/query.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "fsm/serialize.hpp"
#include "paper_sources.hpp"
#include "shelley/cache.hpp"

namespace shelley::engine {
namespace {

std::string fresh_dir(const char* tag) {
  static int counter = 0;
  const std::filesystem::path dir = std::filesystem::path(::testing::TempDir()) /
                                    ("query_" + std::string(tag) + "_" +
                                     std::to_string(counter++));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

class QueryTest : public ::testing::Test {
 protected:
  void load_paper_sources() {
    workspace_.load_source("valve.py", examples::kValveSource);
    workspace_.load_source("bad.py", examples::kBadSectorSource);
    workspace_.load_source("sector.py", examples::kSectorSource);
    workspace_.load_source("good.py", examples::kGoodSectorSource);
  }

  /// One verify_all sweep; returns the rendered report so runs can be
  /// compared byte for byte.
  std::string sweep(QueryEngine& engine) {
    workspace_.rewind_to_loaded();
    const core::Report report = engine.verify_all(1);
    std::string text = report.render(workspace_.verifier().symbols());
    for (const core::ClassReport& entry : report.classes) {
      text += entry.class_name + (entry.ok() ? ":ok\n" : ":fail\n");
    }
    return text;
  }

  Workspace workspace_;
};

TEST_F(QueryTest, ColdSweepMissesWarmSweepHits) {
  load_paper_sources();
  QueryEngine engine(workspace_);
  const std::string cold = sweep(engine);
  EXPECT_EQ(engine.stats().report_misses, 4u);
  EXPECT_EQ(engine.stats().report_hits, 0u);
  EXPECT_EQ(engine.memo().stats().stores, 4u);

  const std::string warm = sweep(engine);
  EXPECT_EQ(engine.stats().report_hits, 4u);
  EXPECT_EQ(engine.stats().report_misses, 4u);  // unchanged
  EXPECT_EQ(warm, cold);  // replay is byte-identical
}

TEST_F(QueryTest, WarmDiagnosticsReplayVerbatim) {
  load_paper_sources();
  // An unknown successor is diagnosed at verification time, so the warm
  // replay must reproduce the diagnostic bytes, not just the verdict.
  workspace_.load_source("odd.py",
                         "@sys\nclass Odd:\n    @op_initial_final\n"
                         "    def go(self):\n"
                         "        return [\"nonexistent\"]\n");
  QueryEngine engine(workspace_);

  auto render_diags = [&] {
    workspace_.rewind_to_loaded();
    const core::Report report = engine.verify_all(1);
    (void)report;
    std::string text;
    const auto& diags = workspace_.verifier().diagnostics().diagnostics();
    for (std::size_t i = workspace_.load_diag_end(); i < diags.size(); ++i) {
      text += diags[i].message + "\n";
    }
    return text;
  };
  const std::string cold = render_diags();
  const std::string warm = render_diags();
  EXPECT_FALSE(cold.empty());  // BadSector produces findings
  EXPECT_EQ(warm, cold);
}

TEST_F(QueryTest, ParallelSweepMatchesSerialBytes) {
  load_paper_sources();
  QueryEngine serial_engine(workspace_);
  const std::string serial = sweep(serial_engine);

  Workspace parallel_ws;
  parallel_ws.load_source("valve.py", examples::kValveSource);
  parallel_ws.load_source("bad.py", examples::kBadSectorSource);
  parallel_ws.load_source("sector.py", examples::kSectorSource);
  parallel_ws.load_source("good.py", examples::kGoodSectorSource);
  QueryEngine parallel_engine(parallel_ws);
  const core::Report report = parallel_engine.verify_all(4);
  std::string parallel = report.render(parallel_ws.verifier().symbols());
  for (const core::ClassReport& entry : report.classes) {
    parallel += entry.class_name + (entry.ok() ? ":ok\n" : ":fail\n");
  }
  EXPECT_EQ(parallel, serial);
}

TEST_F(QueryTest, UpdateInvalidatesExactlyTheClosure) {
  load_paper_sources();
  QueryEngine engine(workspace_);
  (void)sweep(engine);
  ASSERT_EQ(engine.memo().stats().stores, 4u);

  // Semantic edit to Valve: every composite folds Valve's key in, so the
  // whole family invalidates.
  std::string edited = examples::kValveSource;
  const auto pos = edited.find("return [\"test\"]");
  ASSERT_NE(pos, std::string::npos);
  edited.replace(pos, 15, "return [\"test\", \"clean\"]");
  const UpdateResult update = workspace_.update_source("valve.py", edited);
  EXPECT_EQ(update.changed.size(), 4u);
  EXPECT_EQ(engine.apply_update(update), 4u);
  EXPECT_EQ(engine.memo().stats().invalidations, 4u);

  (void)sweep(engine);
  // No survivors: the whole closure re-verifies from scratch.
  EXPECT_EQ(engine.stats().report_hits, 0u);
  EXPECT_EQ(engine.stats().report_misses, 8u);
}

TEST_F(QueryTest, CanaryOutsideClosureKeepsItsMemoEntry) {
  load_paper_sources();
  workspace_.load_source("led.py",
                         "@sys\nclass Led:\n    @op_initial_final\n"
                         "    def blink(self):\n        return [\"blink\"]\n");
  QueryEngine engine(workspace_);
  (void)sweep(engine);
  ASSERT_EQ(engine.stats().report_misses, 5u);

  std::string edited = examples::kValveSource;
  const auto pos = edited.find("return [\"test\"]");
  ASSERT_NE(pos, std::string::npos);
  edited.replace(pos, 15, "return [\"test\", \"clean\"]");
  const std::size_t dropped =
      engine.apply_update(workspace_.update_source("valve.py", edited));
  EXPECT_EQ(dropped, 4u);  // Led's entry survives

  (void)sweep(engine);
  // The valve family re-verifies; Led replays from the memo.
  EXPECT_EQ(engine.stats().report_hits, 1u);
  EXPECT_EQ(engine.stats().report_misses, 9u);
}

TEST_F(QueryTest, CommentOnlyEditKeepsEveryEntry) {
  load_paper_sources();
  QueryEngine engine(workspace_);
  const std::string cold = sweep(engine);

  std::string edited = examples::kValveSource;
  const auto pos = edited.find("def test(self):");
  ASSERT_NE(pos, std::string::npos);
  edited.insert(pos + 15, "  # comment");
  const std::size_t dropped =
      engine.apply_update(workspace_.update_source("valve.py", edited));
  EXPECT_EQ(dropped, 0u);

  const std::string warm = sweep(engine);
  EXPECT_EQ(engine.stats().report_hits, 4u);
  EXPECT_EQ(warm, cold);
}

TEST_F(QueryTest, UsageDfaMemoizesAndReplaysIdentically) {
  workspace_.load_source("valve.py", examples::kValveSource);
  QueryEngine engine(workspace_);
  const core::ClassSpec* spec = workspace_.verifier().find_class("Valve");
  ASSERT_NE(spec, nullptr);

  const fsm::Dfa cold = engine.usage_dfa(*spec);
  EXPECT_EQ(engine.stats().dfa_misses, 1u);
  const fsm::Dfa warm = engine.usage_dfa(*spec);
  EXPECT_EQ(engine.stats().dfa_hits, 1u);
  SymbolTable& table = workspace_.verifier().symbols();
  EXPECT_EQ(fsm::dfa_to_bytes(warm, table), fsm::dfa_to_bytes(cold, table));
}

TEST_F(QueryTest, UsageDfaPromotesFromTheDiskTier) {
  const std::string dir = fresh_dir("dfa");
  // First session: build and persist.
  {
    Workspace workspace;
    core::BehaviorCache cache(dir);
    workspace.set_cache(&cache);
    workspace.load_source("valve.py", examples::kValveSource);
    QueryEngine engine(workspace);
    const core::ClassSpec* spec = workspace.verifier().find_class("Valve");
    ASSERT_NE(spec, nullptr);
    (void)engine.usage_dfa(*spec);
    EXPECT_EQ(engine.stats().dfa_misses, 1u);
  }
  // Second session, fresh memo: the disk tier answers, then the in-memory
  // tier takes over.
  Workspace workspace;
  core::BehaviorCache cache(dir);
  workspace.set_cache(&cache);
  workspace.load_source("valve.py", examples::kValveSource);
  QueryEngine engine(workspace);
  const core::ClassSpec* spec = workspace.verifier().find_class("Valve");
  ASSERT_NE(spec, nullptr);
  (void)engine.usage_dfa(*spec);
  EXPECT_EQ(cache.stats().hits, 1u);
  (void)engine.usage_dfa(*spec);
  EXPECT_EQ(engine.stats().dfa_hits, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);  // memo answered, disk untouched
}

TEST_F(QueryTest, CompiledTableMemoizesAndReplaysIdentically) {
  workspace_.load_source("valve.py", examples::kValveSource);
  QueryEngine engine(workspace_);
  const core::ClassSpec* spec = workspace_.verifier().find_class("Valve");
  ASSERT_NE(spec, nullptr);

  const fsm::CompiledDfa cold = engine.compiled_table(*spec);
  EXPECT_EQ(engine.stats().table_misses, 1u);
  EXPECT_EQ(engine.stats().table_hits, 0u);
  const fsm::CompiledDfa warm = engine.compiled_table(*spec);
  EXPECT_EQ(engine.stats().table_hits, 1u);
  EXPECT_EQ(warm.to_bytes(), cold.to_bytes());
  // The table agrees with the usage DFA it was compiled from.
  const fsm::Dfa& dfa = engine.usage_dfa(*spec);
  EXPECT_EQ(cold.state_count(), dfa.state_count() + 1);  // + sink row
}

TEST_F(QueryTest, CompiledTablePromotesFromTheDiskTier) {
  const std::string dir = fresh_dir("table");
  std::string cold_bytes;
  // First session: compile and persist.
  {
    Workspace workspace;
    core::BehaviorCache cache(dir);
    workspace.set_cache(&cache);
    workspace.load_source("valve.py", examples::kValveSource);
    QueryEngine engine(workspace);
    const core::ClassSpec* spec = workspace.verifier().find_class("Valve");
    ASSERT_NE(spec, nullptr);
    cold_bytes = engine.compiled_table(*spec).to_bytes();
    EXPECT_EQ(engine.stats().table_misses, 1u);
    EXPECT_GE(cache.stats().stores, 1u);
  }
  // Second session, fresh memo: the disk tier answers byte-identically,
  // then the in-memory tier takes over.
  Workspace workspace;
  core::BehaviorCache cache(dir);
  workspace.set_cache(&cache);
  workspace.load_source("valve.py", examples::kValveSource);
  QueryEngine engine(workspace);
  const core::ClassSpec* spec = workspace.verifier().find_class("Valve");
  ASSERT_NE(spec, nullptr);
  EXPECT_EQ(engine.compiled_table(*spec).to_bytes(), cold_bytes);
  EXPECT_EQ(cache.stats().hits, 1u);
  (void)engine.compiled_table(*spec);
  EXPECT_EQ(engine.stats().table_hits, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);  // memo answered, disk untouched
}

TEST_F(QueryTest, CompiledTableInvalidatesWithTheClosure) {
  workspace_.load_source("valve.py", examples::kValveSource);
  QueryEngine engine(workspace_);
  const core::ClassSpec* spec = workspace_.verifier().find_class("Valve");
  ASSERT_NE(spec, nullptr);
  (void)engine.compiled_table(*spec);
  // A semantic edit to the class invalidates the memoized table: the next
  // query recompiles against the new fingerprint.
  std::string edited = examples::kValveSource;
  const auto pos = edited.find("return [\"test\"]");
  ASSERT_NE(pos, std::string::npos);
  edited.replace(pos, 15, "return [\"test\", \"clean\"]");
  (void)engine.apply_update(workspace_.update_source("valve.py", edited));
  spec = workspace_.verifier().find_class("Valve");
  ASSERT_NE(spec, nullptr);
  (void)engine.compiled_table(*spec);
  EXPECT_EQ(engine.stats().table_misses, 2u);
}

TEST_F(QueryTest, SmvModelMemoizesWhenAllClaimsParse) {
  load_paper_sources();
  QueryEngine engine(workspace_);
  const core::ClassSpec* spec =
      workspace_.verifier().find_class("GoodSector");
  ASSERT_NE(spec, nullptr);

  const SmvArtifact cold = engine.smv_model(*spec);
  EXPECT_TRUE(cold.skipped_claims.empty());
  EXPECT_EQ(engine.stats().artifact_misses, 1u);
  const SmvArtifact warm = engine.smv_model(*spec);
  EXPECT_EQ(engine.stats().artifact_hits, 1u);
  EXPECT_EQ(warm.text, cold.text);
}

TEST_F(QueryTest, SmvModelWithSkippedClaimsIsNeverMemoized) {
  workspace_.load_source("valve.py", examples::kValveSource);
  workspace_.load_source("odd.py",
                         "@claim(\"this is not ltlf ((\")\n"
                         "@sys([\"a\"])\nclass Odd:\n"
                         "    def __init__(self):\n        self.a = Valve()\n"
                         "    @op_initial_final\n    def go(self):\n"
                         "        return []\n");
  QueryEngine engine(workspace_);
  const core::ClassSpec* spec = workspace_.verifier().find_class("Odd");
  ASSERT_NE(spec, nullptr);

  const SmvArtifact first = engine.smv_model(*spec);
  EXPECT_FALSE(first.skipped_claims.empty());
  const SmvArtifact second = engine.smv_model(*spec);
  // Both runs fell through -- the skip notice must reprint every time.
  EXPECT_EQ(engine.stats().artifact_hits, 0u);
  EXPECT_EQ(engine.stats().artifact_misses, 2u);
  EXPECT_EQ(second.skipped_claims, first.skipped_claims);
  EXPECT_EQ(second.text, first.text);
}

TEST_F(QueryTest, MemoLayersAboveTheDiskCache) {
  const std::string dir = fresh_dir("layer");
  core::BehaviorCache cache(dir);
  workspace_.set_cache(&cache);
  load_paper_sources();
  QueryEngine engine(workspace_);
  (void)sweep(engine);
  const auto cold_disk = cache.stats();
  EXPECT_GE(cold_disk.misses, 4u);  // cold run populated the disk tier

  (void)sweep(engine);
  // The warm sweep is answered entirely by the in-memory tier: the disk
  // cache sees no further traffic.
  EXPECT_EQ(cache.stats().hits, cold_disk.hits);
  EXPECT_EQ(cache.stats().misses, cold_disk.misses);
  EXPECT_EQ(engine.stats().report_hits, 4u);
}

TEST_F(QueryTest, VerifyClassUnknownNameReportsError) {
  load_paper_sources();
  QueryEngine engine(workspace_);
  workspace_.rewind_to_loaded();
  const core::ClassReport report = engine.verify_class("Nonexistent");
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(workspace_.verifier().diagnostics().has_errors());
}

}  // namespace
}  // namespace shelley::engine
