// Request-scoped observability of the daemon, driven in-process: a mixed
// 20+-request session must produce per-query-kind latency histograms with
// plausible quantiles in the stats reply, parseable Prometheus text from
// the metrics command, a slow-query log line carrying its request id, and
// a trace export forming one connected span tree per request across
// thread-pool workers.
#include "engine/daemon.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "engine/driver.hpp"
#include "engine/query.hpp"
#include "engine/session.hpp"
#include "engine/workspace.hpp"
#include "paper_sources.hpp"
#include "support/json.hpp"
#include "support/log.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace shelley::engine {
namespace {

namespace log = support::log;
namespace metrics = support::metrics;
namespace trace = support::trace;

/// A long ring of operations: cold verification reliably takes more than
/// the 1 ms slow threshold the tests arm.
std::string ring_source(int ops) {
  std::string src = "@sys\nclass Ring:\n";
  for (int i = 0; i < ops; ++i) {
    src += i == 0 ? "    @op_initial_final\n" : "    @op_final\n";
    src += "    def op" + std::to_string(i) + "(self):\n";
    src += "        return [\"op" + std::to_string((i + 1) % ops) + "\"]\n\n";
  }
  return src;
}

class DaemonObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::path(::testing::TempDir()) /
           ("daemon_obs_" + std::string(::testing::UnitTest::GetInstance()
                                            ->current_test_info()
                                            ->name()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    write_file("valve.py", examples::kValveSource);
    write_file("bad.py", examples::kBadSectorSource);
    write_file("sector.py", examples::kSectorSource);
    write_file("good.py", examples::kGoodSectorSource);
    write_file("ring.py", ring_source(300));
    log_path_ = (dir_ / "daemon.ndjson").string();

    trace::set_enabled(true);
    trace::reset();
    metrics::set_enabled(true);
    metrics::reset();
  }

  void TearDown() override {
    log::configure("");
    trace::set_enabled(false);
    trace::reset();
    metrics::set_enabled(false);
    metrics::reset();
  }

  void write_file(const std::string& name, const std::string& text) {
    std::ofstream stream(dir_ / name, std::ios::binary);
    stream << text;
  }

  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  [[nodiscard]] std::string load_request() const {
    JsonWriter writer;
    writer.begin_object();
    writer.key("cmd").value("load");
    writer.key("files").begin_array();
    for (const char* file :
         {"valve.py", "bad.py", "sector.py", "good.py", "ring.py"}) {
      writer.value(path(file));
    }
    writer.end_array();
    writer.end_object();
    return writer.str();
  }

  std::vector<JsonValue> daemon_session(
      const std::vector<std::string>& requests, std::uint64_t slow_ms = 0) {
    CliOptions session;
    session.jobs = 1;
    session.slow_ms = slow_ms;
    std::string input;
    for (const std::string& request : requests) input += request + "\n";
    std::istringstream in(input);
    std::ostringstream out;
    std::ostringstream err;
    EXPECT_EQ(run_daemon(session, in, out, err), 0);
    std::vector<JsonValue> responses;
    std::istringstream lines(out.str());
    std::string line;
    while (std::getline(lines, line)) {
      if (!line.empty()) responses.push_back(parse_json(line));
    }
    return responses;
  }

  /// The 24-request mixed session every test in this suite drives: loads,
  /// cold and warm verifies (serial and parallel), reports, updates, two
  /// stats probes, metrics, a trace export, shutdown.
  [[nodiscard]] std::vector<std::string> mixed_requests() const {
    std::string edited = examples::kValveSource;
    const auto pos = edited.find("return [\"test\"]");
    EXPECT_NE(pos, std::string::npos);
    edited.replace(pos, 15, "return [\"test\", \"clean\"]");
    JsonWriter update;
    update.begin_object();
    update.key("cmd").value("update");
    update.key("file").value(path("valve.py"));
    update.key("text").value(edited);
    update.end_object();
    JsonWriter revert;
    revert.begin_object();
    revert.key("cmd").value("update");
    revert.key("file").value(path("valve.py"));
    revert.key("text").value(examples::kValveSource);
    revert.end_object();
    return {
        R"({"cmd":"version"})",                         // 1
        load_request(),                                 // 2
        R"({"cmd":"verify","jobs":1})",                 // 3 (cold: slow)
        R"({"cmd":"verify","jobs":1})",                 // 4 (warm)
        R"({"cmd":"verify","jobs":4})",                 // 5
        R"({"cmd":"report","jobs":1})",                 // 6
        R"({"cmd":"report","jobs":4})",                 // 7
        update.str(),                                   // 8
        R"({"cmd":"verify","jobs":1})",                 // 9
        R"({"cmd":"verify","class":"BadSector"})",      // 10
        R"({"cmd":"verify","class":"Ring"})",           // 11
        R"({"cmd":"version"})",                         // 12
        R"({"cmd":"report","jobs":1})",                 // 13
        R"({"cmd":"verify","jobs":4})",                 // 14
        revert.str(),                                   // 15
        R"({"cmd":"verify","jobs":1})",                 // 16
        R"({"cmd":"verify","class":"Valve"})",          // 17
        R"({"cmd":"report","class":"GoodSector"})",     // 18
        R"({"cmd":"stats"})",                           // 19
        R"({"cmd":"metrics"})",                         // 20
        R"({"cmd":"verify","jobs":1})",                 // 21
        R"({"cmd":"stats"})",                           // 22
        R"({"cmd":"trace"})",                           // 23
        R"({"cmd":"shutdown"})",                        // 24
    };
  }

  std::filesystem::path dir_;
  std::string log_path_;
};

TEST_F(DaemonObsTest, StatsCarriesPlausibleHistogramsAndCounters) {
  const auto responses = daemon_session(mixed_requests());
  ASSERT_EQ(responses.size(), 24u);
  const JsonValue& stats = responses[21];  // request #22
  ASSERT_TRUE(stats.at("ok").as_bool());
  EXPECT_EQ(stats.at("requests").as_number(), 22.0);
  EXPECT_EQ(stats.at("request_errors").as_number(), 0.0);
  EXPECT_GE(stats.at("uptime_ms").as_number(), 0.0);

  const JsonValue& histograms = stats.at("histograms");
  // Per-request and per-query-kind latency series exist...
  const JsonValue& request_us = histograms.at("daemon.request_us");
  // ...and the request histogram counts exactly the requests finished
  // before this stats request was answered (21 of them).
  EXPECT_EQ(request_us.at("count").as_number(), 21.0);
  EXPECT_GT(histograms.at("query.report_us").at("count").as_number(), 0.0);
  EXPECT_GT(histograms.at("query.verify_all_us").at("count").as_number(),
            0.0);
  EXPECT_GT(histograms.at("pool.queue_wait_us").at("count").as_number(),
            0.0);
  // Quantile estimates are ordered and bounded by the observed extremes.
  for (const auto& [name, h] : histograms.as_object()) {
    const double p50 = h.at("p50").as_number();
    const double p90 = h.at("p90").as_number();
    const double p99 = h.at("p99").as_number();
    const double max = h.at("max").as_number();
    EXPECT_LE(p50, p90) << name;
    EXPECT_LE(p90, p99) << name;
    EXPECT_LE(p99, max) << name;
    EXPECT_GE(p50, h.at("min").as_number()) << name;
    // The sparse bucket array sums back to the count.
    double bucket_total = 0;
    for (const JsonValue& pair : h.at("buckets").as_array()) {
      bucket_total += pair.as_array()[1].as_number();
    }
    EXPECT_EQ(bucket_total, h.at("count").as_number()) << name;
  }

  // The satellite fix: support/metrics global counters fold into the
  // stats reply (the PR-6 allocation counters among them).
  const JsonValue& counters = stats.at("counters");
  EXPECT_GT(counters.at("fsm.determinize.calls").as_number(), 0.0);
  EXPECT_GT(counters.at("fsm.minimize.calls").as_number(), 0.0);
  // Cache tiers report their hit rates.
  EXPECT_GE(stats.at("memo").at("hit_rate").as_number(), 0.0);
  EXPECT_LE(stats.at("memo").at("hit_rate").as_number(), 1.0);
  EXPECT_GT(stats.at("parse").at("hit_rate").as_number(), 0.0);
}

TEST_F(DaemonObsTest, MetricsCommandEmitsParseablePrometheusText) {
  const auto responses = daemon_session(mixed_requests());
  ASSERT_EQ(responses.size(), 24u);
  const JsonValue& reply = responses[19];  // request #20
  ASSERT_TRUE(reply.at("ok").as_bool());
  EXPECT_EQ(reply.at("content_type").as_string(),
            "text/plain; version=0.0.4");
  const std::string& body = reply.at("body").as_string();

  // Every line is a comment or `name[{labels}] value`; histogram series
  // end with a +Inf bucket equal to the _count sample.
  std::map<std::string, double> samples;
  std::istringstream lines(body);
  std::string line;
  std::size_t parsed = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      EXPECT_EQ(line.rfind("# TYPE ", 0), 0u) << line;
      continue;
    }
    const auto space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string name = line.substr(0, space);
    const std::string value = line.substr(space + 1);
    EXPECT_FALSE(name.empty()) << line;
    // Metric names are sanitized identifiers (plus optional {le="..."}).
    EXPECT_EQ(name.rfind("shelley_", 0), 0u) << line;
    samples[name] = std::stod(value);
    ++parsed;
  }
  EXPECT_GT(parsed, 10u);
  ASSERT_TRUE(samples.contains("shelley_daemon_requests_total"));
  EXPECT_EQ(samples["shelley_daemon_requests_total"], 20.0);
  ASSERT_TRUE(samples.contains(
      "shelley_daemon_request_us_bucket{le=\"+Inf\"}"));
  EXPECT_EQ(samples["shelley_daemon_request_us_bucket{le=\"+Inf\"}"],
            samples["shelley_daemon_request_us_count"]);
  EXPECT_GT(samples["shelley_query_report_us_count"], 0.0);
}

TEST_F(DaemonObsTest, SlowQueryLogCarriesTheRequestId) {
  ASSERT_TRUE(log::configure(log_path_));
  const auto responses = daemon_session(mixed_requests(), /*slow_ms=*/1);
  ASSERT_EQ(responses.size(), 24u);
  log::configure("");

  std::ifstream in(log_path_);
  std::string line;
  std::size_t starts = 0;
  std::size_t finishes = 0;
  bool found_slow = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const JsonValue doc = parse_json(line);
    const std::string& event = doc.at("event").as_string();
    if (event == "request.start") ++starts;
    if (event == "request.finish") ++finishes;
    if (event == "request.slow") {
      found_slow = true;
      // The slow line names the culprit: its request id, command, and a
      // wall time above the armed threshold.
      EXPECT_GT(doc.at("request").as_number(), 0.0);
      EXPECT_FALSE(doc.at("cmd").as_string().empty());
      EXPECT_GT(doc.at("elapsed_us").as_number(), 1000.0);
      EXPECT_EQ(doc.at("threshold_ms").as_number(), 1.0);
      EXPECT_EQ(doc.at("level").as_string(), "warn");
    }
  }
  EXPECT_EQ(starts, 24u);
  EXPECT_EQ(finishes, 24u);
  // The 300-op ring's cold verification cannot finish within 1 ms.
  EXPECT_TRUE(found_slow);
}

TEST_F(DaemonObsTest, TraceExportFormsOneConnectedTreePerRequest) {
  const auto responses = daemon_session(mixed_requests());
  ASSERT_EQ(responses.size(), 24u);
  const JsonValue& reply = responses[22];  // request #23
  ASSERT_TRUE(reply.at("ok").as_bool());
  const JsonValue doc = parse_json(reply.at("trace").as_string());

  struct SpanRow {
    std::string name;
    std::uint64_t parent = 0;
    std::uint64_t request = 0;
  };
  std::map<std::uint64_t, SpanRow> spans;
  for (const JsonValue& event : doc.at("traceEvents").as_array()) {
    if (event.at("ph").as_string() != "X") continue;
    const JsonValue& args = event.at("args");
    SpanRow row;
    row.name = event.at("name").as_string();
    if (const JsonValue* parent = args.find("parent")) {
      row.parent = static_cast<std::uint64_t>(parent->as_number());
    }
    if (const JsonValue* request = args.find("request")) {
      row.request = static_cast<std::uint64_t>(request->as_number());
    }
    spans[static_cast<std::uint64_t>(args.at("span_id").as_number())] = row;
  }

  // One daemon.request root per finished request: ids 1..22 (the trace
  // request's own span is still open at export time, the shutdown not yet
  // read).
  std::set<std::uint64_t> roots;
  for (const auto& [id, row] : spans) {
    if (row.name != "daemon.request") continue;
    EXPECT_EQ(row.parent, 0u) << "request root must be parentless";
    EXPECT_TRUE(roots.insert(row.request).second)
        << "two roots for request " << row.request;
  }
  ASSERT_EQ(roots.size(), 22u);
  EXPECT_TRUE(roots.contains(1u));
  EXPECT_TRUE(roots.contains(22u));

  // Every other span walks up resolved parent links to the daemon.request
  // root of its own request -- across pool workers, no orphans.
  std::size_t walked = 0;
  for (const auto& [id, row] : spans) {
    if (row.name == "daemon.request") continue;
    ASSERT_NE(row.request, 0u) << row.name << " lost its request id";
    std::uint64_t cursor = id;
    std::set<std::uint64_t> seen;
    while (spans.at(cursor).name != "daemon.request") {
      ASSERT_TRUE(seen.insert(cursor).second) << "cycle at " << row.name;
      const std::uint64_t parent = spans.at(cursor).parent;
      ASSERT_NE(parent, 0u)
          << "orphan span " << spans.at(cursor).name << " (request "
          << row.request << ")";
      ASSERT_TRUE(spans.contains(parent))
          << "dangling parent on " << spans.at(cursor).name;
      cursor = parent;
    }
    EXPECT_EQ(spans.at(cursor).request, row.request)
        << row.name << " crossed into another request's tree";
    ++walked;
  }
  // The mixed session produced real work under the roots (pipeline spans
  // from serial and parallel verifies).
  EXPECT_GT(walked, 50u);
}

TEST_F(DaemonObsTest, QueryKindProbesCoverDfaAndSmvQueries) {
  // usage_dfa / smv_model have no daemon verb; drive them through the
  // engine directly and check their histograms fill in.
  Workspace workspace;
  std::ostringstream err;
  load_inputs(workspace,
              {path("valve.py"), path("bad.py"), path("sector.py"),
               path("good.py")},
              err);
  QueryEngine engine(workspace);
  const core::ClassSpec* valve =
      workspace.verifier().find_class("Valve");
  ASSERT_NE(valve, nullptr);
  (void)engine.usage_dfa(*valve);
  (void)engine.smv_model(*valve);
  (void)engine.verify_all(1);

  std::map<std::string, std::uint64_t> counts;
  for (const auto& [name, snap] : metrics::histogram_snapshot()) {
    counts[name] = snap.count;
  }
  EXPECT_GE(counts["query.usage_dfa_us"], 1u);
  EXPECT_GE(counts["query.smv_model_us"], 1u);
  EXPECT_GE(counts["query.verify_all_us"], 1u);
  EXPECT_GE(counts["query.report_us"], 1u);
}

TEST_F(DaemonObsTest, TraceCommandWritesToAFile) {
  const std::string out_path = path("daemon_trace.json");
  JsonWriter request;
  request.begin_object();
  request.key("cmd").value("trace");
  request.key("out").value(out_path);
  request.end_object();
  const auto responses = daemon_session(
      {R"({"cmd":"version"})", request.str(), R"({"cmd":"shutdown"})"});
  ASSERT_EQ(responses.size(), 3u);
  ASSERT_TRUE(responses[1].at("ok").as_bool());
  EXPECT_EQ(responses[1].at("path").as_string(), out_path);
  std::ifstream in(out_path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const JsonValue doc = parse_json(buffer.str());
  EXPECT_TRUE(doc.at("traceEvents").is_array());
}

TEST_F(DaemonObsTest, ObservabilityOffLeavesRepliesByteIdentical) {
  // The whole surface disabled: responses to the same session must be
  // byte-for-byte what an uninstrumented daemon writes.  (The existing
  // daemon differential suites cover daemon-vs-cold-shelleyc; this pins
  // instrumented-off vs instrumented-on response bytes for the non-stats
  // commands.)
  const std::vector<std::string> session = {
      load_request(), R"({"cmd":"verify","jobs":1})",
      R"({"cmd":"verify","jobs":4})", R"({"cmd":"report","jobs":1})",
      R"({"cmd":"shutdown"})"};
  const auto instrumented = daemon_session(session);

  trace::set_enabled(false);
  trace::reset();
  metrics::set_enabled(false);
  metrics::reset();
  const auto plain = daemon_session(session);

  ASSERT_EQ(instrumented.size(), plain.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(instrumented[i].at("ok").as_bool(),
              plain[i].at("ok").as_bool());
    if (const JsonValue* output = plain[i].find("output")) {
      EXPECT_EQ(output->as_string(),
                instrumented[i].at("output").as_string())
          << "response " << i;
    }
    if (const JsonValue* errors = plain[i].find("errors")) {
      EXPECT_EQ(errors->as_string(),
                instrumented[i].at("errors").as_string())
          << "response " << i;
    }
  }
}

TEST_F(DaemonObsTest, SwallowedRunFailureIsAnErrorReplyAndCounted) {
  // The error-accounting fix: a run_cli failure inside verify/report must
  // surface as {"ok":false,...}, count in request_errors, and leave a
  // request.error log line -- never a fabricated ok:true report.
  ASSERT_TRUE(log::configure(log_path_));
  testing::fail_next_run(true);
  const auto responses = daemon_session({
      R"({"cmd":"version"})",          // 1
      load_request(),                  // 2
      R"({"cmd":"verify","jobs":1})",  // 3 (injected failure)
      R"({"cmd":"verify","jobs":1})",  // 4 (recovers)
      R"({"cmd":"stats"})",            // 5
      R"({"cmd":"metrics"})",          // 6
      R"({"cmd":"shutdown"})",         // 7
  });
  testing::fail_next_run(false);
  log::configure("");
  ASSERT_EQ(responses.size(), 7u);

  const JsonValue& failed = responses[2];
  EXPECT_FALSE(failed.at("ok").as_bool());
  EXPECT_NE(failed.at("error").as_string().find("shelleyc: internal error"),
            std::string::npos);
  EXPECT_NE(failed.at("error").as_string().find("injected run failure"),
            std::string::npos);

  // The session recovers: the next verify answers with the real report.
  const JsonValue& recovered = responses[3];
  EXPECT_TRUE(recovered.at("ok").as_bool());
  EXPECT_NE(recovered.at("output").as_string().find("Valve: ok"),
            std::string::npos);

  const JsonValue& stats = responses[4];
  ASSERT_TRUE(stats.at("ok").as_bool());
  EXPECT_EQ(stats.at("requests").as_number(), 5.0);
  EXPECT_EQ(stats.at("request_errors").as_number(), 1.0);

  // The gauge reaches the Prometheus surface too.
  const std::string& body = responses[5].at("body").as_string();
  EXPECT_NE(body.find("shelley_daemon_request_errors_total 1"),
            std::string::npos);

  std::ifstream in(log_path_);
  std::string line;
  bool found_error = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const JsonValue doc = parse_json(line);
    if (doc.at("event").as_string() != "request.error") continue;
    found_error = true;
    EXPECT_EQ(doc.at("request").as_number(), 3.0);
    EXPECT_EQ(doc.at("cmd").as_string(), "verify");
    EXPECT_NE(doc.at("error").as_string().find("injected run failure"),
              std::string::npos);
    EXPECT_EQ(doc.at("level").as_string(), "error");
  }
  EXPECT_TRUE(found_error);
}

TEST_F(DaemonObsTest, PrometheusRenderDeduplicatesCollidingSanitizedNames) {
  // "collide.a_us" and "collide_a.us" both sanitize to
  // "shelley_collide_a_us"; before the fix the exposition announced the
  // same "# TYPE" family twice, which Prometheus rejects.
  metrics::counter("collide.a_us").add(3);
  metrics::counter("collide_a.us").add(5);
  metrics::histogram("collide.h_us").record(7);
  metrics::histogram("collide_h.us").record(9);
  const auto responses = daemon_session({
      R"({"cmd":"metrics"})",
      R"({"cmd":"shutdown"})",
  });
  ASSERT_EQ(responses.size(), 2u);
  const std::string& body = responses[0].at("body").as_string();

  std::set<std::string> families;
  std::istringstream lines(body);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind("# TYPE ", 0) != 0) continue;
    const auto space = line.rfind(' ');
    const std::string name = line.substr(7, space - 7);
    EXPECT_TRUE(families.insert(name).second) << "duplicate family " << name;
  }
  // Both colliding series survive, under deterministic suffixed names.
  EXPECT_TRUE(families.contains("shelley_collide_a_us_total"));
  EXPECT_TRUE(families.contains("shelley_collide_a_us_total_2"));
  EXPECT_TRUE(families.contains("shelley_collide_h_us"));
  EXPECT_TRUE(families.contains("shelley_collide_h_us_2"));
}

}  // namespace
}  // namespace shelley::engine
