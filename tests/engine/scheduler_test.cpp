// The multi-session request scheduler: per-session FIFO order, round-robin
// fairness across sessions, admission control (bounded per-session queues
// with synchronous rejection), drain/remove semantics, and a concurrency
// stress for the sanitizer presets.
#include "engine/scheduler.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace shelley::engine {
namespace {

TEST(SchedulerTest, RunsTasksOfOneSessionStrictlyInOrder) {
  Scheduler scheduler(Scheduler::Options{/*executors=*/4,
                                         /*session_queue_depth=*/64});
  const std::uint64_t session = scheduler.add_session();
  std::vector<int> order;
  std::mutex mutex;
  for (int i = 0; i < 32; ++i) {
    ASSERT_EQ(scheduler.submit(session,
                               [i, &order, &mutex] {
                                 const std::lock_guard<std::mutex> lock(mutex);
                                 order.push_back(i);
                               }),
              Scheduler::Admission::kAccepted);
  }
  scheduler.drain();
  ASSERT_EQ(order.size(), 32u);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(order[i], i);
}

TEST(SchedulerTest, NeverRunsTwoTasksOfOneSessionConcurrently) {
  Scheduler scheduler(Scheduler::Options{/*executors=*/8,
                                         /*session_queue_depth=*/64});
  const std::uint64_t session = scheduler.add_session();
  std::atomic<int> inside{0};
  std::atomic<bool> overlapped{false};
  for (int i = 0; i < 48; ++i) {
    ASSERT_EQ(scheduler.submit(session,
                               [&] {
                                 if (inside.fetch_add(1) != 0) {
                                   overlapped.store(true);
                                 }
                                 std::this_thread::sleep_for(
                                     std::chrono::microseconds(100));
                                 inside.fetch_sub(1);
                               }),
              Scheduler::Admission::kAccepted);
  }
  scheduler.drain();
  EXPECT_FALSE(overlapped.load());
}

TEST(SchedulerTest, RoundRobinInterleavesSessionsOnOneExecutor) {
  // One executor, two sessions, both queues pre-filled while the executor
  // is parked on a gate task: dispatch must then alternate A,B,A,B,...
  // (a finished session re-enters the ready list at the back).
  Scheduler scheduler(Scheduler::Options{/*executors=*/1,
                                         /*session_queue_depth=*/16});
  const std::uint64_t a = scheduler.add_session();
  const std::uint64_t b = scheduler.add_session();
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool gate_open = false;
  ASSERT_EQ(scheduler.submit(a,
                             [&] {
                               std::unique_lock<std::mutex> lock(gate_mutex);
                               gate_cv.wait(lock, [&] { return gate_open; });
                             }),
            Scheduler::Admission::kAccepted);
  std::vector<std::uint64_t> order;
  std::mutex order_mutex;
  const auto record = [&](std::uint64_t session) {
    return [session, &order, &order_mutex] {
      const std::lock_guard<std::mutex> lock(order_mutex);
      order.push_back(session);
    };
  };
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(scheduler.submit(a, record(a)),
              Scheduler::Admission::kAccepted);
    ASSERT_EQ(scheduler.submit(b, record(b)),
              Scheduler::Admission::kAccepted);
  }
  {
    const std::lock_guard<std::mutex> lock(gate_mutex);
    gate_open = true;
  }
  gate_cv.notify_all();
  scheduler.drain();
  ASSERT_EQ(order.size(), 8u);
  for (std::size_t i = 0; i < order.size(); ++i) {
    // The gate ran as session a's first task, so a re-queued behind b:
    // b, a, b, a, ...
    EXPECT_EQ(order[i], i % 2 == 0 ? b : a) << "position " << i;
  }
}

TEST(SchedulerTest, AdmissionRejectsBeyondTheSessionQueueDepth) {
  Scheduler scheduler(Scheduler::Options{/*executors=*/1,
                                         /*session_queue_depth=*/2});
  const std::uint64_t session = scheduler.add_session();
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool gate_entered = false;
  bool gate_open = false;
  ASSERT_EQ(scheduler.submit(session,
                             [&] {
                               std::unique_lock<std::mutex> lock(gate_mutex);
                               gate_entered = true;
                               gate_cv.notify_all();
                               gate_cv.wait(lock, [&] { return gate_open; });
                             }),
            Scheduler::Admission::kAccepted);
  // Wait until the gate task is *running* (popped off the queue): only
  // then is the queue accounting deterministic -- a running task does not
  // occupy a queue slot.
  {
    std::unique_lock<std::mutex> lock(gate_mutex);
    gate_cv.wait(lock, [&] { return gate_entered; });
  }
  // Two more fit in the depth-2 queue, the third is rejected synchronously.
  ASSERT_EQ(scheduler.submit(session, [] {}),
            Scheduler::Admission::kAccepted);
  ASSERT_EQ(scheduler.submit(session, [] {}),
            Scheduler::Admission::kAccepted);
  EXPECT_EQ(scheduler.submit(session, [] {}),
            Scheduler::Admission::kRejectedQueueFull);
  const Scheduler::Stats mid = scheduler.stats();
  EXPECT_EQ(mid.rejected, 1u);
  {
    const std::lock_guard<std::mutex> lock(gate_mutex);
    gate_open = true;
  }
  gate_cv.notify_all();
  scheduler.drain();
  const Scheduler::Stats stats = scheduler.stats();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.executed, 3u);
  EXPECT_EQ(stats.rejected, 1u);
}

TEST(SchedulerTest, UnknownSessionIsRejectedNotCrashed) {
  Scheduler scheduler(Scheduler::Options{/*executors=*/1,
                                         /*session_queue_depth=*/4});
  EXPECT_EQ(scheduler.submit(12345, [] {}),
            Scheduler::Admission::kRejectedUnknownSession);
  const std::uint64_t session = scheduler.add_session();
  scheduler.remove_session(session);
  EXPECT_EQ(scheduler.submit(session, [] {}),
            Scheduler::Admission::kRejectedUnknownSession);
}

TEST(SchedulerTest, RemoveSessionDrainsItsPendingTasks) {
  Scheduler scheduler(Scheduler::Options{/*executors=*/2,
                                         /*session_queue_depth=*/64});
  const std::uint64_t session = scheduler.add_session();
  std::atomic<int> ran{0};
  for (int i = 0; i < 16; ++i) {
    ASSERT_EQ(scheduler.submit(session,
                               [&ran] {
                                 std::this_thread::sleep_for(
                                     std::chrono::microseconds(50));
                                 ran.fetch_add(1);
                               }),
              Scheduler::Admission::kAccepted);
  }
  scheduler.remove_session(session);  // blocks until all 16 completed
  EXPECT_EQ(ran.load(), 16);
  EXPECT_EQ(scheduler.stats().sessions, 0u);
  scheduler.remove_session(session);  // double remove is harmless
}

TEST(SchedulerTest, ThrowingTaskDoesNotKillItsExecutor) {
  Scheduler scheduler(Scheduler::Options{/*executors=*/1,
                                         /*session_queue_depth=*/8});
  const std::uint64_t session = scheduler.add_session();
  std::atomic<bool> survived{false};
  ASSERT_EQ(scheduler.submit(session, [] { throw std::runtime_error("x"); }),
            Scheduler::Admission::kAccepted);
  ASSERT_EQ(scheduler.submit(session, [&] { survived.store(true); }),
            Scheduler::Admission::kAccepted);
  scheduler.drain();
  EXPECT_TRUE(survived.load());
  EXPECT_EQ(scheduler.stats().executed, 2u);
}

TEST(SchedulerTest, ConcurrentSessionsStress) {
  // Many sessions submitting from many threads while executors run: the
  // tsan/asan entries point the sanitizers here.  Per-session order must
  // still hold under the storm.
  Scheduler scheduler(Scheduler::Options{/*executors=*/4,
                                         /*session_queue_depth=*/256});
  constexpr int kSessions = 8;
  constexpr int kTasks = 64;
  std::vector<std::uint64_t> sessions;
  sessions.reserve(kSessions);
  std::map<std::uint64_t, std::vector<int>> orders;
  std::mutex orders_mutex;
  for (int s = 0; s < kSessions; ++s) {
    sessions.push_back(scheduler.add_session());
  }
  std::vector<std::thread> submitters;
  submitters.reserve(kSessions);
  for (int s = 0; s < kSessions; ++s) {
    submitters.emplace_back([&, s] {
      const std::uint64_t session = sessions[s];
      for (int i = 0; i < kTasks; ++i) {
        while (scheduler.submit(session,
                                [&, session, i] {
                                  const std::lock_guard<std::mutex> lock(
                                      orders_mutex);
                                  orders[session].push_back(i);
                                }) != Scheduler::Admission::kAccepted) {
          std::this_thread::yield();  // backpressure: retry on reject
        }
      }
    });
  }
  for (std::thread& submitter : submitters) submitter.join();
  scheduler.drain();
  for (const std::uint64_t session : sessions) {
    const std::vector<int>& order = orders[session];
    ASSERT_EQ(order.size(), static_cast<std::size_t>(kTasks));
    for (int i = 0; i < kTasks; ++i) {
      EXPECT_EQ(order[i], i) << "session " << session;
    }
  }
  const Scheduler::Stats stats = scheduler.stats();
  EXPECT_EQ(stats.executed,
            static_cast<std::uint64_t>(kSessions) * kTasks);
}

}  // namespace
}  // namespace shelley::engine
