// The concurrent multi-session socket server: N clients against one
// SocketServer must each see byte-identical replies to the same command
// sequence against a dedicated single-session stdio daemon; admission
// control must answer over-quota pipelining with structured reject
// replies; per-session shutdown must leave the server serving while
// scope:"server" stops it.
#include "engine/server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/daemon.hpp"
#include "engine/driver.hpp"
#include "paper_sources.hpp"
#include "support/json.hpp"

namespace shelley::engine {
namespace {

/// A long ring of operations so cold verification takes real wall time
/// (the admission test needs the executor busy while requests pipeline).
std::string ring_source(int ops) {
  std::string src = "@sys\nclass Ring:\n";
  for (int i = 0; i < ops; ++i) {
    src += i == 0 ? "    @op_initial_final\n" : "    @op_final\n";
    src += "    def op" + std::to_string(i) + "(self):\n";
    src += "        return [\"op" + std::to_string((i + 1) % ops) + "\"]\n\n";
  }
  return src;
}

/// A blocking NDJSON client over a Unix socket: sends every request line,
/// then reads to EOF and returns the raw reply lines.
std::vector<std::string> socket_session(
    const std::string& socket_path, const std::vector<std::string>& requests) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  EXPECT_LT(socket_path.size(), sizeof(addr.sun_path));
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  // The server may still be between bind and accept; retry briefly.
  int connected = -1;
  for (int attempt = 0; attempt < 100 && connected != 0; ++attempt) {
    connected = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                          sizeof(addr));
    if (connected != 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  EXPECT_EQ(connected, 0) << "cannot connect to " << socket_path;
  std::string payload;
  for (const std::string& request : requests) payload += request + "\n";
  std::size_t sent = 0;
  while (sent < payload.size()) {
    const ssize_t n = ::send(fd, payload.data() + sent,
                             payload.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string received;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) break;
    received.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  std::vector<std::string> lines;
  std::istringstream stream(received);
  std::string line;
  while (std::getline(stream, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::path(::testing::TempDir()) /
           ("server_" + std::string(::testing::UnitTest::GetInstance()
                                        ->current_test_info()
                                        ->name()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    write_file("valve.py", examples::kValveSource);
    write_file("bad.py", examples::kBadSectorSource);
    write_file("sector.py", examples::kSectorSource);
    write_file("good.py", examples::kGoodSectorSource);
    write_file("ring.py", ring_source(60));
  }

  void write_file(const std::string& name, const std::string& text) {
    std::ofstream stream(dir_ / name, std::ios::binary);
    stream << text;
  }

  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  [[nodiscard]] std::string socket_path() const {
    return (dir_ / "shelleyd.sock").string();
  }

  [[nodiscard]] std::string load_request(
      const std::vector<std::string>& files) const {
    JsonWriter writer;
    writer.begin_object();
    writer.key("cmd").value("load");
    writer.key("files").begin_array();
    for (const std::string& file : files) writer.value(path(file));
    writer.end_array();
    writer.end_object();
    return writer.str();
  }

  [[nodiscard]] std::string update_request(const std::string& file,
                                           const std::string& text) const {
    JsonWriter writer;
    writer.begin_object();
    writer.key("cmd").value("update");
    writer.key("file").value(path(file));
    writer.key("text").value(text);
    writer.end_object();
    return writer.str();
  }

  /// Raw reply lines of a dedicated single-session stdio daemon -- the
  /// byte-identity reference every server session is held to.
  [[nodiscard]] std::vector<std::string> stdio_session(
      const CliOptions& defaults,
      const std::vector<std::string>& requests) const {
    std::string input;
    for (const std::string& request : requests) input += request + "\n";
    std::istringstream in(input);
    std::ostringstream out;
    std::ostringstream err;
    EXPECT_EQ(run_daemon(defaults, in, out, err), 0);
    std::vector<std::string> lines;
    std::istringstream stream(out.str());
    std::string line;
    while (std::getline(stream, line)) {
      if (!line.empty()) lines.push_back(line);
    }
    return lines;
  }

  std::filesystem::path dir_;
};

TEST_F(ServerTest, FourConcurrentClientsMatchDedicatedDaemonsByteForByte) {
  CliOptions defaults;
  defaults.jobs = 2;

  std::string edited = examples::kValveSource;
  const auto pos = edited.find("return [\"test\"]");
  ASSERT_NE(pos, std::string::npos);
  edited.replace(pos, 15, "return [\"test\", \"clean\"]");

  // Four distinct sessions -- overlapping files (shared memo hits), edits
  // mid-session, serial and parallel verifies -- all ending in a plain
  // per-session shutdown.  No stats/metrics/trace: those replies are
  // timing-dependent by design.
  const std::vector<std::vector<std::string>> sequences = {
      {R"({"cmd":"version"})", load_request({"valve.py"}),
       R"({"cmd":"verify","jobs":1})", R"({"cmd":"report","jobs":1})",
       R"({"cmd":"shutdown"})"},
      {load_request({"valve.py", "bad.py"}), R"({"cmd":"verify","jobs":1})",
       update_request("valve.py", edited), R"({"cmd":"verify","jobs":1})",
       update_request("valve.py", examples::kValveSource),
       R"({"cmd":"verify","jobs":4})", R"({"cmd":"shutdown"})"},
      {load_request({"sector.py", "good.py"}),
       R"({"cmd":"verify","jobs":4})", R"({"cmd":"report","jobs":1})",
       R"({"cmd":"verify","class":"GoodSector"})", R"({"cmd":"shutdown"})"},
      {load_request({"valve.py", "sector.py", "good.py"}),
       R"({"cmd":"report","jobs":4})", R"({"cmd":"verify","jobs":1})",
       R"({"cmd":"shutdown"})"},
  };

  // References first: each sequence against its own dedicated daemon.
  std::vector<std::vector<std::string>> expected;
  expected.reserve(sequences.size());
  for (const auto& sequence : sequences) {
    expected.push_back(stdio_session(defaults, sequence));
  }

  SocketServer::Options options;
  options.socket_path = socket_path();
  options.max_inflight = 4;
  SocketServer server(defaults, options, /*cache=*/nullptr);
  std::ostringstream err;
  ASSERT_TRUE(server.start(err)) << err.str();
  std::thread serving([&server] { EXPECT_EQ(server.serve(), 0); });

  std::vector<std::vector<std::string>> actual(sequences.size());
  std::vector<std::thread> clients;
  clients.reserve(sequences.size());
  for (std::size_t i = 0; i < sequences.size(); ++i) {
    clients.emplace_back([&, i] {
      actual[i] = socket_session(socket_path(), sequences[i]);
    });
  }
  for (std::thread& client : clients) client.join();
  server.request_stop();
  serving.join();

  for (std::size_t i = 0; i < sequences.size(); ++i) {
    ASSERT_EQ(actual[i].size(), expected[i].size()) << "client " << i;
    for (std::size_t j = 0; j < expected[i].size(); ++j) {
      EXPECT_EQ(actual[i][j], expected[i][j])
          << "client " << i << " reply " << j;
    }
  }
  EXPECT_EQ(server.scheduler().stats().rejected, 0u);
}

TEST_F(ServerTest, PerSessionShutdownLeavesTheServerServing) {
  CliOptions defaults;
  defaults.jobs = 1;
  SocketServer::Options options;
  options.socket_path = socket_path();
  SocketServer server(defaults, options, nullptr);
  std::ostringstream err;
  ASSERT_TRUE(server.start(err)) << err.str();
  std::thread serving([&server] { EXPECT_EQ(server.serve(), 0); });

  const auto first = socket_session(
      socket_path(), {R"({"cmd":"version"})", R"({"cmd":"shutdown"})"});
  ASSERT_EQ(first.size(), 2u);
  EXPECT_TRUE(parse_json(first[1]).at("ok").as_bool());

  // The server is still accepting after the first session ended.
  const auto second = socket_session(
      socket_path(), {load_request({"valve.py"}),
                      R"({"cmd":"verify","jobs":1})",
                      R"({"cmd":"shutdown"})"});
  ASSERT_EQ(second.size(), 3u);
  EXPECT_NE(parse_json(second[1]).at("output").as_string().find("Valve: ok"),
            std::string::npos);

  server.request_stop();
  serving.join();
}

TEST_F(ServerTest, ServerScopeShutdownStopsTheWholeServer) {
  CliOptions defaults;
  defaults.jobs = 1;
  SocketServer::Options options;
  options.socket_path = socket_path();
  SocketServer server(defaults, options, nullptr);
  std::ostringstream err;
  ASSERT_TRUE(server.start(err)) << err.str();
  std::thread serving([&server] { EXPECT_EQ(server.serve(), 0); });

  const auto replies = socket_session(
      socket_path(),
      {R"({"cmd":"version"})", R"({"cmd":"shutdown","scope":"server"})"});
  ASSERT_EQ(replies.size(), 2u);
  EXPECT_TRUE(parse_json(replies[1]).at("ok").as_bool());

  // serve() returns on its own -- no request_stop from the test.
  serving.join();
}

TEST_F(ServerTest, OverQuotaPipeliningGetsStructuredRejectReplies) {
  CliOptions defaults;
  defaults.jobs = 1;
  SocketServer::Options options;
  options.socket_path = socket_path();
  options.max_inflight = 1;
  options.session_queue_depth = 1;
  SocketServer server(defaults, options, nullptr);
  std::ostringstream err;
  ASSERT_TRUE(server.start(err)) << err.str();
  std::thread serving([&server] { EXPECT_EQ(server.serve(), 0); });

  // Load first (and read the reply via a dedicated request), then burst 16
  // pipelined verifies: the first is a slow cold verification of the
  // 60-op ring, so the depth-1 queue is full while the reader dispatches
  // the rest -- most of the burst must be rejected synchronously.
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  const std::string path = socket_path();
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  int connected = -1;
  for (int attempt = 0; attempt < 100 && connected != 0; ++attempt) {
    connected = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                          sizeof(addr));
    if (connected != 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  ASSERT_EQ(connected, 0);
  const auto send_line = [fd](const std::string& line) {
    const std::string framed = line + "\n";
    ASSERT_EQ(::send(fd, framed.data(), framed.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(framed.size()));
  };
  std::string buffer;
  const auto read_line = [fd, &buffer]() -> std::string {
    for (;;) {
      const auto nl = buffer.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffer.substr(0, nl);
        buffer.erase(0, nl + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
      if (n <= 0) return "";
      buffer.append(chunk, static_cast<std::size_t>(n));
    }
  };

  send_line(load_request({"ring.py"}));
  ASSERT_TRUE(parse_json(read_line()).at("ok").as_bool());

  constexpr int kBurst = 16;
  std::string burst;
  for (int i = 0; i < kBurst; ++i) {
    burst += "{\"cmd\":\"verify\",\"jobs\":1}\n";
  }
  ASSERT_EQ(::send(fd, burst.data(), burst.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(burst.size()));

  int accepted = 0;
  int rejected = 0;
  for (int i = 0; i < kBurst; ++i) {
    const std::string line = read_line();
    ASSERT_FALSE(line.empty());
    const JsonValue reply = parse_json(line);
    if (const JsonValue* flag = reply.find("rejected")) {
      EXPECT_TRUE(flag->as_bool());
      EXPECT_FALSE(reply.at("ok").as_bool());
      EXPECT_NE(reply.at("error").as_string().find("queue full"),
                std::string::npos);
      ++rejected;
    } else {
      EXPECT_TRUE(reply.at("ok").as_bool());
      ++accepted;
    }
  }
  EXPECT_EQ(accepted + rejected, kBurst);
  EXPECT_GE(rejected, 1);
  EXPECT_GE(accepted, 1);
  EXPECT_EQ(server.scheduler().stats().rejected,
            static_cast<std::uint64_t>(rejected));

  send_line(R"({"cmd":"shutdown"})");
  EXPECT_TRUE(parse_json(read_line()).at("ok").as_bool());
  ::close(fd);
  server.request_stop();
  serving.join();
}

TEST_F(ServerTest, MalformedRequestIsAnErrorReplyNotACrash) {
  CliOptions defaults;
  SocketServer::Options options;
  options.socket_path = socket_path();
  SocketServer server(defaults, options, nullptr);
  std::ostringstream err;
  ASSERT_TRUE(server.start(err)) << err.str();
  std::thread serving([&server] { EXPECT_EQ(server.serve(), 0); });

  const auto replies = socket_session(
      socket_path(), {"this is not json", R"({"cmd":"nonsense"})",
                      R"({"cmd":"version"})", R"({"cmd":"shutdown"})"});
  ASSERT_EQ(replies.size(), 4u);
  EXPECT_FALSE(parse_json(replies[0]).at("ok").as_bool());
  EXPECT_FALSE(parse_json(replies[1]).at("ok").as_bool());
  EXPECT_TRUE(parse_json(replies[2]).at("ok").as_bool());
  EXPECT_TRUE(parse_json(replies[3]).at("ok").as_bool());

  server.request_stop();
  serving.join();
}

}  // namespace
}  // namespace shelley::engine
