// Differential guard for the refactor: the demand-driven engine must
// produce the same bytes as the direct Verifier pipeline on the same
// sources -- reports, diagnostics, and JSON alike, warm or cold.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "engine/query.hpp"
#include "engine/render.hpp"
#include "engine/workspace.hpp"
#include "paper_sources.hpp"
#include "shelley/report_json.hpp"
#include "shelley/verifier.hpp"

namespace shelley::engine {
namespace {

const std::vector<std::pair<const char*, const char*>>& corpus() {
  static const std::vector<std::pair<const char*, const char*>> sources = {
      {"valve.py", examples::kValveSource},
      {"bad.py", examples::kBadSectorSource},
      {"sector.py", examples::kSectorSource},
      {"good.py", examples::kGoodSectorSource},
  };
  return sources;
}

/// The reference pipeline: a plain Verifier, no memo tiers at all.
std::string direct_pipeline_output(bool json) {
  core::Verifier verifier;
  for (const auto& [path, text] : corpus()) {
    (void)verifier.add_source_recover(text);
  }
  const core::Report report = verifier.verify_all();
  std::ostringstream out;
  if (json) {
    out << core::report_to_json(report, verifier, /*stats=*/false, nullptr)
        << "\n";
  } else {
    out << report.render(verifier.symbols());
    for (const Diagnostic& diag : verifier.diagnostics().diagnostics()) {
      out << diag.message << "\n";
    }
  }
  return out.str();
}

/// The same product through the workspace + query engine.
std::string engine_output(bool json, bool warm_first) {
  Workspace workspace;
  for (const auto& [path, text] : corpus()) {
    workspace.load_source(path, text);
  }
  QueryEngine engine(workspace);
  if (warm_first) {
    // Prime the memo, then rewind: the compared run replays everything.
    (void)engine.verify_all(1);
    workspace.rewind_to_loaded();
  }
  const core::Report report = engine.verify_all(1);
  std::ostringstream out;
  if (json) {
    out << core::report_to_json(report, workspace.verifier(),
                                /*stats=*/false, nullptr)
        << "\n";
  } else {
    out << report.render(workspace.verifier().symbols());
    const auto& diags = workspace.verifier().diagnostics().diagnostics();
    for (std::size_t i = workspace.load_diag_end(); i < diags.size(); ++i) {
      out << diags[i].message << "\n";
    }
  }
  return out.str();
}

TEST(GoldenDiffTest, ColdEngineMatchesDirectPipelineText) {
  EXPECT_EQ(engine_output(false, false), direct_pipeline_output(false));
}

TEST(GoldenDiffTest, WarmEngineMatchesDirectPipelineText) {
  EXPECT_EQ(engine_output(false, true), direct_pipeline_output(false));
}

TEST(GoldenDiffTest, ColdEngineMatchesDirectPipelineJson) {
  EXPECT_EQ(engine_output(true, false), direct_pipeline_output(true));
}

TEST(GoldenDiffTest, WarmEngineMatchesDirectPipelineJson) {
  EXPECT_EQ(engine_output(true, true), direct_pipeline_output(true));
}

TEST(GoldenDiffTest, ParallelEngineMatchesDirectPipeline) {
  Workspace workspace;
  for (const auto& [path, text] : corpus()) {
    workspace.load_source(path, text);
  }
  QueryEngine engine(workspace);
  const core::Report report = engine.verify_all(4);
  std::ostringstream out;
  out << report.render(workspace.verifier().symbols());
  const auto& diags = workspace.verifier().diagnostics().diagnostics();
  for (std::size_t i = workspace.load_diag_end(); i < diags.size(); ++i) {
    out << diags[i].message << "\n";
  }
  EXPECT_EQ(out.str(), direct_pipeline_output(false));
}

}  // namespace
}  // namespace shelley::engine
