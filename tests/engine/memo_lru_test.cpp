// The memo tier's LRU bound: byte accounting, least-recently-used eviction
// order, recency refresh on load, and the separation between evictions
// (capacity pressure, silent) and invalidations (correctness).
#include <gtest/gtest.h>

#include <string>

#include "engine/memo.hpp"
#include "support/hash.hpp"

namespace shelley::engine {
namespace {

support::Digest128 key_of(const std::string& name) {
  return support::hash_bytes(name);
}

TEST(MemoLruTest, DefaultCapacityNeverEvictsSmallWorkloads) {
  MemoTier memo;
  EXPECT_EQ(memo.capacity_bytes(), MemoTier::kDefaultCapacityBytes);
  for (int i = 0; i < 100; ++i) {
    memo.store_artifact(key_of("artifact" + std::to_string(i)),
                        std::string(1024, 'x'));
  }
  const MemoStats stats = memo.stats();
  EXPECT_EQ(stats.stores, 100u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_GT(stats.bytes, 100u * 1024u);
}

TEST(MemoLruTest, BytesTrackStoresAndInvalidations) {
  MemoTier memo;
  memo.store_artifact(key_of("a"), std::string(500, 'a'));
  const std::uint64_t after_one = memo.stats().bytes;
  EXPECT_GE(after_one, 500u);

  memo.store_artifact(key_of("b"), std::string(500, 'b'));
  EXPECT_EQ(memo.stats().bytes, 2 * after_one);

  // Re-storing under the same key replaces, never double-counts.
  memo.store_artifact(key_of("a"), std::string(500, 'A'));
  EXPECT_EQ(memo.stats().bytes, 2 * after_one);

  EXPECT_EQ(memo.invalidate(key_of("a")), 1u);
  EXPECT_EQ(memo.stats().bytes, after_one);
  EXPECT_EQ(memo.stats().invalidations, 1u);
  EXPECT_EQ(memo.stats().evictions, 0u);

  memo.clear();
  EXPECT_EQ(memo.stats().bytes, 0u);
}

TEST(MemoLruTest, EvictsLeastRecentlyUsedFirst) {
  MemoTier memo;
  memo.set_capacity_bytes(3 * (1024 + 200));  // room for ~3 entries
  memo.store_artifact(key_of("first"), std::string(1024, '1'));
  memo.store_artifact(key_of("second"), std::string(1024, '2'));
  memo.store_artifact(key_of("third"), std::string(1024, '3'));
  EXPECT_EQ(memo.stats().evictions, 0u);

  // Touch "first" so "second" becomes the coldest entry.
  EXPECT_TRUE(memo.load_artifact(key_of("first")).has_value());

  memo.store_artifact(key_of("fourth"), std::string(1024, '4'));
  EXPECT_EQ(memo.stats().evictions, 1u);
  EXPECT_FALSE(memo.load_artifact(key_of("second")).has_value());
  EXPECT_TRUE(memo.load_artifact(key_of("first")).has_value());
  EXPECT_TRUE(memo.load_artifact(key_of("third")).has_value());
  EXPECT_TRUE(memo.load_artifact(key_of("fourth")).has_value());
}

TEST(MemoLruTest, ShrinkingCapacityEvictsImmediately) {
  MemoTier memo;
  for (int i = 0; i < 10; ++i) {
    memo.store_artifact(key_of("entry" + std::to_string(i)),
                        std::string(1024, 'e'));
  }
  EXPECT_EQ(memo.stats().evictions, 0u);
  memo.set_capacity_bytes(2048);
  const MemoStats stats = memo.stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.bytes, 2048u);
  // The most recently stored entry is the survivor.
  EXPECT_TRUE(memo.load_artifact(key_of("entry9")).has_value());
}

TEST(MemoLruTest, EvictionSpansAllThreeKinds) {
  MemoTier memo;
  core::CachedVerdict verdict;
  verdict.class_name = "Valve";
  memo.store_verdict(key_of("verdict"), verdict);
  memo.store_dfa_bytes(key_of("dfa"), std::string(64, 'd'));
  memo.store_artifact(key_of("artifact"), std::string(64, 'a'));

  memo.set_capacity_bytes(0);
  const MemoStats stats = memo.stats();
  EXPECT_EQ(stats.evictions, 3u);
  EXPECT_EQ(stats.bytes, 0u);
  EXPECT_FALSE(memo.load_verdict(key_of("verdict"), "Valve").has_value());
  EXPECT_FALSE(memo.load_dfa_bytes(key_of("dfa")).has_value());
  EXPECT_FALSE(memo.load_artifact(key_of("artifact")).has_value());
}

TEST(MemoLruTest, LoadRefreshesVerdictRecency) {
  MemoTier memo;
  core::CachedVerdict cold;
  cold.class_name = "Cold";
  core::CachedVerdict warm;
  warm.class_name = "Warm";
  memo.store_verdict(key_of("cold"), cold);
  memo.store_verdict(key_of("warm"), warm);
  // Keep "cold" actually cold; make room for exactly one more entry.
  EXPECT_TRUE(memo.load_verdict(key_of("warm"), "Warm").has_value());
  memo.set_capacity_bytes(memo.stats().bytes);

  core::CachedVerdict next;
  next.class_name = "Next";
  memo.store_verdict(key_of("next"), next);
  EXPECT_FALSE(memo.load_verdict(key_of("cold"), "Cold").has_value());
  EXPECT_TRUE(memo.load_verdict(key_of("warm"), "Warm").has_value());
}

TEST(MemoLruTest, VerdictClassCollisionStillMisses) {
  // The LRU must not weaken the foreign-verdict rule: a class-name mismatch
  // is a miss, and the mismatching probe must not be treated as a use.
  MemoTier memo;
  core::CachedVerdict verdict;
  verdict.class_name = "Valve";
  memo.store_verdict(key_of("k"), verdict);
  EXPECT_FALSE(memo.load_verdict(key_of("k"), "Pump").has_value());
  EXPECT_TRUE(memo.load_verdict(key_of("k"), "Valve").has_value());
  const MemoStats stats = memo.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
}

TEST(MemoLruTest, HitMissStoreCountersKeepTheirMeaning) {
  MemoTier memo;
  memo.set_capacity_bytes(1024 + 512);
  memo.store_artifact(key_of("x"), std::string(1024, 'x'));
  memo.store_artifact(key_of("y"), std::string(1024, 'y'));  // evicts x
  const MemoStats stats = memo.stats();
  EXPECT_EQ(stats.stores, 2u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.invalidations, 0u);
  // Loading the evicted key is an ordinary miss.
  EXPECT_FALSE(memo.load_artifact(key_of("x")).has_value());
  EXPECT_EQ(memo.stats().misses, 1u);
}

}  // namespace
}  // namespace shelley::engine
