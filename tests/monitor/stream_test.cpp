// StreamChecker (monitor/stream.hpp): NDJSON and SMEV ingestion, partial
// chunk carrying, shard-count determinism, violation-report contents,
// latching, the deferred ingest_event/flush path, report capping with
// dropped accounting, and the adversarial binary surface (bad magic,
// truncation, out-of-range records check nothing).
#include "monitor/stream.hpp"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "fsm/ops.hpp"
#include "fsm/table.hpp"
#include "paper_sources.hpp"
#include "shelley/automata.hpp"
#include "shelley/spec.hpp"
#include "upy/parser.hpp"

namespace shelley::monitor {
namespace {

class StreamTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const upy::Module module = upy::parse_module(examples::kValveSource);
    DiagnosticEngine diagnostics;
    spec_ = core::extract_class_spec(module.classes.at(0), diagnostics);
    const fsm::Dfa dfa =
        fsm::minimize(fsm::determinize(core::usage_nfa(spec_, symbols_)));
    table_ = fsm::CompiledDfa::compile(dfa, symbols_);
  }

  StreamChecker make_checker(std::size_t shards = 1,
                             std::size_t max_violations = 1024) {
    StreamChecker::Options options;
    options.shards = shards;
    options.max_violations = max_violations;
    StreamChecker checker(table_, options);
    std::unordered_map<std::string, SourceLoc> locations;
    for (const core::Operation& op : spec_.operations) {
      locations.emplace(op.name, op.loc);
    }
    checker.set_source_locations(std::move(locations));
    return checker;
  }

  core::ClassSpec spec_;
  SymbolTable symbols_;
  fsm::CompiledDfa table_;
};

std::string line(const char* device, const char* op) {
  return std::string("{\"device\":\"") + device + "\",\"op\":\"" + op +
         "\"}\n";
}

TEST_F(StreamTest, NdjsonCleanStream) {
  StreamChecker checker = make_checker();
  const std::string chunk = line("v1", "test") + line("v1", "open") +
                            line("v2", "test") + line("v1", "close") +
                            line("v2", "clean");
  EXPECT_EQ(checker.ingest_ndjson(chunk), chunk.size());
  EXPECT_EQ(checker.stats().events, 5u);
  EXPECT_EQ(checker.stats().ok, 5u);
  EXPECT_EQ(checker.stats().violations, 0u);
  EXPECT_EQ(checker.stats().devices, 2u);
  EXPECT_EQ(checker.completed_devices(), 2u);
  EXPECT_TRUE(checker.violations().empty());
}

TEST_F(StreamTest, PartialTrailingLineIsNotConsumed) {
  StreamChecker checker = make_checker();
  const std::string full = line("v1", "test");
  const std::string chunk = full + "{\"device\":\"v1\",\"op\":\"op";
  EXPECT_EQ(checker.ingest_ndjson(chunk), full.size());
  EXPECT_EQ(checker.stats().events, 1u);
}

TEST_F(StreamTest, ViolationReportCarriesDiagnostics) {
  StreamChecker checker = make_checker();
  checker.ingest_ndjson(line("v1", "test") + line("v1", "close") +
                        line("v1", "test"));
  EXPECT_EQ(checker.stats().violations, 2u);  // latched repeat counts
  ASSERT_EQ(checker.violations().size(), 1u);  // but reports once
  const Violation& report = checker.violations()[0];
  EXPECT_EQ(report.event_index, 1u);
  EXPECT_EQ(report.device_event_index, 1u);
  EXPECT_EQ(report.device, "v1");
  EXPECT_EQ(report.operation, "close");
  EXPECT_TRUE(report.loc.known());  // close is a declared operation
  EXPECT_EQ(report.allowed,
            (std::vector<std::string>{"open", "clean"}));
  EXPECT_EQ(checker.violated_devices(), 1u);
  EXPECT_EQ(checker.completed_devices(), 0u);
}

TEST_F(StreamTest, UnknownOperationViolatesWithoutMoving) {
  StreamChecker checker = make_checker();
  checker.ingest_ndjson(line("v1", "explode"));
  ASSERT_EQ(checker.violations().size(), 1u);
  const Violation& report = checker.violations()[0];
  EXPECT_EQ(report.operation, "explode");
  EXPECT_FALSE(report.loc.known());  // not a declared operation
  // The allowed set is that of the *unmoved* state: still just "test".
  EXPECT_EQ(report.allowed, (std::vector<std::string>{"test"}));
}

TEST_F(StreamTest, MalformedLinesAreCountedNotFatal) {
  StreamChecker checker = make_checker();
  const std::string chunk = line("v1", "test") + "not json\n" +
                            "{\"device\":\"v1\"}\n" +
                            "{\"device\":3,\"op\":\"test\"}\n" + "\n" +
                            line("v1", "open");
  EXPECT_EQ(checker.ingest_ndjson(chunk), chunk.size());
  EXPECT_EQ(checker.stats().events, 2u);
  EXPECT_EQ(checker.stats().malformed, 3u);  // blank line is skipped silently
  EXPECT_EQ(checker.stats().ok, 2u);
}

TEST_F(StreamTest, IngestEventDefersUntilFlush) {
  StreamChecker checker = make_checker();
  checker.ingest_event("v1", "test");
  checker.ingest_event("v1", "open");
  EXPECT_EQ(checker.stats().events, 0u);  // batched, not yet checked
  checker.flush();
  EXPECT_EQ(checker.stats().events, 2u);
  EXPECT_EQ(checker.stats().ok, 2u);
}

TEST_F(StreamTest, BinaryFrameMatchesNdjson) {
  const std::vector<std::string> devices = {"v1", "v2"};
  const std::vector<std::string> ops = {"test", "open", "close", "clean"};
  const std::vector<std::pair<std::uint32_t, std::uint32_t>> events = {
      {0, 0}, {0, 1}, {1, 0}, {0, 2}, {1, 2}};  // v2 close: violation
  const std::string frame = encode_binary_frame(devices, ops, events);

  StreamChecker binary = make_checker();
  EXPECT_EQ(ingest_binary_stream(binary, frame), frame.size());

  StreamChecker ndjson = make_checker();
  ndjson.ingest_ndjson(line("v1", "test") + line("v1", "open") +
                       line("v2", "test") + line("v1", "close") +
                       line("v2", "close"));

  EXPECT_EQ(binary.stats().events, ndjson.stats().events);
  EXPECT_EQ(binary.stats().ok, ndjson.stats().ok);
  EXPECT_EQ(binary.stats().violations, ndjson.stats().violations);
  ASSERT_EQ(binary.violations().size(), ndjson.violations().size());
  for (std::size_t i = 0; i < binary.violations().size(); ++i) {
    EXPECT_EQ(binary.violations()[i].event_index,
              ndjson.violations()[i].event_index);
    EXPECT_EQ(binary.violations()[i].device, ndjson.violations()[i].device);
    EXPECT_EQ(binary.violations()[i].operation,
              ndjson.violations()[i].operation);
    EXPECT_EQ(binary.violations()[i].allowed, ndjson.violations()[i].allowed);
  }
}

TEST_F(StreamTest, PartialBinaryFrameIsNotConsumed) {
  const std::string frame = encode_binary_frame(
      {"v1"}, {"test"}, {{0, 0}});
  StreamChecker checker = make_checker();
  // Header only: nothing consumed.
  EXPECT_EQ(ingest_binary_stream(checker, frame.substr(0, 12)), 0u);
  // Header + half the body: still nothing.
  EXPECT_EQ(ingest_binary_stream(checker, frame.substr(0, frame.size() - 1)),
            0u);
  EXPECT_EQ(checker.stats().events, 0u);
  // Whole frame plus the prefix of a second: exactly one frame consumed.
  const std::string two = frame + frame.substr(0, 7);
  EXPECT_EQ(ingest_binary_stream(checker, two), frame.size());
  EXPECT_EQ(checker.stats().events, 1u);
}

TEST_F(StreamTest, BadMagicThrows) {
  std::string frame = encode_binary_frame({"v1"}, {"test"}, {{0, 0}});
  frame[0] = 'X';
  StreamChecker checker = make_checker();
  EXPECT_THROW((void)ingest_binary_stream(checker, frame),
               support::BinaryFormatError);
}

TEST_F(StreamTest, OutOfRangeRecordChecksNothing) {
  // An event referencing a device index past the frame's table must reject
  // the whole frame atomically: no event of the frame is checked.
  std::string frame = encode_binary_frame(
      {"v1"}, {"test"}, {{0, 0}, {1, 0}});
  StreamChecker checker = make_checker();
  EXPECT_THROW(checker.ingest_binary(frame.substr(12)),
               support::BinaryFormatError);
  EXPECT_EQ(checker.stats().events, 0u);
  EXPECT_EQ(checker.stats().ok, 0u);
  // The checker remains usable after the reject.
  checker.ingest_ndjson(line("v1", "test"));
  EXPECT_EQ(checker.stats().events, 1u);
}

TEST_F(StreamTest, TruncatedBodyThrows) {
  const std::string frame = encode_binary_frame({"v1"}, {"test"}, {{0, 0}});
  const std::string body = frame.substr(12);
  StreamChecker checker = make_checker();
  for (std::size_t length = 0; length < body.size(); ++length) {
    EXPECT_THROW(checker.ingest_binary(body.substr(0, length)),
                 support::BinaryFormatError);
  }
}

TEST_F(StreamTest, ShardCountDoesNotChangeResults) {
  // A stream over many devices with interleaved violations: every shard
  // count must agree on counters, per-device verdicts, and the exact
  // report sequence.
  std::string chunk;
  for (int i = 0; i < 40; ++i) {
    const std::string device = "dev" + std::to_string(i % 10);
    switch (i % 4) {
      case 0: chunk += line(device.c_str(), "test"); break;
      case 1: chunk += line(device.c_str(), "open"); break;
      case 2: chunk += line(device.c_str(), "close"); break;
      case 3: chunk += line(device.c_str(), i % 8 == 3 ? "close" : "test");
    }
  }
  StreamChecker one = make_checker(1);
  one.ingest_ndjson(chunk);
  for (const std::size_t shards : {2u, 3u, 7u, 16u}) {
    StreamChecker many = make_checker(shards);
    many.ingest_ndjson(chunk);
    EXPECT_EQ(many.shard_count(), shards);
    EXPECT_EQ(many.stats().events, one.stats().events);
    EXPECT_EQ(many.stats().ok, one.stats().ok);
    EXPECT_EQ(many.stats().violations, one.stats().violations);
    EXPECT_EQ(many.completed_devices(), one.completed_devices());
    EXPECT_EQ(many.violated_devices(), one.violated_devices());
    EXPECT_EQ(many.incomplete_devices(), one.incomplete_devices());
    ASSERT_EQ(many.violations().size(), one.violations().size());
    for (std::size_t i = 0; i < one.violations().size(); ++i) {
      EXPECT_EQ(many.violations()[i].event_index,
                one.violations()[i].event_index);
      EXPECT_EQ(many.violations()[i].device, one.violations()[i].device);
      EXPECT_EQ(many.violations()[i].operation,
                one.violations()[i].operation);
    }
  }
}

TEST_F(StreamTest, MaxViolationsCapsReportsAndCountsDrops) {
  // 8 devices all violate immediately; only the first 3 reports (in global
  // event order) are retained, whatever the shard count.
  std::string chunk;
  for (int i = 0; i < 8; ++i) {
    chunk += line(("d" + std::to_string(i)).c_str(), "close");
  }
  for (const std::size_t shards : {1u, 5u}) {
    StreamChecker checker = make_checker(shards, 3);
    checker.ingest_ndjson(chunk);
    EXPECT_EQ(checker.stats().violations, 8u);
    EXPECT_EQ(checker.stats().violations_dropped, 5u);
    ASSERT_EQ(checker.violations().size(), 3u);
    EXPECT_EQ(checker.violations()[0].device, "d0");
    EXPECT_EQ(checker.violations()[1].device, "d1");
    EXPECT_EQ(checker.violations()[2].device, "d2");
  }
}

TEST_F(StreamTest, DevicesPersistAcrossBatches) {
  StreamChecker checker = make_checker(4);
  checker.ingest_ndjson(line("v1", "test"));
  checker.ingest_ndjson(line("v1", "open"));
  checker.ingest_ndjson(line("v1", "close"));
  EXPECT_EQ(checker.stats().events, 3u);
  EXPECT_EQ(checker.stats().ok, 3u);
  EXPECT_EQ(checker.completed_devices(), 1u);
  checker.ingest_ndjson(line("v1", "close"));  // close twice: violation
  EXPECT_EQ(checker.stats().violations, 1u);
}

}  // namespace
}  // namespace shelley::monitor
