// The randomized differential suite pinning the compiled monitoring path:
// over seeded generated class specs and seeded event traces,
//   * core::Monitor (CompiledDfa walk) must produce verdict sequences
//     byte-identical to a reference reimplementation of the legacy
//     DFA-walk monitor,
//   * non-violating prefixes must agree with direct fsm::Dfa simulation
//     (completed() iff the DFA accepts the prefix),
//   * a Monitor rebuilt from serialized compiled-table bytes must agree
//     event for event,
//   * StreamChecker must agree with a fleet of per-device Monitors on
//     every counter.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "fsm/ops.hpp"
#include "fsm/table.hpp"
#include "monitor/stream.hpp"
#include "shelley/automata.hpp"
#include "shelley/monitor.hpp"
#include "shelley/spec.hpp"
#include "upy/parser.hpp"

namespace shelley::core {
namespace {

/// A seeded random @sys class: `ops` operations, each exiting to 1-3
/// random targets via if/elif branches; op0 is initial, a random nonempty
/// subset is final.  Always a well-formed parseable spec.
std::string random_class_source(std::mt19937_64& rng, std::size_t ops) {
  std::string out = "@sys\nclass Gen:\n";
  for (std::size_t i = 0; i < ops; ++i) {
    const bool final_op = i == ops - 1 || rng() % 3 == 0;
    if (i == 0) {
      out += final_op ? "    @op_initial_final\n" : "    @op_initial\n";
    } else {
      out += final_op ? "    @op_final\n" : "    @op\n";
    }
    out += "    def op" + std::to_string(i) + "(self):\n";
    const std::size_t exits = 1 + rng() % 3;
    if (exits == 1) {
      out += "        return [\"op" + std::to_string(rng() % ops) + "\"]\n";
    } else {
      out += "        if x:\n";
      for (std::size_t e = 0; e + 1 < exits; ++e) {
        out += "            return [\"op" + std::to_string(rng() % ops) +
               "\"]\n";
        if (e + 2 < exits) out += "        elif y:\n";
      }
      out += "        else:\n";
      out += "            return [\"op" + std::to_string(rng() % ops) +
             "\"]\n";
    }
  }
  return out;
}

/// The legacy monitor semantics, reimplemented directly on the minimal
/// DFA: latch after any violation; unknown symbols and symbols outside
/// the alphabet violate without moving; entering a non-live state
/// violates (and moves); otherwise kOk when a final operation is still
/// reachable, kDoomed when not.
class ReferenceMonitor {
 public:
  ReferenceMonitor(const fsm::Dfa& dfa, const SymbolTable& table)
      : dfa_(&dfa), table_(&table), state_(dfa.initial()) {
    live_ = live_states(dfa);
  }

  Verdict feed(std::string_view operation) {
    if (violated_) return Verdict::kViolation;
    const std::optional<Symbol> symbol = table_->lookup(operation);
    if (!symbol.has_value()) return violate();
    const std::optional<std::size_t> letter = dfa_->letter_index(*symbol);
    if (!letter.has_value()) return violate();
    const fsm::StateId next = dfa_->transition(state_, *letter);
    if (!live_[next]) {
      state_ = next;
      return violate();
    }
    state_ = next;
    return live_[state_] ? Verdict::kOk : Verdict::kDoomed;
  }

  [[nodiscard]] bool completed() const {
    return !violated_ && dfa_->is_accepting(state_);
  }
  [[nodiscard]] bool can_complete() const {
    return !violated_ && live_[state_];
  }
  [[nodiscard]] bool violated() const { return violated_; }

 private:
  Verdict violate() {
    violated_ = true;
    return Verdict::kViolation;
  }

  /// Backward reachability: states from which an accepting state is
  /// reachable (including accepting states themselves).
  static std::vector<bool> live_states(const fsm::Dfa& dfa) {
    std::vector<bool> live(dfa.state_count(), false);
    bool changed = true;
    for (fsm::StateId s = 0; s < dfa.state_count(); ++s) {
      live[s] = dfa.is_accepting(s);
    }
    while (changed) {
      changed = false;
      for (fsm::StateId s = 0; s < dfa.state_count(); ++s) {
        if (live[s]) continue;
        for (std::size_t l = 0; l < dfa.alphabet().size(); ++l) {
          if (live[dfa.transition(s, l)]) {
            live[s] = true;
            changed = true;
            break;
          }
        }
      }
    }
    return live;
  }

  const fsm::Dfa* dfa_;
  const SymbolTable* table_;
  fsm::StateId state_;
  std::vector<bool> live_;
  bool violated_ = false;
};

TEST(MonitorDifferential, CompiledVerdictsMatchLegacyWalkOnRandomTraces) {
  std::mt19937_64 rng(2026);
  for (int spec_round = 0; spec_round < 25; ++spec_round) {
    const std::size_t ops = 2 + rng() % 6;
    const std::string source = random_class_source(rng, ops);
    const upy::Module module = upy::parse_module(source);
    DiagnosticEngine diagnostics;
    const ClassSpec spec =
        extract_class_spec(module.classes.at(0), diagnostics);
    SymbolTable symbols;
    const fsm::Dfa dfa =
        fsm::minimize(fsm::determinize(usage_nfa(spec, symbols)));

    // Event pool: every declared op plus two names outside the alphabet.
    std::vector<std::string> pool;
    for (std::size_t i = 0; i < ops; ++i) {
      pool.push_back("op" + std::to_string(i));
    }
    pool.push_back("bogus");
    pool.push_back("op" + std::to_string(ops + 7));

    for (int trace = 0; trace < 20; ++trace) {
      Monitor compiled(symbols, dfa);
      ReferenceMonitor reference(dfa, symbols);
      // The serialized round trip must walk identically too.
      SymbolTable fresh;
      const fsm::CompiledDfa decoded = fsm::CompiledDfa::from_bytes(
          compiled.compiled().to_bytes(), fresh);

      std::uint32_t decoded_state = decoded.initial();
      bool decoded_violated = false;
      const std::size_t length = 1 + rng() % 24;
      for (std::size_t i = 0; i < length; ++i) {
        const std::string& event = pool[rng() % pool.size()];
        const Verdict expected = reference.feed(event);
        EXPECT_EQ(compiled.feed(event), expected)
            << "spec " << spec_round << " trace " << trace << " event "
            << event << "\n" << source;
        EXPECT_EQ(compiled.violated(), reference.violated());
        EXPECT_EQ(compiled.completed(), reference.completed());
        EXPECT_EQ(compiled.can_complete(), reference.can_complete());

        if (!decoded_violated) {
          const fsm::CompiledDfa::Letter letter = decoded.letter_of(event);
          if (letter == fsm::CompiledDfa::kNoLetter) {
            decoded_violated = true;
          } else {
            decoded_state = decoded.step(decoded_state, letter);
            decoded_violated = !decoded.live(decoded_state);
          }
          EXPECT_EQ(decoded_violated, expected == Verdict::kViolation);
        }
      }
    }
  }
}

TEST(MonitorDifferential, NonViolatingPrefixesAgreeWithDfaSimulation) {
  std::mt19937_64 rng(4177);
  for (int spec_round = 0; spec_round < 15; ++spec_round) {
    const std::string source = random_class_source(rng, 2 + rng() % 5);
    const upy::Module module = upy::parse_module(source);
    DiagnosticEngine diagnostics;
    const ClassSpec spec =
        extract_class_spec(module.classes.at(0), diagnostics);
    SymbolTable symbols;
    const fsm::Dfa dfa =
        fsm::minimize(fsm::determinize(usage_nfa(spec, symbols)));
    for (int trace = 0; trace < 20; ++trace) {
      Monitor monitor(symbols, dfa);
      Word word;
      for (int i = 0; i < 16; ++i) {
        const std::string event =
            "op" + std::to_string(rng() % spec.operations.size());
        if (monitor.feed(event) == Verdict::kViolation) break;
        word.push_back(*symbols.lookup(event));
        EXPECT_EQ(monitor.completed(), dfa.accepts(word));
      }
    }
  }
}

TEST(MonitorDifferential, StreamCheckerAgreesWithMonitorFleet) {
  std::mt19937_64 rng(90125);
  for (int spec_round = 0; spec_round < 10; ++spec_round) {
    const std::size_t ops = 2 + rng() % 5;
    const std::string source = random_class_source(rng, ops);
    const upy::Module module = upy::parse_module(source);
    DiagnosticEngine diagnostics;
    const ClassSpec spec =
        extract_class_spec(module.classes.at(0), diagnostics);
    SymbolTable symbols;
    const fsm::Dfa dfa =
        fsm::minimize(fsm::determinize(usage_nfa(spec, symbols)));
    const fsm::CompiledDfa table = fsm::CompiledDfa::compile(dfa, symbols);

    constexpr std::size_t kDevices = 12;
    monitor::StreamChecker::Options options;
    options.shards = 1 + spec_round % 5;
    monitor::StreamChecker checker(table, options);
    std::vector<Monitor> fleet;
    fleet.reserve(kDevices);
    for (std::size_t d = 0; d < kDevices; ++d) {
      fleet.emplace_back(symbols, dfa);
    }

    std::uint64_t expected_ok = 0;
    std::uint64_t expected_violations = 0;
    std::string chunk;
    for (int i = 0; i < 400; ++i) {
      const std::size_t device = rng() % kDevices;
      const std::string event =
          rng() % 8 == 0 ? "bogus"
                         : "op" + std::to_string(rng() % (ops + 1));
      chunk += "{\"device\":\"d" + std::to_string(device) +
               "\",\"op\":\"" + event + "\"}\n";
      if (fleet[device].feed(event) == Verdict::kViolation) {
        ++expected_violations;
      } else {
        ++expected_ok;
      }
      if (i % 37 == 0) {  // uneven batch boundaries
        checker.ingest_ndjson(chunk);
        chunk.clear();
      }
    }
    checker.ingest_ndjson(chunk);

    EXPECT_EQ(checker.stats().events, 400u);
    EXPECT_EQ(checker.stats().ok, expected_ok);
    EXPECT_EQ(checker.stats().violations, expected_violations);
    std::uint64_t completed = 0, violated = 0;
    for (const Monitor& monitor : fleet) {
      if (monitor.violated()) {
        ++violated;
      } else if (monitor.completed()) {
        ++completed;
      }
    }
    EXPECT_EQ(checker.violated_devices(), violated);
    EXPECT_EQ(checker.completed_devices(), completed);
  }
}

}  // namespace
}  // namespace shelley::core
