// TraceContext propagation: spans carry explicit span/parent/request
// identity in the export, ScopedContext installs and restores the
// thread-local context, and ThreadPool::submit carries the submitting
// thread's context onto workers so cross-thread span trees stay connected.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "support/json.hpp"
#include "support/metrics.hpp"
#include "support/thread_pool.hpp"
#include "support/trace.hpp"

namespace shelley::support::trace {
namespace {

class TraceContextTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(true);
    reset();
  }
  void TearDown() override {
    set_enabled(false);
    reset();
    metrics::set_enabled(false);
    metrics::reset();
  }
};

struct ExportedEvent {
  std::string name;
  std::uint64_t span = 0;
  std::uint64_t parent = 0;
  std::uint64_t request = 0;
};

std::vector<ExportedEvent> exported_spans() {
  std::vector<ExportedEvent> out;
  const JsonValue doc = parse_json(to_chrome_json());
  for (const JsonValue& event : doc.at("traceEvents").as_array()) {
    if (event.at("ph").as_string() != "X") continue;
    ExportedEvent exported;
    exported.name = event.at("name").as_string();
    const JsonValue& args = event.at("args");
    exported.span =
        static_cast<std::uint64_t>(args.at("span_id").as_number());
    if (const JsonValue* parent = args.find("parent")) {
      exported.parent = static_cast<std::uint64_t>(parent->as_number());
    }
    if (const JsonValue* request = args.find("request")) {
      exported.request = static_cast<std::uint64_t>(request->as_number());
    }
    out.push_back(std::move(exported));
  }
  return out;
}

TEST_F(TraceContextTest, NestedSpansRecordExplicitParents) {
  {
    Span outer("outer");
    { Span inner("inner"); }
  }
  const auto spans = exported_spans();
  ASSERT_EQ(spans.size(), 2u);
  std::uint64_t outer_id = 0;
  for (const ExportedEvent& span : spans) {
    if (span.name == "outer") outer_id = span.span;
  }
  ASSERT_NE(outer_id, 0u);
  for (const ExportedEvent& span : spans) {
    if (span.name == "inner") EXPECT_EQ(span.parent, outer_id);
    if (span.name == "outer") EXPECT_EQ(span.parent, 0u);
  }
}

TEST_F(TraceContextTest, ScopedContextInstallsAndRestores) {
  const TraceContext before = current_context();
  EXPECT_EQ(before.request_id, 0u);
  {
    const ScopedContext scoped(TraceContext{17, 0});
    EXPECT_EQ(current_context().request_id, 17u);
    Span span("inside");
    // The open span becomes the thread's parent-to-be.
    EXPECT_EQ(current_context().parent_span, span.span_id());
  }
  const TraceContext after = current_context();
  EXPECT_EQ(after.request_id, before.request_id);
  EXPECT_EQ(after.parent_span, before.parent_span);
}

TEST_F(TraceContextTest, SpansInheritTheRequestId) {
  {
    const ScopedContext scoped(TraceContext{99, 0});
    Span root("root");
    { Span child("child"); }
    instant("marker");
  }
  const JsonValue doc = parse_json(to_chrome_json());
  std::size_t tagged = 0;
  for (const JsonValue& event : doc.at("traceEvents").as_array()) {
    const std::string& ph = event.at("ph").as_string();
    if (ph != "X" && ph != "i") continue;
    EXPECT_EQ(event.at("args").at("request").as_number(), 99.0)
        << event.at("name").as_string();
    ++tagged;
  }
  EXPECT_EQ(tagged, 3u);
}

TEST_F(TraceContextTest, SubmitCarriesContextOntoWorkers) {
  std::uint64_t root_id = 0;
  {
    const ScopedContext request(TraceContext{7, 0});
    Span root("request.root");
    root_id = root.span_id();
    ThreadPool pool(2);
    for (int i = 0; i < 8; ++i) {
      pool.submit([] { Span worker("worker.task"); });
    }
    pool.wait();
  }
  const auto spans = exported_spans();
  std::size_t workers = 0;
  for (const ExportedEvent& span : spans) {
    if (span.name != "worker.task") continue;
    ++workers;
    // Parented under the submitting span, tagged with its request --
    // across threads.
    EXPECT_EQ(span.parent, root_id);
    EXPECT_EQ(span.request, 7u);
  }
  EXPECT_EQ(workers, 8u);
}

TEST_F(TraceContextTest, ParallelForSpansStayConnected) {
  std::uint64_t root_id = 0;
  {
    const ScopedContext request(TraceContext{3, 0});
    Span root("fanout.root");
    root_id = root.span_id();
    parallel_for(16, 4, [](std::size_t) { Span leaf("fanout.leaf"); });
  }
  const auto spans = exported_spans();
  std::map<std::uint64_t, const ExportedEvent*> by_id;
  for (const ExportedEvent& span : spans) by_id[span.span] = &span;
  std::size_t leaves = 0;
  for (const ExportedEvent& span : spans) {
    if (span.name != "fanout.leaf") continue;
    ++leaves;
    EXPECT_EQ(span.request, 3u);
    // Walk to the root: every leaf must reach fanout.root through resolved
    // parent links (a broken link would mean an orphan subtree).
    std::uint64_t cursor = span.span;
    std::set<std::uint64_t> seen;
    while (cursor != root_id) {
      ASSERT_TRUE(seen.insert(cursor).second) << "parent cycle";
      const auto it = by_id.find(cursor);
      ASSERT_NE(it, by_id.end()) << "unresolved parent link";
      cursor = it->second->parent;
      ASSERT_NE(cursor, 0u) << "orphaned leaf " << span.span;
    }
  }
  EXPECT_EQ(leaves, 16u);
}

TEST_F(TraceContextTest, QueueWaitLandsInTheHistogram) {
  metrics::set_enabled(true);
  metrics::reset();
  {
    ThreadPool pool(1);
    for (int i = 0; i < 10; ++i) {
      pool.submit([] {});
    }
    pool.wait();
  }
  bool found = false;
  for (const auto& [name, snap] : metrics::histogram_snapshot()) {
    if (name == "pool.queue_wait_us") {
      found = true;
      EXPECT_EQ(snap.count, 10u);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(TraceContextTest, ResetRestartsTheSpanIdWell) {
  { Span first("first"); }
  reset();
  { Span second("second"); }
  const auto spans = exported_spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "second");
  EXPECT_EQ(spans[0].span, 1u);
}

}  // namespace
}  // namespace shelley::support::trace
