// The metrics registry: counters and distributions aggregate correctly
// under concurrent recording, the thread-local stats sink attributes
// automata sizes to the class being verified, and the disabled fast path
// records nothing.
#include "support/metrics.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace shelley::support::metrics {
namespace {

class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(true);
    reset();
  }
  void TearDown() override {
    set_enabled(false);
    reset();
  }
};

TEST_F(MetricsTest, CounterAggregatesAcrossThreads) {
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  Counter& series = counter("test.counter");
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&series] {
      for (int i = 0; i < kIncrements; ++i) series.add();
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(series.value(),
            static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST_F(MetricsTest, DistributionTracksCountSumMinMax) {
  Distribution& series = distribution("test.dist");
  series.record(5);
  series.record(1);
  series.record(9);
  const Distribution::Snapshot snap = series.snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_EQ(snap.sum, 15u);
  EXPECT_EQ(snap.min, 1u);
  EXPECT_EQ(snap.max, 9u);
}

TEST_F(MetricsTest, EmptyDistributionSnapshotsToZeros) {
  const Distribution::Snapshot snap = distribution("test.empty").snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.sum, 0u);
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, 0u);
}

TEST_F(MetricsTest, DistributionAggregatesAcrossThreads) {
  constexpr int kThreads = 8;
  constexpr int kRecords = 5000;
  Distribution& series = distribution("test.dist.mt");
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&series, t] {
      for (int i = 0; i < kRecords; ++i) {
        series.record(static_cast<std::uint64_t>(t + 1));
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  const Distribution::Snapshot snap = series.snapshot();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads) * kRecords);
  EXPECT_EQ(snap.min, 1u);
  EXPECT_EQ(snap.max, static_cast<std::uint64_t>(kThreads));
}

TEST_F(MetricsTest, RecordHelpersFeedBothSinkAndRegistry) {
  AutomataStats stats;
  {
    ScopedSink guard(&stats);
    record_nfa_states(12);
    record_determinize(12, 30);
    record_minimize(30, 7);
    record_product_pairs(100);
    record_product_pairs(50);
    record_ltlf_states(5);
    record_counterexample(3);
  }
  EXPECT_TRUE(stats.collected);
  EXPECT_EQ(stats.nfa_states, 12u);
  EXPECT_EQ(stats.dfa_states_before, 30u);
  EXPECT_EQ(stats.dfa_states_after, 7u);
  EXPECT_EQ(stats.determinize_calls, 1u);
  EXPECT_EQ(stats.minimize_calls, 1u);
  EXPECT_EQ(stats.product_pairs, 150u);
  EXPECT_EQ(stats.ltlf_states, 5u);
  EXPECT_EQ(stats.counterexample_len, 3u);
  // The registry saw the same values.
  EXPECT_EQ(counter("fsm.determinize.calls").value(), 1u);
  EXPECT_EQ(counter("fsm.minimize.calls").value(), 1u);
  EXPECT_EQ(counter("fsm.product.pairs").value(), 150u);
  EXPECT_EQ(distribution("fsm.dfa.states").snapshot().max, 30u);
}

TEST_F(MetricsTest, ScopedSinkWorksWhileRegistryDisabled) {
  // The DFA budget lint needs per-class attribution even when --stats was
  // not requested; the global registry must stay untouched.
  set_enabled(false);
  AutomataStats stats;
  {
    ScopedSink guard(&stats);
    record_determinize(4, 10);
    record_minimize(10, 2);
  }
  set_enabled(true);
  EXPECT_TRUE(stats.collected);
  EXPECT_EQ(stats.dfa_states_after, 2u);
  EXPECT_EQ(counter("fsm.determinize.calls").value(), 0u);
  EXPECT_EQ(distribution("fsm.dfa.states").snapshot().count, 0u);
}

TEST_F(MetricsTest, ScopedSinkNestsAndRestores) {
  AutomataStats outer_stats;
  AutomataStats inner_stats;
  ScopedSink outer(&outer_stats);
  record_nfa_states(3);
  {
    ScopedSink inner(&inner_stats);
    record_nfa_states(8);
  }
  record_determinize(3, 6);
  EXPECT_EQ(outer_stats.nfa_states, 3u);  // inner recording didn't leak out
  EXPECT_EQ(inner_stats.nfa_states, 8u);
  EXPECT_EQ(outer_stats.determinize_calls, 1u);
  EXPECT_EQ(inner_stats.determinize_calls, 0u);
}

TEST_F(MetricsTest, DisabledAndSinklessRecordsNothing) {
  set_enabled(false);
  record_nfa_states(99);
  record_determinize(99, 99);
  record_product_pairs(99);
  set_enabled(true);
  EXPECT_EQ(counter("fsm.determinize.calls").value(), 0u);
  EXPECT_EQ(distribution("fsm.nfa.states").snapshot().count, 0u);
}

TEST_F(MetricsTest, SinksAreThreadLocal) {
  // Concurrent ScopedSinks on different threads must not cross-attribute:
  // this is exactly the parallel verifier's usage pattern.
  constexpr int kThreads = 8;
  std::vector<AutomataStats> stats(kThreads);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&stats, t] {
      ScopedSink guard(&stats[t]);
      for (int i = 0; i < 1000; ++i) {
        record_determinize(static_cast<std::uint64_t>(t + 1),
                           static_cast<std::uint64_t>(10 * (t + 1)));
        record_product_pairs(1);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(stats[t].nfa_states, static_cast<std::uint64_t>(t + 1));
    EXPECT_EQ(stats[t].dfa_states_before,
              static_cast<std::uint64_t>(10 * (t + 1)));
    EXPECT_EQ(stats[t].determinize_calls, 1000u);
    EXPECT_EQ(stats[t].product_pairs, 1000u);
  }
  EXPECT_EQ(counter("fsm.determinize.calls").value(),
            static_cast<std::uint64_t>(kThreads) * 1000u);
}

TEST_F(MetricsTest, MergeTakesMaxOfSizesAndSumOfWork) {
  AutomataStats a;
  a.nfa_states = 10;
  a.dfa_states_after = 4;
  a.determinize_calls = 2;
  a.product_pairs = 30;
  a.elapsed_ms = 1.5;
  a.collected = true;
  AutomataStats b;
  b.nfa_states = 7;
  b.dfa_states_after = 9;
  b.determinize_calls = 1;
  b.product_pairs = 12;
  b.elapsed_ms = 0.5;
  b.collected = true;
  a.merge(b);
  EXPECT_EQ(a.nfa_states, 10u);
  EXPECT_EQ(a.dfa_states_after, 9u);
  EXPECT_EQ(a.determinize_calls, 3u);
  EXPECT_EQ(a.product_pairs, 42u);
  EXPECT_DOUBLE_EQ(a.elapsed_ms, 2.0);
  EXPECT_TRUE(a.collected);
}

TEST_F(MetricsTest, SnapshotsAreNameSorted) {
  counter("zeta").add();
  counter("alpha").add();
  counter("mid").add();
  const auto counters = counter_snapshot();
  ASSERT_GE(counters.size(), 3u);
  for (std::size_t i = 1; i < counters.size(); ++i) {
    EXPECT_LT(counters[i - 1].first, counters[i].first);
  }
}

}  // namespace
}  // namespace shelley::support::metrics
