#include "support/diagnostics.hpp"

#include <gtest/gtest.h>

namespace shelley {
namespace {

TEST(DiagnosticEngine, CountsOnlyErrors) {
  DiagnosticEngine engine;
  engine.warning({1, 1}, "w");
  engine.note({2, 1}, "n");
  EXPECT_FALSE(engine.has_errors());
  engine.error({3, 1}, "e");
  EXPECT_TRUE(engine.has_errors());
  EXPECT_EQ(engine.error_count(), 1u);
  EXPECT_EQ(engine.diagnostics().size(), 3u);
}

TEST(DiagnosticEngine, RenderFormat) {
  DiagnosticEngine engine;
  engine.error({3, 7}, "bad thing");
  engine.warning({}, "no location");
  EXPECT_EQ(engine.render(), "error 3:7: bad thing\nwarning: no location\n");
}

TEST(DiagnosticEngine, ClearResets) {
  DiagnosticEngine engine;
  engine.error({1, 1}, "e");
  engine.clear();
  EXPECT_FALSE(engine.has_errors());
  EXPECT_TRUE(engine.diagnostics().empty());
  EXPECT_EQ(engine.render(), "");
}

TEST(SourceLoc, KnownAndFormatting) {
  EXPECT_FALSE(SourceLoc{}.known());
  EXPECT_TRUE((SourceLoc{1, 1}).known());
  EXPECT_EQ(to_string(SourceLoc{12, 34}), "12:34");
  EXPECT_EQ(to_string(SourceLoc{}), "<unknown>");
}

TEST(ParseError, CarriesLocationInMessage) {
  const ParseError error({5, 2}, "unexpected token");
  EXPECT_EQ(std::string(error.what()), "5:2: unexpected token");
  EXPECT_EQ(error.loc(), (SourceLoc{5, 2}));
}

TEST(Severity, Names) {
  EXPECT_EQ(to_string(Severity::kError), "error");
  EXPECT_EQ(to_string(Severity::kWarning), "warning");
  EXPECT_EQ(to_string(Severity::kNote), "note");
}

}  // namespace
}  // namespace shelley
