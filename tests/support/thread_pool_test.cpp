#include "support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace shelley::support {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(counter.load(), 1);
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, SharedPoolIsASingleton) {
  ThreadPool& first = ThreadPool::shared();
  ThreadPool& second = ThreadPool::shared();
  EXPECT_EQ(&first, &second);
  EXPECT_GE(first.worker_count(), 1u);
}

TEST(ThreadPoolTest, HardwareDefaultHasAFloorOfOne) {
  EXPECT_GE(ThreadPool::hardware_default(), 1u);
}

TEST(ThreadPoolTest, OnWorkerThreadIsSetInsideTasksOnly) {
  EXPECT_FALSE(ThreadPool::on_worker_thread());
  std::atomic<bool> inside{false};
  ThreadPool::shared().submit(
      [&inside] { inside = ThreadPool::on_worker_thread(); });
  ThreadPool::shared().wait();
  EXPECT_TRUE(inside.load());
  EXPECT_FALSE(ThreadPool::on_worker_thread());
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  constexpr std::size_t kCount = 257;
  std::vector<std::atomic<int>> seen(kCount);
  parallel_for(kCount, 8, [&seen](std::size_t i) {
    seen[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(seen[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, SerialWhenJobsIsOne) {
  // jobs <= 1 must run on the calling thread (the byte-identity contract
  // of the serial path depends on it).
  std::vector<bool> on_pool;
  parallel_for(4, 1, [&on_pool](std::size_t) {
    on_pool.push_back(ThreadPool::on_worker_thread());
  });
  ASSERT_EQ(on_pool.size(), 4u);
  for (const bool flag : on_pool) EXPECT_FALSE(flag);
}

TEST(ParallelForTest, NestedCallsDegradeToSerial) {
  // A parallel_for issued from inside a pool task must not wait on pool
  // workers (they may all be busy in the same position): it runs inline.
  std::atomic<int> inner_total{0};
  parallel_for(4, 4, [&inner_total](std::size_t) {
    parallel_for(8, 4, [&inner_total](std::size_t) {
      inner_total.fetch_add(1);
    });
  });
  EXPECT_EQ(inner_total.load(), 32);
}

TEST(ParallelForTest, ConcurrentSubmittersShareThePool) {
  // Two top-level parallel_for calls racing on the shared pool must both
  // complete every index (per-call completion tracking, not pool-wide).
  std::atomic<int> total{0};
  std::thread racer([&total] {
    parallel_for(64, 4, [&total](std::size_t) { total.fetch_add(1); });
  });
  parallel_for(64, 4, [&total](std::size_t) { total.fetch_add(1); });
  racer.join();
  EXPECT_EQ(total.load(), 128);
}

TEST(ParallelForTest, ZeroCountIsANoOp) {
  bool called = false;
  parallel_for(0, 4, [&called](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

}  // namespace
}  // namespace shelley::support
