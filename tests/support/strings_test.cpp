#include "support/strings.hpp"

#include <gtest/gtest.h>

namespace shelley {
namespace {

TEST(Join, BasicAndEmpty) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({"solo"}, ", "), "solo");
  EXPECT_EQ(join({}, ", "), "");
}

TEST(Split, KeepsEmptyFields) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(Trim, StripsBothEnds) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\t\nx"), "x");
  EXPECT_EQ(trim("x"), "x");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(StartsWith, Basics) {
  EXPECT_TRUE(starts_with("a.open", "a."));
  EXPECT_FALSE(starts_with("a", "a."));
  EXPECT_TRUE(starts_with("anything", ""));
}

TEST(EscapeQuotes, EscapesQuoteAndBackslash) {
  EXPECT_EQ(escape_quotes(R"(say "hi")"), R"(say \"hi\")");
  EXPECT_EQ(escape_quotes(R"(a\b)"), R"(a\\b)");
  EXPECT_EQ(escape_quotes("plain"), "plain");
}

TEST(Indent, IndentsNonEmptyLines) {
  EXPECT_EQ(indent("a\nb\n", 2), "  a\n  b\n");
  EXPECT_EQ(indent("a\n\nb", 2), "  a\n\n  b");
}

}  // namespace
}  // namespace shelley
