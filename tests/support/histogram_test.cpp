// The log-scale latency histogram: bucket boundaries, quantile estimates
// within one bucket of the exact order statistic, concurrent-record
// integrity (run under the tsan preset), and merge algebra.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <thread>
#include <vector>

#include "support/metrics.hpp"

namespace shelley::support::metrics {
namespace {

TEST(HistogramBuckets, BoundariesArePowersOfTwo) {
  // Bucket 0 is exactly {0}; bucket i >= 1 is [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::bucket_index(0), 0u);
  EXPECT_EQ(Histogram::bucket_index(1), 1u);
  EXPECT_EQ(Histogram::bucket_index(2), 2u);
  EXPECT_EQ(Histogram::bucket_index(3), 2u);
  EXPECT_EQ(Histogram::bucket_index(4), 3u);
  EXPECT_EQ(Histogram::bucket_index(7), 3u);
  EXPECT_EQ(Histogram::bucket_index(8), 4u);
  EXPECT_EQ(Histogram::bucket_index(1023), 10u);
  EXPECT_EQ(Histogram::bucket_index(1024), 11u);
  // The last bucket absorbs everything too wide to distinguish.
  EXPECT_EQ(Histogram::bucket_index(~std::uint64_t{0}),
            Histogram::kBuckets - 1);

  EXPECT_EQ(Histogram::bucket_upper_bound(0), 0u);
  EXPECT_EQ(Histogram::bucket_upper_bound(1), 1u);
  EXPECT_EQ(Histogram::bucket_upper_bound(2), 3u);
  EXPECT_EQ(Histogram::bucket_upper_bound(3), 7u);
  EXPECT_EQ(Histogram::bucket_upper_bound(11), 2047u);
  EXPECT_EQ(Histogram::bucket_upper_bound(Histogram::kBuckets - 1),
            ~std::uint64_t{0});
  // Every value lands in the bucket whose range covers it.
  for (std::uint64_t value :
       {0ull, 1ull, 5ull, 100ull, 65535ull, 1ull << 20}) {
    const std::size_t bucket = Histogram::bucket_index(value);
    EXPECT_LE(value, Histogram::bucket_upper_bound(bucket)) << value;
    if (bucket > 0) {
      EXPECT_GT(value, Histogram::bucket_upper_bound(bucket - 1)) << value;
    }
  }
}

TEST(HistogramBuckets, CountSumMinMaxAreExact) {
  Histogram h;
  std::uint64_t sum = 0;
  for (std::uint64_t v : {7u, 0u, 300u, 12u, 12u, 99999u}) {
    h.record(v);
    sum += v;
  }
  const Histogram::Snapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 6u);
  EXPECT_EQ(snap.sum, sum);
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, 99999u);
}

TEST(HistogramBuckets, EmptySnapshotIsAllZero) {
  const Histogram::Snapshot snap = Histogram().snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, 0u);
  EXPECT_EQ(snap.quantile(0.5), 0u);
}

TEST(HistogramQuantiles, WithinOneBucketOfExactOnSeededData) {
  std::mt19937_64 rng(20260808);
  std::uniform_int_distribution<std::uint64_t> dist(0, 2'000'000);
  Histogram h;
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 5000; ++i) {
    values.push_back(dist(rng));
    h.record(values.back());
  }
  std::sort(values.begin(), values.end());
  const Histogram::Snapshot snap = h.snapshot();
  for (const double q : {0.01, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    // The exact q-th order statistic (rank = ceil(q * n), 1-based).
    std::size_t rank = static_cast<std::size_t>(q * values.size());
    if (static_cast<double>(rank) < q * static_cast<double>(values.size())) {
      ++rank;
    }
    if (rank == 0) rank = 1;
    const std::uint64_t exact = values[rank - 1];
    const std::uint64_t estimate = snap.quantile(q);
    // The estimate is the upper bound of the exact value's bucket, clamped
    // to the observed max: never below the exact value, never more than
    // one bucket above it.
    EXPECT_GE(estimate, exact) << "q=" << q;
    EXPECT_LE(estimate, Histogram::bucket_upper_bound(
                            Histogram::bucket_index(exact)))
        << "q=" << q;
  }
  EXPECT_EQ(snap.quantile(1.0), snap.max);
  // Quantiles are monotone.
  EXPECT_LE(snap.quantile(0.5), snap.quantile(0.9));
  EXPECT_LE(snap.quantile(0.9), snap.quantile(0.99));
}

TEST(HistogramQuantiles, SingleBucketDataIsExactlyClamped) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.record(41);
  const Histogram::Snapshot snap = h.snapshot();
  // All mass in one bucket: every quantile clamps to the observed max.
  EXPECT_EQ(snap.quantile(0.5), 41u);
  EXPECT_EQ(snap.quantile(0.99), 41u);
}

TEST(HistogramMerge, IsAssociativeAndCommutative) {
  std::mt19937_64 rng(7);
  const auto seeded = [&rng](int count, std::uint64_t cap) {
    Histogram h;
    std::uniform_int_distribution<std::uint64_t> dist(0, cap);
    for (int i = 0; i < count; ++i) h.record(dist(rng));
    return h.snapshot();
  };
  const Histogram::Snapshot a = seeded(100, 50);
  const Histogram::Snapshot b = seeded(200, 5000);
  const Histogram::Snapshot c = seeded(50, 1u << 30);

  Histogram::Snapshot ab_c = a;
  ab_c.merge(b);
  ab_c.merge(c);
  Histogram::Snapshot bc = b;
  bc.merge(c);
  Histogram::Snapshot a_bc = a;
  a_bc.merge(bc);
  Histogram::Snapshot ba_c = b;
  ba_c.merge(a);
  ba_c.merge(c);

  for (const Histogram::Snapshot* other : {&a_bc, &ba_c}) {
    EXPECT_EQ(ab_c.count, other->count);
    EXPECT_EQ(ab_c.sum, other->sum);
    EXPECT_EQ(ab_c.min, other->min);
    EXPECT_EQ(ab_c.max, other->max);
    EXPECT_EQ(ab_c.buckets, other->buckets);
  }
  EXPECT_EQ(ab_c.count, 350u);
}

TEST(HistogramMerge, EmptyIsTheIdentity) {
  Histogram h;
  h.record(5);
  h.record(500);
  const Histogram::Snapshot before = h.snapshot();
  h.merge(Histogram().snapshot());  // histogram-side merge
  Histogram::Snapshot after = h.snapshot();
  EXPECT_EQ(after.count, before.count);
  EXPECT_EQ(after.min, before.min);
  EXPECT_EQ(after.max, before.max);
  after.merge(Histogram::Snapshot{});  // snapshot-side merge
  EXPECT_EQ(after.count, before.count);
  EXPECT_EQ(after.min, before.min);
  EXPECT_EQ(after.max, before.max);
}

TEST(HistogramMerge, MergeIntoAnEmptyTargetAdoptsThePeerMin) {
  // The regression this pins: an empty target's sentinel min (all-ones in
  // the histogram, 0 in a default snapshot) must not survive or poison the
  // merge -- merging {min=5,...} into an empty side yields min=5, not 0.
  Histogram empty_hist;
  Histogram peer;
  peer.record(5);
  peer.record(500);
  empty_hist.merge(peer.snapshot());  // histogram-side, empty target
  const Histogram::Snapshot from_hist = empty_hist.snapshot();
  EXPECT_EQ(from_hist.count, 2u);
  EXPECT_EQ(from_hist.min, 5u);
  EXPECT_EQ(from_hist.max, 500u);
  EXPECT_EQ(from_hist.sum, 505u);

  Histogram::Snapshot empty_snap;  // snapshot-side, empty target
  empty_snap.merge(peer.snapshot());
  EXPECT_EQ(empty_snap.count, 2u);
  EXPECT_EQ(empty_snap.min, 5u);
  EXPECT_EQ(empty_snap.max, 500u);
  EXPECT_EQ(empty_snap.sum, 505u);
}

TEST(HistogramMerge, EmptyIntoEmptyStaysEmpty) {
  Histogram::Snapshot target;
  target.merge(Histogram::Snapshot{});
  EXPECT_EQ(target.count, 0u);
  EXPECT_EQ(target.min, 0u);
  EXPECT_EQ(target.max, 0u);
  EXPECT_EQ(target.sum, 0u);
  Histogram h;
  h.merge(Histogram().snapshot());
  const Histogram::Snapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, 0u);
}

TEST(HistogramMerge, FoldsAPeerIntoTheRegistry) {
  Histogram peer;
  peer.record(16);
  peer.record(64);
  Histogram target;
  target.record(1);
  target.merge(peer.snapshot());
  const Histogram::Snapshot snap = target.snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_EQ(snap.min, 1u);
  EXPECT_EQ(snap.max, 64u);
  EXPECT_EQ(snap.sum, 81u);
}

TEST(HistogramConcurrency, ParallelRecordsLoseNothing) {
  // 8 threads x 20k records into one histogram; count and sum must be
  // exact.  The tsan preset runs this suite to prove record() is race-free.
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.record(static_cast<std::uint64_t>(t * kPerThread + i) % 4096);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const Histogram::Snapshot snap = h.snapshot();
  EXPECT_EQ(snap.count,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  std::uint64_t expected_sum = 0;
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      expected_sum += static_cast<std::uint64_t>(t * kPerThread + i) % 4096;
    }
  }
  EXPECT_EQ(snap.sum, expected_sum);
  EXPECT_EQ(snap.max, 4095u);
  EXPECT_EQ(snap.min, 0u);
}

TEST(HistogramRegistry, NamedSeriesPersistAndReset) {
  histogram("test.registry_us").record(100);
  histogram("test.registry_us").record(200);
  bool found = false;
  for (const auto& [name, snap] : histogram_snapshot()) {
    if (name == "test.registry_us") {
      found = true;
      EXPECT_EQ(snap.count, 2u);
    }
  }
  EXPECT_TRUE(found);
  reset();
  for (const auto& [name, snap] : histogram_snapshot()) {
    if (name == "test.registry_us") EXPECT_EQ(snap.count, 0u);
  }
}

}  // namespace
}  // namespace shelley::support::metrics
