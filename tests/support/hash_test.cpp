// The 128-bit FNV-1a hasher behind cache keys: determinism, sensitivity,
// and the reassociation defence of length-prefixed updates.
#include "support/hash.hpp"

#include <set>
#include <string>

#include <gtest/gtest.h>

namespace shelley::support {
namespace {

TEST(Hash, EmptyInputMatchesOffsetBasis) {
  // FNV-1a of nothing is the offset basis.
  const Digest128 digest = hash_bytes("");
  EXPECT_EQ(digest.hi, 0x6c62272e07bb0142ULL);
  EXPECT_EQ(digest.lo, 0x62b821756295c58dULL);
}

TEST(Hash, DeterministicAcrossInstances) {
  Hasher a;
  Hasher b;
  a.update("class Valve");
  b.update("class Valve");
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_EQ(hash_bytes("class Valve"), a.digest());
}

TEST(Hash, StreamingEqualsOneShot) {
  Hasher streamed;
  streamed.update("abc");
  streamed.update("def");
  EXPECT_EQ(streamed.digest(), hash_bytes("abcdef"));
}

TEST(Hash, SingleBitSensitivity) {
  EXPECT_NE(hash_bytes("abc"), hash_bytes("abd"));
  EXPECT_NE(hash_bytes("abc"), hash_bytes("Abc"));
  // Embedded NUL counts as a byte (sized constructor; the literal one
  // would truncate).
  EXPECT_NE(hash_bytes("abc"), hash_bytes(std::string_view("abc\0", 4)));
}

TEST(Hash, SizedUpdatesPreventReassociation) {
  // Without length prefixes "ab"+"c" and "a"+"bc" would hash identically.
  Hasher left;
  left.update_sized("ab");
  left.update_sized("c");
  Hasher right;
  right.update_sized("a");
  right.update_sized("bc");
  EXPECT_NE(left.digest(), right.digest());
}

TEST(Hash, IntegerUpdatesAreWidthDistinct) {
  Hasher as_u8;
  as_u8.update_u8(7);
  Hasher as_u32;
  as_u32.update_u32(7);
  Hasher as_u64;
  as_u64.update_u64(7);
  EXPECT_NE(as_u8.digest(), as_u32.digest());
  EXPECT_NE(as_u32.digest(), as_u64.digest());
}

TEST(Hash, NoCollisionsOverSmallCorpus) {
  std::set<std::string> seen;
  for (int i = 0; i < 10000; ++i) {
    seen.insert(to_hex(hash_bytes("input-" + std::to_string(i))));
  }
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(Hash, HexIsStable) {
  // Pin the rendering (hi half first, lowercase) so cache file names never
  // silently change across platforms or refactors.
  EXPECT_EQ(to_hex(hash_bytes("")), "6c62272e07bb014262b821756295c58d");
  EXPECT_EQ(to_hex(Digest128{0x1ULL, 0xabcdef0012345678ULL}),
            "abcdef00123456780000000000000001");
}

TEST(Hash, DigestOrdering) {
  const Digest128 small{1, 0};
  const Digest128 large{0, 1};  // hi dominates
  EXPECT_LT(small, large);
  EXPECT_NE(small, large);
  EXPECT_EQ(small, (Digest128{1, 0}));
}

}  // namespace
}  // namespace shelley::support
