#include "support/json.hpp"

#include <gtest/gtest.h>

namespace shelley {
namespace {

TEST(JsonWriter, EmptyObjectAndArray) {
  EXPECT_EQ(JsonWriter().begin_object().end_object().str(), "{}");
  EXPECT_EQ(JsonWriter().begin_array().end_array().str(), "[]");
}

TEST(JsonWriter, FlatObject) {
  JsonWriter json;
  json.begin_object();
  json.key("name").value("valve");
  json.key("ops").value(std::uint64_t{4});
  json.key("ok").value(true);
  json.key("owner").null();
  json.end_object();
  EXPECT_EQ(json.str(),
            R"({"name":"valve","ops":4,"ok":true,"owner":null})");
}

TEST(JsonWriter, NestedContainers) {
  JsonWriter json;
  json.begin_object();
  json.key("items").begin_array();
  json.value("a");
  json.begin_object().key("x").value(std::int64_t{-1}).end_object();
  json.begin_array().value(false).end_array();
  json.end_array();
  json.end_object();
  EXPECT_EQ(json.str(), R"({"items":["a",{"x":-1},[false]]})");
}

TEST(JsonWriter, ArrayOfScalars) {
  JsonWriter json;
  json.begin_array();
  json.value(std::uint64_t{1});
  json.value(std::uint64_t{2});
  json.value(std::uint64_t{3});
  json.end_array();
  EXPECT_EQ(json.str(), "[1,2,3]");
}

TEST(JsonWriter, StringEscaping) {
  JsonWriter json;
  json.begin_array();
  json.value("quote:\" backslash:\\ newline:\n tab:\t");
  json.value(std::string_view("control:\x01", 9));
  json.end_array();
  EXPECT_EQ(json.str(),
            "[\"quote:\\\" backslash:\\\\ newline:\\n tab:\\t\","
            "\"control:\\u0001\"]");
}

TEST(JsonWriter, Doubles) {
  JsonWriter json;
  json.begin_array();
  json.value(0.5);
  json.end_array();
  EXPECT_EQ(json.str(), "[0.5]");
}

TEST(JsonWriter, TopLevelScalar) {
  EXPECT_EQ(JsonWriter().value("x").str(), "\"x\"");
}

TEST(JsonParser, Scalars) {
  EXPECT_TRUE(parse_json("null").is_null());
  EXPECT_EQ(parse_json("true").as_bool(), true);
  EXPECT_EQ(parse_json("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(parse_json("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(parse_json("-0.5").as_number(), -0.5);
  EXPECT_DOUBLE_EQ(parse_json("1e3").as_number(), 1000.0);
  EXPECT_EQ(parse_json("\"hi\"").as_string(), "hi");
}

TEST(JsonParser, ObjectsPreserveKeyOrderAndChainLookups) {
  const JsonValue doc =
      parse_json(R"({"b":1,"a":{"nested":[1,2,3]},"b":2})");
  const JsonValue::Object& object = doc.as_object();
  ASSERT_EQ(object.size(), 3u);
  EXPECT_EQ(object[0].first, "b");
  EXPECT_EQ(object[1].first, "a");
  // at()/find() return the FIRST match for duplicate keys.
  EXPECT_DOUBLE_EQ(doc.at("b").as_number(), 1.0);
  ASSERT_NE(doc.find("a"), nullptr);
  EXPECT_EQ(doc.at("a").at("nested").as_array().size(), 3u);
  // find() on absent keys and on non-objects chains safely.
  EXPECT_EQ(doc.find("zzz"), nullptr);
  EXPECT_EQ(doc.at("b").find("anything"), nullptr);
  EXPECT_THROW((void)doc.at("zzz"), JsonParseError);
}

TEST(JsonParser, StringEscapes) {
  EXPECT_EQ(parse_json(R"("a\"b\\c\/d\n\t\r\f\b")").as_string(),
            "a\"b\\c/d\n\t\r\f\b");
  EXPECT_EQ(parse_json(R"("Aé")").as_string(), "A\xc3\xa9");
  // Surrogate pair: U+1F600 encodes as 😀.
  EXPECT_EQ(parse_json(R"("😀")").as_string(),
            "\xf0\x9f\x98\x80");
}

TEST(JsonParser, MalformedInputThrows) {
  EXPECT_THROW((void)parse_json(""), JsonParseError);
  EXPECT_THROW((void)parse_json("{"), JsonParseError);
  EXPECT_THROW((void)parse_json("[1,]"), JsonParseError);
  EXPECT_THROW((void)parse_json("{\"a\":}"), JsonParseError);
  EXPECT_THROW((void)parse_json("\"unterminated"), JsonParseError);
  EXPECT_THROW((void)parse_json("nul"), JsonParseError);
  EXPECT_THROW((void)parse_json("1 trailing"), JsonParseError);
  EXPECT_THROW((void)parse_json(R"("\ud800")"), JsonParseError);
  EXPECT_THROW((void)parse_json(R"("\uZZZZ")"), JsonParseError);
}

TEST(JsonParser, KindMismatchThrows) {
  const JsonValue doc = parse_json("[1]");
  EXPECT_THROW((void)doc.as_object(), JsonParseError);
  EXPECT_THROW((void)doc.as_string(), JsonParseError);
  EXPECT_THROW((void)doc.as_array()[0].as_bool(), JsonParseError);
}

TEST(JsonParser, RoundTripsWriterOutput) {
  JsonWriter json;
  json.begin_object();
  json.key("name").value("tr\"icky\n");
  json.key("count").value(std::uint64_t{7});
  json.key("ratio").value(0.25);
  json.key("flags").begin_array().value(true).null().end_array();
  json.end_object();

  const JsonValue doc = parse_json(json.str());
  EXPECT_EQ(doc.at("name").as_string(), "tr\"icky\n");
  EXPECT_DOUBLE_EQ(doc.at("count").as_number(), 7.0);
  EXPECT_DOUBLE_EQ(doc.at("ratio").as_number(), 0.25);
  EXPECT_TRUE(doc.at("flags").as_array()[0].as_bool());
  EXPECT_TRUE(doc.at("flags").as_array()[1].is_null());
}

}  // namespace
}  // namespace shelley
