#include "support/json.hpp"

#include <gtest/gtest.h>

namespace shelley {
namespace {

TEST(JsonWriter, EmptyObjectAndArray) {
  EXPECT_EQ(JsonWriter().begin_object().end_object().str(), "{}");
  EXPECT_EQ(JsonWriter().begin_array().end_array().str(), "[]");
}

TEST(JsonWriter, FlatObject) {
  JsonWriter json;
  json.begin_object();
  json.key("name").value("valve");
  json.key("ops").value(std::uint64_t{4});
  json.key("ok").value(true);
  json.key("owner").null();
  json.end_object();
  EXPECT_EQ(json.str(),
            R"({"name":"valve","ops":4,"ok":true,"owner":null})");
}

TEST(JsonWriter, NestedContainers) {
  JsonWriter json;
  json.begin_object();
  json.key("items").begin_array();
  json.value("a");
  json.begin_object().key("x").value(std::int64_t{-1}).end_object();
  json.begin_array().value(false).end_array();
  json.end_array();
  json.end_object();
  EXPECT_EQ(json.str(), R"({"items":["a",{"x":-1},[false]]})");
}

TEST(JsonWriter, ArrayOfScalars) {
  JsonWriter json;
  json.begin_array();
  json.value(std::uint64_t{1});
  json.value(std::uint64_t{2});
  json.value(std::uint64_t{3});
  json.end_array();
  EXPECT_EQ(json.str(), "[1,2,3]");
}

TEST(JsonWriter, StringEscaping) {
  JsonWriter json;
  json.begin_array();
  json.value("quote:\" backslash:\\ newline:\n tab:\t");
  json.value(std::string_view("control:\x01", 9));
  json.end_array();
  EXPECT_EQ(json.str(),
            "[\"quote:\\\" backslash:\\\\ newline:\\n tab:\\t\","
            "\"control:\\u0001\"]");
}

TEST(JsonWriter, Doubles) {
  JsonWriter json;
  json.begin_array();
  json.value(0.5);
  json.end_array();
  EXPECT_EQ(json.str(), "[0.5]");
}

TEST(JsonWriter, TopLevelScalar) {
  EXPECT_EQ(JsonWriter().value("x").str(), "\"x\"");
}

}  // namespace
}  // namespace shelley
