// The chunked bump arena behind the flat automata kernel: alignment,
// mark/rewind reuse, geometric chunk growth, and the steady-state
// guarantee that warm scopes perform zero heap allocations.
#include "support/arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "support/alloc.hpp"

namespace shelley::support {
namespace {

TEST(ArenaTest, AllocationsAreAligned) {
  Arena arena;
  for (std::size_t align : {1u, 2u, 4u, 8u, 16u, 64u}) {
    void* p = arena.allocate(3, align);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
        << "misaligned for align=" << align;
  }
}

TEST(ArenaTest, DistinctAllocationsDoNotOverlap) {
  Arena arena;
  auto* a = arena.allocate_array<std::uint64_t>(8);
  auto* b = arena.allocate_array<std::uint64_t>(8);
  std::memset(a, 0xAA, 8 * sizeof(std::uint64_t));
  std::memset(b, 0x55, 8 * sizeof(std::uint64_t));
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(a[i], 0xAAAAAAAAAAAAAAAAull);
    EXPECT_EQ(b[i], 0x5555555555555555ull);
  }
}

TEST(ArenaTest, RewindReusesMemory) {
  Arena arena;
  const Arena::Marker marker = arena.mark();
  void* first = arena.allocate(64, 8);
  arena.rewind(marker);
  void* second = arena.allocate(64, 8);
  EXPECT_EQ(first, second);
}

TEST(ArenaTest, ArenaScopeRewindsOnDestruction) {
  Arena arena;
  (void)arena.allocate(16, 8);
  void* probe = nullptr;
  {
    ArenaScope scope(arena);
    probe = scope.arena().allocate(1024, 8);
    ASSERT_NE(probe, nullptr);
  }
  void* after = arena.allocate(1024, 8);
  EXPECT_EQ(after, probe);
}

TEST(ArenaTest, OversizedRequestGetsOwnChunk) {
  Arena arena(1 << 8);  // tiny chunks
  auto* big = arena.allocate_array<std::byte>(1 << 20);
  ASSERT_NE(big, nullptr);
  std::memset(big, 0x42, 1 << 20);  // must be fully addressable
  EXPECT_GE(arena.stats().reserved_bytes, std::size_t{1} << 20);
}

TEST(ArenaTest, WarmScopesDoNotTouchTheHeap) {
  Arena arena;
  {
    ArenaScope warmup(arena);
    (void)warmup.arena().allocate(1 << 12, 8);
    (void)warmup.arena().allocate(1 << 12, 64);
  }
  const std::size_t chunk_allocs = arena.stats().chunk_allocs;
  const std::uint64_t heap_before = alloc::allocation_count();
  for (int round = 0; round < 100; ++round) {
    ArenaScope scope(arena);
    (void)scope.arena().allocate(1 << 12, 8);
    (void)scope.arena().allocate(1 << 12, 64);
  }
  EXPECT_EQ(alloc::allocation_count(), heap_before);
  EXPECT_EQ(arena.stats().chunk_allocs, chunk_allocs);
}

TEST(ArenaTest, ReleaseDropsCapacityButStaysUsable) {
  Arena arena;
  (void)arena.allocate(1 << 12, 8);
  EXPECT_GT(arena.stats().reserved_bytes, 0u);
  arena.release();
  EXPECT_EQ(arena.stats().reserved_bytes, 0u);
  EXPECT_EQ(arena.stats().chunks, 0u);
  auto* p = arena.allocate_array<int>(4);
  ASSERT_NE(p, nullptr);
  p[0] = 7;
  EXPECT_EQ(p[0], 7);
}

TEST(ArenaTest, NestedScopesComposeLifoStyle) {
  Arena arena;
  ArenaScope outer(arena);
  auto* outer_word = outer.arena().allocate_array<std::uint64_t>(1);
  *outer_word = 0xDEADBEEF;
  {
    ArenaScope inner(arena);
    auto* inner_word = inner.arena().allocate_array<std::uint64_t>(1);
    *inner_word = 0;
  }
  // The inner rewind must not clobber the outer allocation.
  EXPECT_EQ(*outer_word, 0xDEADBEEFull);
}

}  // namespace
}  // namespace shelley::support
