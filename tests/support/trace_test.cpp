// The tracing subsystem: span nesting within a thread, interleaving across
// threads, instant/counter events, the disabled fast path, and that the
// exporter emits a Chrome trace-event document our own parser accepts.
#include "support/trace.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "support/json.hpp"

namespace shelley::support::trace {
namespace {

/// Every test runs with a clean buffer and restores the disabled default,
/// so ordering between tests (and other suites) cannot matter.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(true);
    reset();
  }
  void TearDown() override {
    set_enabled(false);
    reset();
  }
};

const JsonValue::Array& events_of(const JsonValue& doc) {
  return doc.at("traceEvents").as_array();
}

/// Non-metadata events ("M" rows carry thread names, not timing).
std::vector<const JsonValue*> timed_events(const JsonValue& doc) {
  std::vector<const JsonValue*> out;
  for (const JsonValue& event : events_of(doc)) {
    if (event.at("ph").as_string() != "M") out.push_back(&event);
  }
  return out;
}

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  set_enabled(false);
  {
    Span span("outer");
    span.arg("ignored", std::uint64_t{1});
    Span inner("inner");
    instant("point");
    counter("series", {Arg("value", std::uint64_t{7})});
  }
  EXPECT_EQ(event_count(), 0u);
  EXPECT_FALSE(Span("post").active());
}

TEST_F(TraceTest, SpanNestingWithinAThread) {
  {
    Span outer("outer");
    {
      Span inner("inner");
      inner.arg("detail", "x");
    }
    outer.arg("children", std::uint64_t{1});
  }
  ASSERT_EQ(event_count(), 2u);

  const JsonValue doc = parse_json(to_chrome_json());
  const auto events = timed_events(doc);
  ASSERT_EQ(events.size(), 2u);
  // Events are ts-sorted: outer opened first.
  const JsonValue& outer = *events[0];
  const JsonValue& inner = *events[1];
  EXPECT_EQ(outer.at("name").as_string(), "outer");
  EXPECT_EQ(inner.at("name").as_string(), "inner");
  EXPECT_EQ(outer.at("ph").as_string(), "X");
  // Same thread, and the inner interval is contained in the outer one --
  // that containment is exactly what the viewer renders as nesting.
  EXPECT_EQ(outer.at("tid").as_number(), inner.at("tid").as_number());
  const double outer_start = outer.at("ts").as_number();
  const double outer_end = outer_start + outer.at("dur").as_number();
  const double inner_start = inner.at("ts").as_number();
  const double inner_end = inner_start + inner.at("dur").as_number();
  EXPECT_GE(inner_start, outer_start);
  EXPECT_LE(inner_end, outer_end);
  EXPECT_EQ(inner.at("args").at("detail").as_string(), "x");
  EXPECT_EQ(outer.at("args").at("children").as_number(), 1.0);
}

TEST_F(TraceTest, ThreadsGetDistinctIdsAndStayNested) {
  constexpr int kThreads = 4;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t] {
      Span outer("worker");
      outer.arg("index", static_cast<std::uint64_t>(t));
      Span inner("step");
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(event_count(), 2u * kThreads);

  const JsonValue doc = parse_json(to_chrome_json());
  // One thread_name metadata row per participating thread.
  std::size_t names = 0;
  for (const JsonValue& event : events_of(doc)) {
    if (event.at("ph").as_string() == "M") ++names;
  }
  EXPECT_EQ(names, static_cast<std::size_t>(kThreads));

  // Per thread: exactly one worker span containing one step span.
  for (int tid_target = 0; tid_target < kThreads; ++tid_target) {
    std::vector<const JsonValue*> own;
    for (const JsonValue* event : timed_events(doc)) {
      if (static_cast<int>(event->at("tid").as_number()) == tid_target) {
        own.push_back(event);
      }
    }
    ASSERT_EQ(own.size(), 2u) << "thread " << tid_target;
    const JsonValue& outer = *own[0];
    const JsonValue& inner = *own[1];
    EXPECT_EQ(outer.at("name").as_string(), "worker");
    EXPECT_EQ(inner.at("name").as_string(), "step");
    EXPECT_GE(inner.at("ts").as_number(), outer.at("ts").as_number());
    EXPECT_LE(inner.at("ts").as_number() + inner.at("dur").as_number(),
              outer.at("ts").as_number() + outer.at("dur").as_number());
  }
}

TEST_F(TraceTest, InstantAndCounterEvents) {
  instant("diagnostic", {Arg("message", "boom"), Arg("line", std::uint64_t{3})});
  counter("automata/Valve", {Arg("dfa_states", std::uint64_t{4})});
  const JsonValue doc = parse_json(to_chrome_json());
  const auto events = timed_events(doc);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0]->at("ph").as_string(), "i");
  EXPECT_EQ(events[0]->at("s").as_string(), "t");
  EXPECT_EQ(events[0]->at("args").at("message").as_string(), "boom");
  EXPECT_EQ(events[0]->at("args").at("line").as_number(), 3.0);
  EXPECT_EQ(events[1]->at("ph").as_string(), "C");
  EXPECT_EQ(events[1]->at("args").at("dfa_states").as_number(), 4.0);
}

TEST_F(TraceTest, ResetDropsEventsAndRestartsClock) {
  { Span span("before"); }
  ASSERT_GT(event_count(), 0u);
  reset();
  EXPECT_EQ(event_count(), 0u);
  { Span span("after"); }
  const JsonValue doc = parse_json(to_chrome_json());
  const auto events = timed_events(doc);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0]->at("name").as_string(), "after");
}

TEST_F(TraceTest, ArgStringsAreEscapedIntoValidJson) {
  {
    Span span("tricky");
    span.arg("text", "quote:\" backslash:\\ newline:\n");
  }
  const JsonValue doc = parse_json(to_chrome_json());  // must not throw
  const auto events = timed_events(doc);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0]->at("args").at("text").as_string(),
            "quote:\" backslash:\\ newline:\n");
}

TEST_F(TraceTest, ConcurrentRecordingProducesEveryEvent) {
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 200;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        Span span("hot");
        span.arg("i", static_cast<std::uint64_t>(i));
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(event_count(),
            static_cast<std::size_t>(kThreads) * kSpansPerThread);
  // And the merged document still parses.
  EXPECT_NO_THROW((void)parse_json(to_chrome_json()));
}

}  // namespace
}  // namespace shelley::support::trace
