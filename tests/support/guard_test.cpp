#include "support/guard.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

namespace shelley::support::guard {
namespace {

TEST(Guard, DefaultsAreGenerous) {
  const Limits current = limits();
  EXPECT_GE(current.max_recursion_depth, 256u);
  EXPECT_GE(current.max_input_bytes, 8u << 20);
  EXPECT_EQ(current.max_states, 0u);
  EXPECT_EQ(current.timeout_ms, 0u);
}

TEST(Guard, ScopedLimitsInstallAndRestore) {
  const Limits before = limits();
  {
    Limits strict;
    strict.max_recursion_depth = 8;
    strict.max_input_bytes = 128;
    strict.max_states = 16;
    ScopedLimits scoped(strict);
    EXPECT_EQ(limits().max_recursion_depth, 8u);
    EXPECT_EQ(limits().max_input_bytes, 128u);
    EXPECT_EQ(limits().max_states, 16u);
  }
  EXPECT_EQ(limits().max_recursion_depth, before.max_recursion_depth);
  EXPECT_EQ(limits().max_input_bytes, before.max_input_bytes);
  EXPECT_EQ(limits().max_states, before.max_states);
}

TEST(Guard, ZeroDepthAndInputKeepDefaults) {
  Limits zeros;
  zeros.max_recursion_depth = 0;
  zeros.max_input_bytes = 0;
  ScopedLimits scoped(zeros);
  // An unbounded recursion cap would defeat the point: zeros fall back to
  // the built-in defaults instead of disabling the checks.
  EXPECT_NO_THROW(DepthGuard{});
  EXPECT_NO_THROW(check_input_size(1024));
}

TEST(Guard, DepthGuardThrowsAtTheCap) {
  Limits strict;
  strict.max_recursion_depth = 4;
  ScopedLimits scoped(strict);
  std::vector<DepthGuard*> frames;
  for (int i = 0; i < 4; ++i) frames.push_back(new DepthGuard({1, 1}));
  try {
    DepthGuard one_too_many({7, 3});
    FAIL() << "expected ResourceError";
  } catch (const ResourceError& error) {
    EXPECT_EQ(error.resource(), Resource::kRecursionDepth);
    EXPECT_EQ(error.loc(), (SourceLoc{7, 3}));
  }
  for (DepthGuard* frame : frames) delete frame;
  // All frames popped: the full depth is available again.
  EXPECT_NO_THROW((DepthGuard{}));
}

TEST(Guard, DepthGuardIsResourceAndParseError) {
  Limits strict;
  strict.max_recursion_depth = 1;
  ScopedLimits scoped(strict);
  DepthGuard first;
  // Existing recovery boundaries catch ParseError; ResourceError must pass
  // through them unchanged.
  EXPECT_THROW(DepthGuard{}, ParseError);
}

TEST(Guard, InputSizeBudget) {
  Limits strict;
  strict.max_input_bytes = 64;
  ScopedLimits scoped(strict);
  EXPECT_NO_THROW(check_input_size(64));
  try {
    check_input_size(65);
    FAIL() << "expected ResourceError";
  } catch (const ResourceError& error) {
    EXPECT_EQ(error.resource(), Resource::kInputSize);
  }
}

TEST(Guard, StateBudgetDisabledByDefault) {
  EXPECT_NO_THROW(check_states(1u << 30, "test"));
}

TEST(Guard, StateBudgetEnforced) {
  Limits strict;
  strict.max_states = 100;
  ScopedLimits scoped(strict);
  EXPECT_NO_THROW(check_states(100, "test"));
  try {
    check_states(101, "determinization");
    FAIL() << "expected ResourceError";
  } catch (const ResourceError& error) {
    EXPECT_EQ(error.resource(), Resource::kStateBudget);
    EXPECT_NE(std::string(error.what()).find("determinization"),
              std::string::npos);
  }
}

TEST(Guard, DeadlineDisarmedByDefault) {
  EXPECT_NO_THROW(check_deadline("test"));
}

TEST(Guard, DeadlineFiresAfterTimeout) {
  Limits strict;
  strict.timeout_ms = 1;
  ScopedLimits scoped(strict);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  try {
    check_deadline("fsm.determinize");
    FAIL() << "expected ResourceError";
  } catch (const ResourceError& error) {
    EXPECT_EQ(error.resource(), Resource::kTimeout);
    EXPECT_NE(std::string(error.what()).find("fsm.determinize"),
              std::string::npos);
  }
}

TEST(Guard, DeadlineDisarmedAgainAfterScopeExit) {
  {
    Limits strict;
    strict.timeout_ms = 1;
    ScopedLimits scoped(strict);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_NO_THROW(check_deadline("test"));
}

TEST(Guard, ResourceNamesForDiagnostics) {
  EXPECT_EQ(to_string(Resource::kRecursionDepth), "recursion depth");
  EXPECT_EQ(to_string(Resource::kInputSize), "input size");
  EXPECT_EQ(to_string(Resource::kStateBudget), "state budget");
  EXPECT_EQ(to_string(Resource::kTimeout), "timeout");
}

}  // namespace
}  // namespace shelley::support::guard
