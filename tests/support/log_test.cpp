// The NDJSON structured logger: line schema round-trips through
// support/json, files collect one parseable object per line, the rate
// limiter drops (and accounts for) excess lines, and a disabled logger
// writes nothing.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "support/json.hpp"
#include "support/log.hpp"

namespace shelley::support::log {
namespace {

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::path(::testing::TempDir()) /
             ("log_" + std::string(::testing::UnitTest::GetInstance()
                                       ->current_test_info()
                                       ->name()) +
              ".ndjson"))
                .string();
    std::filesystem::remove(path_);
  }

  void TearDown() override {
    configure("");  // disable and drop the sink
    set_rate_limit(1000);
    std::filesystem::remove(path_);
  }

  [[nodiscard]] std::vector<std::string> lines() const {
    std::ifstream in(path_);
    std::vector<std::string> out;
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty()) out.push_back(line);
    }
    return out;
  }

  std::string path_;
};

TEST_F(LogTest, FormatLineRoundTripsThroughJson) {
  const std::string line =
      format_line(Level::kInfo, "request.finish", 42,
                  {Field("cmd", "verify"), Field("elapsed_us", 1234u)});
  const JsonValue doc = parse_json(line);
  EXPECT_GT(doc.at("ts_ms").as_number(), 0.0);
  EXPECT_EQ(doc.at("level").as_string(), "info");
  EXPECT_EQ(doc.at("event").as_string(), "request.finish");
  EXPECT_EQ(doc.at("request").as_number(), 42.0);
  EXPECT_EQ(doc.at("cmd").as_string(), "verify");
  EXPECT_EQ(doc.at("elapsed_us").as_number(), 1234.0);
  // One object, one line.
  EXPECT_EQ(line.find('\n'), std::string::npos);
}

TEST_F(LogTest, ZeroRequestIdOmitsTheKey) {
  const JsonValue doc =
      parse_json(format_line(Level::kWarn, "daemon.start", 0, {}));
  EXPECT_EQ(doc.find("request"), nullptr);
  EXPECT_EQ(doc.at("level").as_string(), "warn");
}

TEST_F(LogTest, EscapesHostileFieldValues) {
  const JsonValue doc = parse_json(format_line(
      Level::kError, "request.error", 1,
      {Field("error", "line1\nline2 \"quoted\" \\slash")}));
  EXPECT_EQ(doc.at("error").as_string(), "line1\nline2 \"quoted\" \\slash");
}

TEST_F(LogTest, LevelsSpellTheirWireNames) {
  EXPECT_EQ(level_name(Level::kDebug), "debug");
  EXPECT_EQ(level_name(Level::kInfo), "info");
  EXPECT_EQ(level_name(Level::kWarn), "warn");
  EXPECT_EQ(level_name(Level::kError), "error");
}

TEST_F(LogTest, WritesOneParseableObjectPerLine) {
  ASSERT_TRUE(configure(path_));
  ASSERT_TRUE(enabled());
  write(Level::kInfo, "request.start", 1, {Field("bytes", 17u)});
  write(Level::kInfo, "request.finish", 1,
        {Field("cmd", "stats"), Field("elapsed_us", 9u)});
  write(Level::kError, "request.error", 2, {Field("error", "bad json")});
  configure("");

  const std::vector<std::string> written = lines();
  ASSERT_EQ(written.size(), 3u);
  const JsonValue first = parse_json(written[0]);
  EXPECT_EQ(first.at("event").as_string(), "request.start");
  EXPECT_EQ(first.at("request").as_number(), 1.0);
  const JsonValue last = parse_json(written[2]);
  EXPECT_EQ(last.at("level").as_string(), "error");
  EXPECT_EQ(last.at("request").as_number(), 2.0);
}

TEST_F(LogTest, DisabledWriteIsANoOp) {
  ASSERT_TRUE(configure(""));
  EXPECT_FALSE(enabled());
  write(Level::kInfo, "ignored", 7, {});
  EXPECT_EQ(dropped_lines(), 0u);
  EXPECT_FALSE(std::filesystem::exists(path_));
}

TEST_F(LogTest, RateLimiterDropsAndAccounts) {
  ASSERT_TRUE(configure(path_));
  set_rate_limit(5);
  for (int i = 0; i < 40; ++i) {
    write(Level::kInfo, "flood", 1, {Field("i", std::uint64_t(i))});
  }
  // 40 writes land within at most two one-second windows of budget 5, so
  // at least 30 must have been dropped -- and every emitted line is still
  // whole (no torn/interleaved output).
  EXPECT_GE(dropped_lines(), 30u);
  const std::uint64_t dropped = dropped_lines();
  configure("");
  const std::vector<std::string> written = lines();
  // Emitted + dropped accounts for every flood line; the only other output
  // is the rate_limited summary a window roll-over may add.
  std::uint64_t flood_lines = 0;
  for (const std::string& line : written) {
    JsonValue doc;
    ASSERT_NO_THROW(doc = parse_json(line)) << line;
    if (doc.at("event").as_string() == "flood") ++flood_lines;
  }
  EXPECT_EQ(flood_lines, 40u - dropped);
}

TEST_F(LogTest, ConfigureFailureDisablesInsteadOfCrashing) {
  EXPECT_FALSE(configure("/nonexistent-dir-xyz/log.ndjson"));
  EXPECT_FALSE(enabled());
  write(Level::kInfo, "ignored", 1, {});  // must not crash
}

}  // namespace
}  // namespace shelley::support::log
