#include "support/symbol.hpp"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

namespace shelley {
namespace {

TEST(SymbolTable, InternReturnsSameSymbolForSameText) {
  SymbolTable table;
  const Symbol a1 = table.intern("a.open");
  const Symbol a2 = table.intern("a.open");
  EXPECT_EQ(a1, a2);
  EXPECT_EQ(table.size(), 1u);
}

TEST(SymbolTable, DistinctTextsGetDistinctSymbols) {
  SymbolTable table;
  const Symbol a = table.intern("a");
  const Symbol b = table.intern("b");
  EXPECT_NE(a, b);
  EXPECT_EQ(table.size(), 2u);
}

TEST(SymbolTable, NameRoundTrips) {
  SymbolTable table;
  const Symbol s = table.intern("valve.close");
  EXPECT_EQ(table.name(s), "valve.close");
}

TEST(SymbolTable, LookupFindsInternedOnly) {
  SymbolTable table;
  table.intern("present");
  EXPECT_TRUE(table.lookup("present").has_value());
  EXPECT_FALSE(table.lookup("absent").has_value());
  EXPECT_EQ(table.size(), 1u);  // lookup must not intern
}

TEST(SymbolTable, NameOfForeignSymbolThrows) {
  SymbolTable table;
  EXPECT_THROW((void)table.name(Symbol{42}), std::out_of_range);
  EXPECT_THROW((void)table.name(Symbol{}), std::out_of_range);
}

TEST(SymbolTable, StableUnderGrowth) {
  SymbolTable table;
  std::vector<Symbol> symbols;
  for (int i = 0; i < 10000; ++i) {
    symbols.push_back(table.intern("sym" + std::to_string(i)));
  }
  for (int i = 0; i < 10000; ++i) {
    EXPECT_EQ(table.name(symbols[i]), "sym" + std::to_string(i));
    EXPECT_EQ(table.intern("sym" + std::to_string(i)), symbols[i]);
  }
}

TEST(Symbol, DefaultConstructedIsInvalid) {
  EXPECT_FALSE(Symbol{}.valid());
  EXPECT_TRUE(Symbol{0}.valid());
}

TEST(Symbol, OrderingFollowsIds) {
  EXPECT_LT(Symbol{1}, Symbol{2});
  EXPECT_FALSE(Symbol{2} < Symbol{1});
}

TEST(Symbol, HashableInUnorderedContainers) {
  std::unordered_set<Symbol> set;
  set.insert(Symbol{1});
  set.insert(Symbol{1});
  set.insert(Symbol{2});
  EXPECT_EQ(set.size(), 2u);
}

TEST(Word, ToStringJoinsWithSeparator) {
  SymbolTable table;
  const Word w{table.intern("a.test"), table.intern("a.open")};
  EXPECT_EQ(to_string(w, table), "a.test, a.open");
  EXPECT_EQ(to_string(w, table, " -> "), "a.test -> a.open");
  EXPECT_EQ(to_string(Word{}, table), "");
}

}  // namespace
}  // namespace shelley
