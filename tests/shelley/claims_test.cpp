// Claim checking beyond the paper's example: multiple claims, claims over
// composite-operation labels, and the full LTLf connective set in claims.
#include <gtest/gtest.h>

#include "paper_sources.hpp"
#include "shelley/verifier.hpp"

namespace shelley::core {
namespace {

class ClaimsTest : public ::testing::Test {
 protected:
  Report verify_(const char* extra) {
    verifier_.add_source(examples::kValveSource);
    verifier_.add_source(extra);
    return verifier_.verify_all();
  }
  Verifier verifier_;
};

TEST_F(ClaimsTest, MultipleClaimsCheckedIndependently) {
  const Report report = verify_(R"py(
@claim("G (a.open -> F a.close)")
@claim("F a.open")
@sys(["a"])
class TwoClaims:
    def __init__(self):
        self.a = Valve()

    @op_initial_final
    def go(self):
        match self.a.test():
            case ["open"]:
                self.a.open()
                self.a.close()
                return []
            case ["clean"]:
                self.a.clean()
                return []
)py");
  // First claim holds on every trace; the second fails (the clean path and
  // the empty trace never open the valve).
  const ClassReport& cls = report.classes.back();
  ASSERT_EQ(cls.check.claim_errors.size(), 1u);
  EXPECT_EQ(cls.check.claim_errors[0].formula, "F a.open");
}

TEST_F(ClaimsTest, ClaimOverOperationLabels) {
  // Atoms name the composite's own operations: checked against the
  // unprojected system language, so `go` appears in the trace.
  const Report report = verify_(R"py(
@claim("F go")
@sys(["a"])
class OpClaim:
    def __init__(self):
        self.a = Valve()

    @op_initial_final
    def go(self):
        match self.a.test():
            case ["open"]:
                self.a.open()
                self.a.close()
                return []
            case ["clean"]:
                self.a.clean()
                return []
)py");
  const ClassReport& cls = report.classes.back();
  // The empty usage violates F go.
  ASSERT_EQ(cls.check.claim_errors.size(), 1u);
  EXPECT_TRUE(cls.check.claim_errors[0].counterexample.empty());
}

TEST_F(ClaimsTest, MixedOpAndEventAtoms) {
  const Report report = verify_(R"py(
@claim("G (go -> X a.test)")
@sys(["a"])
class Mixed:
    def __init__(self):
        self.a = Valve()

    @op_initial_final
    def go(self):
        match self.a.test():
            case ["open"]:
                self.a.open()
                self.a.close()
                return []
            case ["clean"]:
                self.a.clean()
                return []
)py");
  // Every go is immediately followed by a.test: holds.
  EXPECT_TRUE(report.classes.back().check.claim_errors.empty());
}

TEST_F(ClaimsTest, WeakNextClaimAboutTermination) {
  const Report report = verify_(R"py(
@claim("G (a.clean -> N false)")
@sys(["a"])
class CleanIsLast:
    def __init__(self):
        self.a = Valve()

    @op_initial_final
    def go(self):
        match self.a.test():
            case ["open"]:
                self.a.open()
                self.a.close()
                return []
            case ["clean"]:
                self.a.clean()
                return []
)py");
  // a.clean is always the last event of a trace: N false holds only at the
  // final position, which is exactly where a.clean occurs.
  EXPECT_TRUE(report.classes.back().check.claim_errors.empty())
      << report.render(verifier_.symbols());
}

TEST_F(ClaimsTest, UntilClaim) {
  const Report report = verify_(R"py(
@claim("(!a.open) U a.test")
@sys(["a"])
class TestBeforeOpen:
    def __init__(self):
        self.a = Valve()

    @op_initial_final
    def go(self):
        match self.a.test():
            case ["open"]:
                self.a.open()
                self.a.close()
                return []
            case ["clean"]:
                self.a.clean()
                return []
)py");
  // The strong until requires a.test to eventually hold -- the empty trace
  // violates it.
  const ClassReport& cls = report.classes.back();
  ASSERT_EQ(cls.check.claim_errors.size(), 1u);
  EXPECT_TRUE(cls.check.claim_errors[0].counterexample.empty());
}

TEST_F(ClaimsTest, BadSectorBothClaimStylesAgree) {
  verifier_.add_source(examples::kBadSectorSource);
  verifier_.add_source(examples::kValveSource);
  const Report report = verifier_.verify_all();
  const ClassReport& bad = report.classes.front();
  ASSERT_EQ(bad.check.claim_errors.size(), 1u);
}

}  // namespace
}  // namespace shelley::core
