#include <gtest/gtest.h>

#include "paper_sources.hpp"
#include "shelley/automata.hpp"
#include "shelley/checker.hpp"
#include "upy/parser.hpp"

namespace shelley::core {
namespace {

class RealizabilityTest : public ::testing::Test {
 protected:
  /// Builds spec + system model for the LAST class in `source` (with Valve
  /// available as a subsystem class).
  std::optional<Word> witness_(const char* source) {
    const upy::Module valve = upy::parse_module(examples::kValveSource);
    specs_.push_back(extract_class_spec(valve.classes.at(0), diagnostics_));
    const upy::Module module = upy::parse_module(source);
    for (const upy::ClassDef& cls : module.classes) {
      specs_.push_back(extract_class_spec(cls, diagnostics_));
    }
    const ClassSpec& spec = specs_.back();
    const auto behaviors = extract_behaviors(spec, table_, diagnostics_);
    model_ = build_system_model(spec, behaviors, table_, diagnostics_);
    return unrealizable_usage(spec, *model_, table_);
  }

  std::deque<ClassSpec> specs_;
  std::optional<SystemModel> model_;
  SymbolTable table_;
  DiagnosticEngine diagnostics_;
};

TEST_F(RealizabilityTest, WellFormedCompositeIsFullyRealizable) {
  EXPECT_FALSE(witness_(examples::kBadSectorSource).has_value());
  // (BadSector misuses its subsystems, but every *declared* op-level usage
  // is executable -- realizability is a different property.)
}

TEST_F(RealizabilityTest, UndecodableReturnMakesUsageUnrealizable) {
  // The second exit of `go` is undecodable (returns a number), so the
  // declared successor path through exit 0 exists but exit 1's... actually
  // the spec drops the bad exit entirely; here we make a *reachable* exit
  // disappear: `stop` is declared reachable via go's exit, but go's only
  // decodable path loops forever on itself.
  const auto witness = witness_(R"py(
@sys(["a"])
class Gap:
    def __init__(self):
        self.a = Valve()

    @op_initial_final
    def go(self):
        if x:
            return 42
        return ["go"]
)py");
  // The undecodable return removes one exit; the remaining exit keeps the
  // contract realizable, so no witness here...
  EXPECT_FALSE(witness.has_value());
}

TEST_F(RealizabilityTest, DeadCodeExitIsDetected) {
  // The second return of `go` is dead code: the extraction still records
  // its exit (declaring successor "next"), but no execution can reach it.
  // The inference captures this precisely -- the exit's returned behavior
  // is ∅-prefixed -- so the declared usage [go, next] is unrealizable.
  const auto witness = witness_(R"py(
@sys(["a"])
class DeadExit:
    def __init__(self):
        self.a = Valve()

    @op_initial_final
    def go(self):
        return []
        return ["next"]

    @op_final
    def next(self):
        return []
)py");
  ASSERT_TRUE(witness.has_value());
  EXPECT_EQ(to_string(*witness, table_), "go, next");
}

TEST_F(RealizabilityTest, AllReturnsUndecodableShrinksBothLanguages) {
  // When every return is undecodable the op has no exits in the *spec*
  // either, so the declared and realizable languages agree (both {ε}):
  // no realizability gap, just the decode errors.
  const auto witness = witness_(R"py(
@sys(["a"])
class NoExit:
    def __init__(self):
        self.a = Valve()

    @op_initial_final
    def solo(self):
        return 42
)py");
  EXPECT_FALSE(witness.has_value());
  EXPECT_TRUE(diagnostics_.has_errors());  // the undecodable return
}

TEST_F(RealizabilityTest, GoodSectorIsFullyRealizable) {
  EXPECT_FALSE(witness_(examples::kGoodSectorSource).has_value());
}

}  // namespace
}  // namespace shelley::core
