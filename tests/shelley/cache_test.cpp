// The on-disk behavior cache (shelley/cache.hpp): round trips, counters,
// atomicity, and -- most importantly -- the adversarial surface: truncated,
// bit-flipped, version-skewed, and renamed entries must degrade to misses,
// never crash and never replay stale data.
#include "shelley/cache.hpp"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <random>
#include <set>
#include <sstream>
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "fsm/dfa.hpp"
#include "fsm/table.hpp"
#include "shelley/fingerprint.hpp"
#include "shelley/verifier.hpp"
#include "support/hash.hpp"
#include "testing.hpp"
#include "upy/ast.hpp"

namespace shelley::core {
namespace {

namespace fs = std::filesystem;

/// A fresh, empty cache directory per test.
std::string fresh_dir(const char* name) {
  const fs::path dir = fs::path(::testing::TempDir()) / "shelley_cache" / name;
  fs::remove_all(dir);
  return dir.string();
}

CachedVerdict sample_verdict() {
  CachedVerdict verdict;
  verdict.class_name = "Sector";
  verdict.is_composite = true;
  verdict.invocation_errors = 1;
  verdict.lint_findings = 2;
  verdict.subsystem_errors.push_back(
      {"a", "Valve", {"test", "open"}, "(not final)"});
  verdict.claim_errors.push_back({"(!a.open) W b.open", {"a.test", "a.open"}});
  verdict.diagnostics.push_back({1, 12, 5, "invalid subsystem usage"});
  return verdict;
}

support::Digest128 key_of(const char* text) {
  return support::hash_bytes(text);
}

std::string read_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  std::stringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

void write_file(const std::string& path, std::string_view bytes) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(Cache, VerdictRoundTrip) {
  BehaviorCache cache(fresh_dir("verdict_round_trip"));
  const auto key = key_of("Sector");
  const CachedVerdict stored = sample_verdict();
  ASSERT_TRUE(cache.store_verdict(key, stored));

  const auto loaded = cache.load_verdict(key);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->class_name, "Sector");
  EXPECT_TRUE(loaded->is_composite);
  EXPECT_EQ(loaded->invocation_errors, 1u);
  EXPECT_EQ(loaded->lint_findings, 2u);
  ASSERT_EQ(loaded->subsystem_errors.size(), 1u);
  EXPECT_EQ(loaded->subsystem_errors[0].field, "a");
  EXPECT_EQ(loaded->subsystem_errors[0].class_name, "Valve");
  EXPECT_EQ(loaded->subsystem_errors[0].counterexample,
            (std::vector<std::string>{"test", "open"}));
  EXPECT_EQ(loaded->subsystem_errors[0].detail, "(not final)");
  ASSERT_EQ(loaded->claim_errors.size(), 1u);
  EXPECT_EQ(loaded->claim_errors[0].formula, "(!a.open) W b.open");
  ASSERT_EQ(loaded->diagnostics.size(), 1u);
  EXPECT_EQ(loaded->diagnostics[0].severity, 1);
  EXPECT_EQ(loaded->diagnostics[0].line, 12u);
  EXPECT_EQ(loaded->diagnostics[0].column, 5u);
  EXPECT_EQ(loaded->diagnostics[0].message, "invalid subsystem usage");

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.stores, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.invalidations, 0u);
}

TEST(Cache, AbsentEntryIsAMiss) {
  BehaviorCache cache(fresh_dir("absent"));
  EXPECT_FALSE(cache.load_verdict(key_of("nothing")).has_value());
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.invalidations, 0u);
}

TEST(Cache, TruncationAtEveryLengthDegradesToMiss) {
  BehaviorCache cache(fresh_dir("truncation"));
  const auto key = key_of("Sector");
  ASSERT_TRUE(cache.store_verdict(key, sample_verdict()));
  const std::string path =
      cache.entry_path(key, BehaviorCache::Kind::kVerdict);
  const std::string intact = read_file(path);
  ASSERT_FALSE(intact.empty());

  for (std::size_t cut = 0; cut < intact.size(); ++cut) {
    write_file(path, std::string_view(intact).substr(0, cut));
    EXPECT_FALSE(cache.load_verdict(key).has_value())
        << "prefix of " << cut << " bytes replayed";
  }
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.invalidations, intact.size());
}

TEST(Cache, EveryBitFlipDegradesToMiss) {
  BehaviorCache cache(fresh_dir("bit_flips"));
  const auto key = key_of("Sector");
  ASSERT_TRUE(cache.store_verdict(key, sample_verdict()));
  const std::string path =
      cache.entry_path(key, BehaviorCache::Kind::kVerdict);
  const std::string intact = read_file(path);

  for (std::size_t byte = 0; byte < intact.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = intact;
      corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1 << bit));
      write_file(path, corrupt);
      EXPECT_FALSE(cache.load_verdict(key).has_value())
          << "flip of byte " << byte << " bit " << bit << " replayed";
    }
  }
}

TEST(Cache, VersionSkewDegradesToMiss) {
  BehaviorCache cache(fresh_dir("version_skew"));
  const auto key = key_of("Sector");
  ASSERT_TRUE(cache.store_verdict(key, sample_verdict()));
  const std::string path =
      cache.entry_path(key, BehaviorCache::Kind::kVerdict);
  std::string image = read_file(path);
  // The u32 format version sits right after the 4-byte magic.
  image[4] = static_cast<char>(kCacheFormatVersion + 1);
  write_file(path, image);
  EXPECT_FALSE(cache.load_verdict(key).has_value());
  EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST(Cache, RenamedEntryDegradesToMiss) {
  // A valid entry copied under a different key must be rejected by the
  // embedded-key check -- content addressing, not name addressing.
  BehaviorCache cache(fresh_dir("renamed"));
  const auto key = key_of("Sector");
  const auto other = key_of("Valve");
  ASSERT_TRUE(cache.store_verdict(key, sample_verdict()));
  fs::copy_file(cache.entry_path(key, BehaviorCache::Kind::kVerdict),
                cache.entry_path(other, BehaviorCache::Kind::kVerdict));
  EXPECT_FALSE(cache.load_verdict(other).has_value());
  EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST(Cache, WrongKindDegradesToMiss) {
  BehaviorCache cache(fresh_dir("wrong_kind"));
  const auto key = key_of("Sector");
  // An artifact image placed at the verdict path: framing kind mismatch.
  const std::string image = BehaviorCache::encode_file(
      key, BehaviorCache::Kind::kArtifact, "MODULE main");
  write_file(cache.entry_path(key, BehaviorCache::Kind::kVerdict), image);
  EXPECT_FALSE(cache.load_verdict(key).has_value());
  EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST(Cache, StoreLeavesNoTempFiles) {
  const std::string dir = fresh_dir("atomic");
  BehaviorCache cache(dir);
  ASSERT_TRUE(cache.store_verdict(key_of("Sector"), sample_verdict()));
  ASSERT_TRUE(cache.store_artifact(key_of("smv"), "MODULE main"));
  std::size_t entries = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    EXPECT_EQ(name.find(".tmp"), std::string::npos) << name;
    ++entries;
  }
  EXPECT_EQ(entries, 2u);
}

TEST(Cache, DfaRoundTrip) {
  BehaviorCache cache(fresh_dir("dfa"));
  SymbolTable table;
  const Symbol ping = table.intern("ping");
  fsm::Dfa dfa(2, {ping});
  dfa.set_transition(0, 0, 1);
  dfa.set_transition(1, 0, 1);
  dfa.set_accepting(1, true);

  const auto key = key_of("Pinger");
  ASSERT_TRUE(cache.store_dfa(key, dfa, table));

  SymbolTable other;
  other.intern("unrelated");
  const auto loaded = cache.load_dfa(key, other);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->accepts(shelley::testing::word(other, {"ping"})));
  EXPECT_FALSE(
      loaded->accepts(shelley::testing::word(other, {"ping", "ping", "x"})));
}

TEST(Cache, CorruptDfaPayloadDegradesToMiss) {
  // A well-framed entry whose *payload* is not a DFA: framing passes (the
  // digest matches the garbage), the decoder rejects, and the hit is
  // re-counted as an invalidation.
  BehaviorCache cache(fresh_dir("dfa_corrupt"));
  const auto key = key_of("Pinger");
  const std::string image = BehaviorCache::encode_file(
      key, BehaviorCache::Kind::kDfa, "not a dfa");
  write_file(cache.entry_path(key, BehaviorCache::Kind::kDfa), image);
  SymbolTable table;
  EXPECT_FALSE(cache.load_dfa(key, table).has_value());
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.invalidations, 1u);
}

TEST(Cache, CompiledTableRoundTrip) {
  BehaviorCache cache(fresh_dir("table"));
  SymbolTable table;
  const Symbol ping = table.intern("ping");
  fsm::Dfa dfa(2, {ping});
  dfa.set_transition(0, 0, 1);
  dfa.set_transition(1, 0, 1);
  dfa.set_accepting(1, true);
  const fsm::CompiledDfa compiled = fsm::CompiledDfa::compile(dfa, table);

  const auto key = key_of("Pinger");
  ASSERT_TRUE(cache.store_table(key, compiled));

  SymbolTable other;
  other.intern("unrelated");
  const auto loaded = cache.load_table(key, other);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->cells(), compiled.cells());
  EXPECT_EQ(loaded->event_names(), compiled.event_names());
  EXPECT_EQ(loaded->to_bytes(), compiled.to_bytes());
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.stores, 1u);
}

TEST(Cache, TableKindIsDistinctFromDfaKind) {
  // A stored table must not answer a DFA load of the same key (and vice
  // versa): the kind is part of the entry identity.
  BehaviorCache cache(fresh_dir("table_kind"));
  SymbolTable table;
  const Symbol ping = table.intern("ping");
  fsm::Dfa dfa(1, {ping});
  dfa.set_transition(0, 0, 0);
  dfa.set_accepting(0, true);
  const auto key = key_of("Pinger");
  ASSERT_TRUE(cache.store_table(key, fsm::CompiledDfa::compile(dfa, table)));
  SymbolTable scratch;
  EXPECT_FALSE(cache.load_dfa(key, scratch).has_value());
  EXPECT_TRUE(cache.load_table(key, scratch).has_value());
}

TEST(Cache, CorruptTablePayloadDegradesToMiss) {
  // Well-framed entry, garbage payload: framing passes, the table decoder
  // rejects, and the hit is re-counted as an invalidation.
  BehaviorCache cache(fresh_dir("table_corrupt"));
  const auto key = key_of("Pinger");
  const std::string image = BehaviorCache::encode_file(
      key, BehaviorCache::Kind::kTable, "not a compiled table");
  write_file(cache.entry_path(key, BehaviorCache::Kind::kTable), image);
  SymbolTable table;
  EXPECT_FALSE(cache.load_table(key, table).has_value());
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.invalidations, 1u);
}

TEST(Cache, TableTruncationAndBitFlipsDegradeToCountedMisses) {
  // The full adversarial sweep over the on-disk image: every truncation
  // and every bit flip must load as nullopt (a miss or a counted
  // invalidation), never crash, never replay garbage.
  SymbolTable table;
  const Symbol a = table.intern("a");
  const Symbol b = table.intern("b");
  fsm::Dfa dfa(3, {a, b});
  dfa.set_transition(0, 0, 1);
  dfa.set_transition(0, 1, 2);
  dfa.set_transition(1, 0, 2);
  dfa.set_transition(1, 1, 0);
  dfa.set_transition(2, 0, 2);
  dfa.set_transition(2, 1, 2);
  dfa.set_accepting(2, true);
  const fsm::CompiledDfa compiled = fsm::CompiledDfa::compile(dfa, table);
  const auto key = key_of("Flipper");

  std::string image;
  {
    BehaviorCache cache(fresh_dir("table_image"));
    ASSERT_TRUE(cache.store_table(key, compiled));
    image = read_file(cache.entry_path(key, BehaviorCache::Kind::kTable));
  }

  BehaviorCache cache(fresh_dir("table_adversarial"));
  const std::string path =
      cache.entry_path(key, BehaviorCache::Kind::kTable);
  std::uint64_t rejected = 0;
  for (std::size_t length = 0; length < image.size(); length += 7) {
    write_file(path, image.substr(0, length));
    SymbolTable scratch;
    if (!cache.load_table(key, scratch).has_value()) ++rejected;
  }
  for (std::size_t bit = 0; bit < image.size() * 8; bit += 11) {
    std::string mutated = image;
    mutated[bit / 8] = static_cast<char>(
        static_cast<unsigned char>(mutated[bit / 8]) ^ (1u << (bit % 8)));
    write_file(path, mutated);
    SymbolTable scratch;
    (void)cache.load_table(key, scratch);  // must not crash
  }
  EXPECT_GT(rejected, 0u);
  // The pristine image still loads after the storm.
  write_file(path, image);
  SymbolTable scratch;
  const auto loaded = cache.load_table(key, scratch);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->cells(), compiled.cells());
}

TEST(Cache, ArtifactRoundTripPreservesBytes) {
  BehaviorCache cache(fresh_dir("artifact"));
  const std::string smv = "MODULE main\nVAR s : {a, b};\n\x01\x02\xff";
  ASSERT_TRUE(cache.store_artifact(key_of("smv"), smv));
  const auto loaded = cache.load_artifact(key_of("smv"));
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, smv);
}

TEST(Cache, OverwriteReplacesEntry) {
  BehaviorCache cache(fresh_dir("overwrite"));
  const auto key = key_of("Sector");
  CachedVerdict verdict = sample_verdict();
  ASSERT_TRUE(cache.store_verdict(key, verdict));
  verdict.lint_findings = 99;
  ASSERT_TRUE(cache.store_verdict(key, verdict));
  const auto loaded = cache.load_verdict(key);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->lint_findings, 99u);
}

TEST(Cache, DecodeVerdictIsTotalOnRandomBytes) {
  // decode_verdict is the surface the fuzzer drives: any byte soup must
  // produce nullopt or a verdict, never UB or a crash.
  std::mt19937_64 rng(0xC0FFEE);
  for (int round = 0; round < 2000; ++round) {
    std::string bytes(rng() % 64, '\0');
    for (char& c : bytes) c = static_cast<char>(rng());
    (void)BehaviorCache::decode_verdict(bytes);
  }
  // A legitimate encoding still decodes after the storm.
  const auto ok =
      BehaviorCache::decode_verdict(
          BehaviorCache::encode_verdict(sample_verdict()));
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->class_name, "Sector");
}

TEST(Cache, DecodeVerdictRejectsImplausibleCounts) {
  // A forged count field must be rejected before any giant allocation.
  std::string payload = BehaviorCache::encode_verdict(sample_verdict());
  // subsystem count is the u64 after name (8+6), composite (1), and the two
  // u64 counters: offset 8 + 6 + 1 + 8 + 8 = 31.
  for (int i = 0; i < 8; ++i) payload[31 + i] = '\xff';
  EXPECT_FALSE(BehaviorCache::decode_verdict(payload).has_value());
}

TEST(Cache, ThrowsWhenDirectoryCannotBeCreated) {
  const std::string dir = fresh_dir("not_a_dir");
  fs::create_directories(fs::path(dir).parent_path());
  write_file(dir, "a plain file where the cache dir should go");
  EXPECT_THROW({ BehaviorCache cache(dir); }, std::runtime_error);
}

// -- Fingerprint sensitivity -------------------------------------------------
//
// The cache key walks the whole annotated AST; these tests drive every node
// kind through the walk and check that any one-token change lands in a
// different key (a collision here would mean a stale cache hit).

support::Digest128 fingerprint_of(std::string_view source) {
  Verifier verifier;
  verifier.add_source(source);
  return spec_fingerprint(verifier.classes().front());
}

// One class whose single operation touches every expression and statement
// kind the fingerprint walks: assignments over string/bool/None/number/
// list/tuple/unary/binary/subscript/attribute expressions, while with
// break, for with continue, try/except/finally, raise, pass, and a bare
// expression statement.
constexpr std::string_view kSinkTemplate = R"(@sys
class Sink:
    @op_initial_final
    def churn(self):
        label = "name"
        flag = True
        empty = None
        total = 1 + 2
        items = [1, 2]
        pair = (total, flag)
        neg = -total
        head = items[0]
        attr = self.field
        ping()
        while flag:
            break
        for item in items:
            continue
        try:
            raise head
        except:
            pass
        finally:
            pass
        return ["churn"]
)";

TEST(Fingerprint, KitchenSinkIsDeterministic) {
  EXPECT_EQ(fingerprint_of(kSinkTemplate), fingerprint_of(kSinkTemplate));
}

TEST(Fingerprint, EveryNodeKindFeedsTheKey) {
  // Each entry is (needle, replacement): a one-token edit inside one node
  // kind.  All edits -- and the original -- must hash differently.
  const std::pair<std::string_view, std::string_view> edits[] = {
      {"\"name\"", "\"mane\""},          // string literal
      {"True", "False"},                 // bool literal
      {"empty = None", "empty = label"}, // None vs name
      {"1 + 2", "1 - 2"},                // binary operator
      {"[1, 2]", "[1, 3]"},              // number inside a list
      {"(total, flag)", "(flag, total)"},// tuple element order
      {"-total", "-head"},               // unary operand
      {"items[0]", "items[1]"},          // subscript index
      {"self.field", "self.other"},      // attribute name
      {"ping()", "pong()"},              // call in an expr statement
      {"while flag", "while neg"},       // while condition
      {"for item in items", "for item in pair"},  // for iterable
      {"raise head", "raise attr"},      // raise value
      {"break", "continue"},             // loop-control statement kind
  };
  std::set<std::string> seen;
  seen.insert(support::to_hex(fingerprint_of(kSinkTemplate)));
  for (const auto& [needle, replacement] : edits) {
    std::string edited(kSinkTemplate);
    const std::size_t at = edited.find(needle);
    ASSERT_NE(at, std::string::npos) << needle;
    edited.replace(at, needle.size(), replacement);
    const bool fresh =
        seen.insert(support::to_hex(fingerprint_of(edited))).second;
    EXPECT_TRUE(fresh) << "edit '" << needle << "' -> '" << replacement
                       << "' did not change the fingerprint";
  }
  EXPECT_EQ(seen.size(), 1 + std::size(edits));
}

TEST(Fingerprint, NullExprAndNullStmtAreTagged) {
  // The walker tags absent nodes (bare `return`, a null statement slot)
  // instead of skipping them, so they cannot alias a shorter body.
  ClassSpec spec;
  spec.name = "Synthetic";
  Operation op;
  op.name = "go";
  op.body.push_back(nullptr);  // null statement
  auto bare_return = std::make_shared<upy::Stmt>();
  bare_return->node = upy::ReturnStmt{nullptr};  // null expression
  op.body.push_back(bare_return);
  spec.operations.push_back(op);
  const support::Digest128 with_nulls = spec_fingerprint(spec);

  ClassSpec shorter = spec;
  shorter.operations.front().body.pop_back();
  EXPECT_NE(with_nulls, spec_fingerprint(shorter));
  EXPECT_EQ(with_nulls, spec_fingerprint(spec));
}

TEST(Fingerprint, SubsystemCycleTerminatesWithDistinctKeys) {
  // Mutually recursive subsystems are malformed input (diagnosed by the
  // frontend) but the key fold must still terminate, deterministically.
  constexpr std::string_view source = R"(@sys(["b"])
class A:
    def __init__(self):
        self.b = B()
    @op_initial_final
    def run(self):
        return ["run"]

@sys(["a"])
class B:
    def __init__(self):
        self.a = A()
    @op_initial_final
    def run(self):
        return ["run"]
)";
  Verifier verifier;
  verifier.add_source(source);
  const support::Digest128 key_a =
      verifier.cache_key(*verifier.find_class("A"));
  const support::Digest128 key_b =
      verifier.cache_key(*verifier.find_class("B"));
  EXPECT_NE(key_a, key_b);

  Verifier again;
  again.add_source(source);
  EXPECT_EQ(key_a, again.cache_key(*again.find_class("A")));
}

}  // namespace
}  // namespace shelley::core
