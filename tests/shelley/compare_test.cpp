#include "shelley/compare.hpp"

#include <gtest/gtest.h>

#include "paper_sources.hpp"
#include "upy/parser.hpp"

namespace shelley::core {
namespace {

class CompareTest : public ::testing::Test {
 protected:
  ClassSpec extract_(const char* source) {
    const upy::Module module = upy::parse_module(source);
    return extract_class_spec(module.classes.at(0), diagnostics_);
  }

  SymbolTable table_;
  DiagnosticEngine diagnostics_;
};

TEST_F(CompareTest, SpecEqualsItself) {
  const ClassSpec valve = extract_(examples::kValveSource);
  EXPECT_FALSE(compare_specs(valve, valve, table_).has_value());
}

TEST_F(CompareTest, StructurallyDifferentButLanguageEqual) {
  // Two exits with the same successor list vs a single exit: same usages.
  const ClassSpec split = extract_(R"py(
@sys
class A:
    @op_initial
    def go(self):
        if x:
            return ["stop"]
        else:
            return ["stop"]

    @op_final
    def stop(self):
        return []
)py");
  const ClassSpec merged = extract_(R"py(
@sys
class B:
    @op_initial
    def go(self):
        return ["stop"]

    @op_final
    def stop(self):
        return []
)py");
  EXPECT_FALSE(compare_specs(split, merged, table_).has_value());
}

TEST_F(CompareTest, FinalityDifferenceDetected) {
  const ClassSpec strict = extract_(R"py(
@sys
class A:
    @op_initial
    def go(self):
        return ["stop"]

    @op_final
    def stop(self):
        return []
)py");
  const ClassSpec lax = extract_(R"py(
@sys
class B:
    @op_initial_final
    def go(self):
        return ["stop"]

    @op_final
    def stop(self):
        return []
)py");
  const auto difference = compare_specs(strict, lax, table_);
  ASSERT_TRUE(difference.has_value());
  // [go] alone is valid only for the lax spec.
  EXPECT_FALSE(difference->in_first);
  EXPECT_EQ(to_string(difference->witness, table_), "go");
}

TEST_F(CompareTest, ExtraSuccessorDetectedWithShortestWitness) {
  const ClassSpec narrow = extract_(R"py(
@sys
class A:
    @op_initial_final
    def go(self):
        return []
)py");
  const ClassSpec wide = extract_(R"py(
@sys
class B:
    @op_initial_final
    def go(self):
        return ["go"]
)py");
  const auto difference = compare_specs(narrow, wide, table_);
  ASSERT_TRUE(difference.has_value());
  EXPECT_FALSE(difference->in_first);
  EXPECT_EQ(to_string(difference->witness, table_), "go, go");
}

TEST_F(CompareTest, WitnessDirectionFlagIsCorrect) {
  const ClassSpec wide = extract_(R"py(
@sys
class B:
    @op_initial_final
    def go(self):
        return ["go"]
)py");
  const ClassSpec narrow = extract_(R"py(
@sys
class A:
    @op_initial_final
    def go(self):
        return []
)py");
  const auto difference = compare_specs(wide, narrow, table_);
  ASSERT_TRUE(difference.has_value());
  EXPECT_TRUE(difference->in_first);
}

}  // namespace
}  // namespace shelley::core
