// The parallel verifier must be observationally identical to the serial
// one: same report, same diagnostics text, and -- because symbol ids leak
// into alphabet order and witness tie-breaking -- the exact same symbol
// table contents, regardless of the worker count or scheduling.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "paper_sources.hpp"
#include "shelley/verifier.hpp"

namespace shelley::core {
namespace {

struct Observed {
  std::vector<std::string> class_lines;  // "name:ok" per report entry
  std::string report_render;
  std::string diagnostics_render;
  std::vector<std::string> symbols;  // interned strings, in id order
  bool ok = false;
};

Observed run_verification(std::size_t jobs) {
  Verifier verifier;
  verifier.add_source(examples::kValveSource);
  verifier.add_source(examples::kBadSectorSource);
  verifier.add_source(examples::kSectorSource);
  verifier.add_source(examples::kGoodSectorSource);
  const Report report =
      jobs == 0 ? verifier.verify_all() : verifier.verify_all(jobs);

  Observed out;
  for (const ClassReport& cls : report.classes) {
    out.class_lines.push_back(cls.class_name +
                              (cls.ok() ? ":ok" : ":failed"));
  }
  out.report_render = report.render(verifier.symbols());
  out.diagnostics_render = verifier.diagnostics().render();
  for (std::uint32_t id = 0; id < verifier.symbols().size(); ++id) {
    out.symbols.push_back(verifier.symbols().name(Symbol{id}));
  }
  out.ok = report.ok();
  return out;
}

void expect_identical(const Observed& a, const Observed& b) {
  EXPECT_EQ(a.class_lines, b.class_lines);
  EXPECT_EQ(a.report_render, b.report_render);
  EXPECT_EQ(a.diagnostics_render, b.diagnostics_render);
  EXPECT_EQ(a.symbols, b.symbols);
  EXPECT_EQ(a.ok, b.ok);
}

TEST(ParallelVerifier, SerialEntryPointsAgree) {
  expect_identical(run_verification(0), run_verification(1));
}

TEST(ParallelVerifier, ParallelMatchesSerialByteForByte) {
  const Observed serial = run_verification(0);
  expect_identical(serial, run_verification(2));
  expect_identical(serial, run_verification(4));
}

TEST(ParallelVerifier, MoreJobsThanClasses) {
  expect_identical(run_verification(0), run_verification(64));
}

TEST(ParallelVerifier, DeterministicAcrossRuns) {
  const Observed first = run_verification(4);
  for (int round = 0; round < 8; ++round) {
    expect_identical(first, run_verification(4));
  }
}

TEST(ParallelVerifier, ReportsFailuresFromWorkers) {
  const Observed parallel = run_verification(4);
  // BadSector must fail (the paper's invalid example); Sector and
  // GoodSector pass.
  ASSERT_EQ(parallel.class_lines.size(), 4u);
  EXPECT_EQ(parallel.class_lines[0], "Valve:ok");
  EXPECT_EQ(parallel.class_lines[1], "BadSector:failed");
  EXPECT_EQ(parallel.class_lines[2], "Sector:ok");
  EXPECT_EQ(parallel.class_lines[3], "GoodSector:ok");
  EXPECT_FALSE(parallel.ok);
  EXPECT_NE(parallel.report_render.find("INVALID SUBSYSTEM USAGE"),
            std::string::npos);
}

}  // namespace
}  // namespace shelley::core
