#include "shelley/graph.hpp"

#include <gtest/gtest.h>

#include "paper_sources.hpp"
#include "upy/parser.hpp"

namespace shelley::core {
namespace {

class GraphTest : public ::testing::Test {
 protected:
  ClassSpec extract_(const char* source, std::size_t index = 0) {
    const upy::Module module = upy::parse_module(source);
    return extract_class_spec(module.classes.at(index), diagnostics_);
  }
  DiagnosticEngine diagnostics_;
};

// Section 3.1 spells out the graph for Listing 3.1 (class Sector) in full:
// 4 entry nodes; open_a has 2 exit nodes; exits link to the entries of the
// methods they return.
TEST_F(GraphTest, SectorGraphMatchesSection31) {
  const ClassSpec spec = extract_(examples::kSectorSource);
  const DependencyGraph graph = DependencyGraph::build(spec, diagnostics_);
  EXPECT_FALSE(diagnostics_.has_errors());

  // 4 entries + exits: open_a 2, clean_a 1, close_a 1, open_b 2 = 10 nodes.
  EXPECT_EQ(graph.nodes().size(), 10u);
  std::size_t entries = 0;
  for (const DependencyNode& node : graph.nodes()) {
    if (node.type == DependencyNode::Type::kEntry) ++entries;
  }
  EXPECT_EQ(entries, 4u);

  // Edges: entry->exit one per exit (6) plus exit->entry per successor:
  // open_a/0 -> close_a, open_b (2); open_a/1 -> clean_a (1);
  // clean_a/0 -> open_a (1); close_a/0 -> open_a (1); open_b exits: none.
  EXPECT_EQ(graph.edges().size(), 6u + 5u);

  // Exit node (A) of open_a links to close_a and open_b, exactly as in the
  // paper's §3.1 walkthrough.
  const std::size_t exit_a = graph.exits_of("open_a").at(0);
  const std::size_t close_entry = graph.entry_of("close_a");
  const std::size_t open_b_entry = graph.entry_of("open_b");
  bool links_close = false;
  bool links_open_b = false;
  for (const DependencyEdge& edge : graph.edges()) {
    if (edge.from == exit_a && edge.to == close_entry) links_close = true;
    if (edge.from == exit_a && edge.to == open_b_entry) links_open_b = true;
  }
  EXPECT_TRUE(links_close);
  EXPECT_TRUE(links_open_b);
}

TEST_F(GraphTest, SingleEntryNodePerMethod) {
  const ClassSpec spec = extract_(examples::kValveSource);
  const DependencyGraph graph = DependencyGraph::build(spec, diagnostics_);
  for (const Operation& op : spec.operations) {
    EXPECT_NE(graph.entry_of(op.name), DependencyGraph::npos);
    EXPECT_EQ(graph.exits_of(op.name).size(), op.exits.size());
  }
}

TEST_F(GraphTest, UnknownSuccessorReportsError) {
  const ClassSpec spec = extract_(R"py(
@sys
class C:
    @op_initial_final
    def m(self):
        return ["nonexistent"]
)py");
  DependencyGraph::build(spec, diagnostics_);
  EXPECT_TRUE(diagnostics_.has_errors());
}

TEST_F(GraphTest, ReachableOperationsFromInitial) {
  const ClassSpec spec = extract_(examples::kValveSource);
  const DependencyGraph graph = DependencyGraph::build(spec, diagnostics_);
  const auto reachable = graph.reachable_operations(spec);
  EXPECT_EQ(reachable.size(), 4u);  // all valve ops are reachable
}

TEST_F(GraphTest, UnreachableOperationIsNotListed) {
  const ClassSpec spec = extract_(R"py(
@sys
class C:
    @op_initial_final
    def m(self):
        return ["m"]

    @op_final
    def orphan(self):
        return []
)py");
  const DependencyGraph graph = DependencyGraph::build(spec, diagnostics_);
  const auto reachable = graph.reachable_operations(spec);
  EXPECT_EQ(reachable, (std::vector<std::string>{"m"}));
}

// The graph arcs can form cycles (Valve's test -> open -> close -> test);
// every traversal below must terminate and count each operation once.
TEST_F(GraphTest, OperationCycleTerminatesAndReachesAllMembers) {
  const ClassSpec spec = extract_(R"py(
@sys
class Ring:
    @op_initial
    def a(self):
        return ["b"]

    @op
    def b(self):
        return ["c"]

    @op_final
    def c(self):
        return ["a"]
)py");
  const DependencyGraph graph = DependencyGraph::build(spec, diagnostics_);
  EXPECT_FALSE(diagnostics_.has_errors());
  const auto reachable = graph.reachable_operations(spec);
  EXPECT_EQ(reachable.size(), 3u);
}

TEST_F(GraphTest, SelfLoopIsASingleEdgePair) {
  const ClassSpec spec = extract_(R"py(
@sys
class Loop:
    @op_initial_final
    def m(self):
        return ["m"]
)py");
  const DependencyGraph graph = DependencyGraph::build(spec, diagnostics_);
  EXPECT_FALSE(diagnostics_.has_errors());
  // entry -> exit, exit -> entry: the tightest possible cycle.
  EXPECT_EQ(graph.nodes().size(), 2u);
  EXPECT_EQ(graph.edges().size(), 2u);
  EXPECT_EQ(graph.reachable_operations(spec),
            std::vector<std::string>{"m"});
}

// A missing successor drops only its own arc: the graph keeps the other
// edges, so one bad return does not disconnect the class (mirrors the
// engine's per-file fault isolation).
TEST_F(GraphTest, MissingSuccessorKeepsTheRemainingEdges) {
  const ClassSpec spec = extract_(R"py(
@sys
class C:
    @op_initial_final
    def m(self):
        return ["nonexistent", "n"]

    @op_final
    def n(self):
        return []
)py");
  const DependencyGraph graph = DependencyGraph::build(spec, diagnostics_);
  EXPECT_TRUE(diagnostics_.has_errors());
  // entry(m) -> exit(m), exit(m) -> entry(n), entry(n) -> exit(n); the
  // arc to the unknown successor is skipped, not fabricated.
  EXPECT_EQ(graph.edges().size(), 3u);
  const auto reachable = graph.reachable_operations(spec);
  EXPECT_EQ(reachable, (std::vector<std::string>{"m", "n"}));
}

TEST_F(GraphTest, EntryOfUnknownOperationIsNpos) {
  const ClassSpec spec = extract_(examples::kValveSource);
  const DependencyGraph graph = DependencyGraph::build(spec, diagnostics_);
  EXPECT_EQ(graph.entry_of("nonexistent"), DependencyGraph::npos);
  EXPECT_TRUE(graph.exits_of("nonexistent").empty());
}

TEST_F(GraphTest, NodeLabels) {
  const ClassSpec spec = extract_(examples::kValveSource);
  const DependencyGraph graph = DependencyGraph::build(spec, diagnostics_);
  EXPECT_EQ(graph.nodes()[graph.entry_of("test")].label(), "test");
  EXPECT_EQ(graph.nodes()[graph.exits_of("test")[1]].label(), "test/exit1");
}

}  // namespace
}  // namespace shelley::core
