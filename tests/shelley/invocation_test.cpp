#include "shelley/invocation.hpp"

#include <gtest/gtest.h>

#include "paper_sources.hpp"
#include "upy/parser.hpp"

namespace shelley::core {
namespace {

class InvocationTest : public ::testing::Test {
 protected:
  /// Registers Valve plus `source`, then runs the invocation analysis on
  /// the LAST class of `source`.
  std::size_t analyze_(const char* source) {
    upy::Module valve = upy::parse_module(examples::kValveSource);
    specs_.push_back(extract_class_spec(valve.classes.at(0), diagnostics_));
    const upy::Module module = upy::parse_module(source);
    for (const upy::ClassDef& cls : module.classes) {
      specs_.push_back(extract_class_spec(cls, diagnostics_));
    }
    const ClassLookup lookup = [this](const std::string& name) ->
        const ClassSpec* {
      for (const ClassSpec& spec : specs_) {
        if (spec.name == name) return &spec;
      }
      return nullptr;
    };
    return analyze_invocations(specs_.back(), lookup, diagnostics_);
  }

  std::deque<ClassSpec> specs_;
  DiagnosticEngine diagnostics_;
};

TEST_F(InvocationTest, BadSectorPassesInvocationAnalysis) {
  // BadSector's bug is behavioral, not syntactic: invocation analysis is
  // clean; the usage checker finds the problem.
  EXPECT_EQ(analyze_(examples::kBadSectorSource), 0u);
}

TEST_F(InvocationTest, UndeclaredMethodIsError) {
  const std::size_t errors = analyze_(R"py(
@sys(["a"])
class C:
    def __init__(self):
        self.a = Valve()

    @op_initial_final
    def m(self):
        self.a.explode()
        return []
)py");
  EXPECT_EQ(errors, 1u);
}

TEST_F(InvocationTest, HelperMethodCallIsError) {
  // __init__-only helpers are not @op operations; calling them is an error.
  const std::size_t errors = analyze_(R"py(
@sys(["a"])
class C:
    def __init__(self):
        self.a = Valve()

    @op_initial_final
    def m(self):
        self.a.__init__()
        return []
)py");
  EXPECT_EQ(errors, 1u);
}

TEST_F(InvocationTest, CallsOnUntrackedFieldsAreIgnored) {
  const std::size_t errors = analyze_(R"py(
@sys(["a"])
class C:
    def __init__(self):
        self.a = Valve()
        self.led = Pin(5, OUT)

    @op_initial_final
    def m(self):
        self.led.whatever()
        return []
)py");
  EXPECT_EQ(errors, 0u);
}

TEST_F(InvocationTest, ExhaustiveMatchIsClean) {
  const std::size_t errors = analyze_(R"py(
@sys(["a"])
class C:
    def __init__(self):
        self.a = Valve()

    @op_initial_final
    def m(self):
        match self.a.test():
            case ["open"]:
                self.a.open()
                self.a.close()
            case ["clean"]:
                self.a.clean()
        return []
)py");
  EXPECT_EQ(errors, 0u);
}

TEST_F(InvocationTest, NonExhaustiveMatchIsError) {
  const std::size_t errors = analyze_(R"py(
@sys(["a"])
class C:
    def __init__(self):
        self.a = Valve()

    @op_initial_final
    def m(self):
        match self.a.test():
            case ["open"]:
                self.a.open()
                self.a.close()
        return []
)py");
  EXPECT_EQ(errors, 1u);  // the ["clean"] exit is unhandled
}

TEST_F(InvocationTest, WildcardCoversRemainingExits) {
  const std::size_t errors = analyze_(R"py(
@sys(["a"])
class C:
    def __init__(self):
        self.a = Valve()

    @op_initial_final
    def m(self):
        match self.a.test():
            case ["open"]:
                self.a.open()
                self.a.close()
            case _:
                self.a.clean()
        return []
)py");
  EXPECT_EQ(errors, 0u);
}

TEST_F(InvocationTest, UnknownCasePatternIsWarningNotError) {
  const std::size_t errors = analyze_(R"py(
@sys(["a"])
class C:
    def __init__(self):
        self.a = Valve()

    @op_initial_final
    def m(self):
        match self.a.test():
            case ["open"]:
                self.a.open()
                self.a.close()
            case ["banana"]:
                pass
            case _:
                self.a.clean()
        return []
)py");
  EXPECT_EQ(errors, 0u);
  bool warned = false;
  for (const Diagnostic& diag : diagnostics_.diagnostics()) {
    if (diag.severity == Severity::kWarning &&
        diag.message.find("matches no exit point") != std::string::npos) {
      warned = true;
    }
  }
  EXPECT_TRUE(warned);
}

TEST_F(InvocationTest, DiscardedMultiExitCallIsError) {
  // §2.2 "Matching exit points": test has two exits; discarding its result
  // means neither exit is handled.
  const std::size_t errors = analyze_(R"py(
@sys(["a"])
class C:
    def __init__(self):
        self.a = Valve()

    @op_initial_final
    def m(self):
        self.a.test()
        self.a.open()
        self.a.close()
        return []
)py");
  EXPECT_EQ(errors, 1u);
}

TEST_F(InvocationTest, MultiExitCallInIfConditionIsAllowed) {
  const std::size_t errors = analyze_(R"py(
@sys(["a"])
class C:
    def __init__(self):
        self.a = Valve()

    @op_initial_final
    def m(self):
        if self.a.test() == ["open"]:
            self.a.open()
            self.a.close()
        else:
            self.a.clean()
        return []
)py");
  EXPECT_EQ(errors, 0u);
}

TEST_F(InvocationTest, SingleExitCallsMayBeDiscarded) {
  const std::size_t errors = analyze_(R"py(
@sys(["a"])
class C:
    def __init__(self):
        self.a = Valve()

    @op_initial_final
    def m(self):
        if self.a.test() == ["open"]:
            self.a.open()
            self.a.close()
        else:
            self.a.clean()
        return []
)py");
  EXPECT_EQ(errors, 0u);
}

TEST_F(InvocationTest, MatchesInsideCaseBodiesAreAnalyzed) {
  const std::size_t errors = analyze_(R"py(
@sys(["a", "b"])
class C:
    def __init__(self):
        self.a = Valve()
        self.b = Valve()

    @op_initial_final
    def m(self):
        match self.a.test():
            case ["open"]:
                self.a.open()
                self.a.close()
                match self.b.test():
                    case ["open"]:
                        self.b.open()
                        self.b.close()
            case ["clean"]:
                self.a.clean()
        return []
)py");
  EXPECT_EQ(errors, 1u);  // inner match misses b's ["clean"] exit
}

TEST_F(InvocationTest, ErrorsInsideLoopsAreFound) {
  const std::size_t errors = analyze_(R"py(
@sys(["a"])
class C:
    def __init__(self):
        self.a = Valve()

    @op_initial_final
    def m(self):
        while x:
            self.a.bogus()
        return []
)py");
  EXPECT_EQ(errors, 1u);
}

TEST_F(InvocationTest, OperationsWithEquivalentExitsCountAsSingleExit) {
  // Both exits of `pulse` return ["stop"]; a discarded call is fine.
  const std::size_t errors = analyze_(R"py(
@sys
class Pulser:
    @op_initial
    def pulse(self):
        if x:
            return ["stop"]
        return ["stop"]

    @op_final
    def stop(self):
        return []

@sys(["p"])
class C:
    def __init__(self):
        self.p = Pulser()

    @op_initial_final
    def m(self):
        self.p.pulse()
        self.p.stop()
        return []
)py");
  EXPECT_EQ(errors, 0u);
}

}  // namespace
}  // namespace shelley::core
