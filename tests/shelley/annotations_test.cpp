#include "shelley/annotations.hpp"

#include <gtest/gtest.h>

#include "upy/parser.hpp"

namespace shelley::core {
namespace {

class AnnotationsTest : public ::testing::Test {
 protected:
  upy::ClassDef class_(const std::string& source) {
    module_ = upy::parse_module(source);
    return module_.classes.at(0);
  }
  upy::FunctionDef method_(const std::string& decorators) {
    const upy::ClassDef cls = class_("class C:\n" + decorators +
                                     "    def m(self):\n        pass\n");
    return cls.methods.at(0);
  }
  upy::ExprPtr return_value_(const std::string& text) {
    const upy::ClassDef cls =
        class_("class C:\n    def m(self):\n        return " + text + "\n");
    const auto* stmt =
        upy::as<upy::ReturnStmt>(cls.methods.at(0).body.at(0));
    return stmt->value;
  }

  upy::Module module_;
  DiagnosticEngine diagnostics_;
};

// -- Table 1: class annotations ----------------------------------------------

TEST_F(AnnotationsTest, BareSysIsBaseClass) {
  const auto annotations =
      decode_class_annotations(class_("@sys\nclass C:\n    pass\n"),
                               diagnostics_);
  EXPECT_TRUE(annotations.is_system);
  EXPECT_FALSE(annotations.is_composite);
  EXPECT_TRUE(annotations.subsystem_fields.empty());
  EXPECT_FALSE(diagnostics_.has_errors());
}

TEST_F(AnnotationsTest, SysWithListIsComposite) {
  const auto annotations = decode_class_annotations(
      class_("@sys([\"a\", \"b\"])\nclass C:\n    pass\n"), diagnostics_);
  EXPECT_TRUE(annotations.is_system);
  EXPECT_TRUE(annotations.is_composite);
  EXPECT_EQ(annotations.subsystem_fields,
            (std::vector<std::string>{"a", "b"}));
}

TEST_F(AnnotationsTest, ClaimCollectsFormulaText) {
  const auto annotations = decode_class_annotations(
      class_("@claim(\"(!a.open) W b.open\")\n@sys([\"a\"])\n"
             "class C:\n    pass\n"),
      diagnostics_);
  ASSERT_EQ(annotations.claims.size(), 1u);
  EXPECT_EQ(annotations.claims[0].first, "(!a.open) W b.open");
}

TEST_F(AnnotationsTest, MultipleClaims) {
  const auto annotations = decode_class_annotations(
      class_("@claim(\"G a\")\n@claim(\"F b\")\nclass C:\n    pass\n"),
      diagnostics_);
  EXPECT_EQ(annotations.claims.size(), 2u);
}

TEST_F(AnnotationsTest, MalformedSysArgumentIsError) {
  (void)decode_class_annotations(class_("@sys([1, 2])\nclass C:\n    pass\n"),
                           diagnostics_);
  EXPECT_TRUE(diagnostics_.has_errors());
}

TEST_F(AnnotationsTest, SysWithTwoArgumentsIsError) {
  (void)decode_class_annotations(
      class_("@sys([\"a\"], [\"b\"])\nclass C:\n    pass\n"), diagnostics_);
  EXPECT_TRUE(diagnostics_.has_errors());
}

TEST_F(AnnotationsTest, ClaimWithoutStringIsError) {
  (void)decode_class_annotations(class_("@claim(42)\nclass C:\n    pass\n"),
                           diagnostics_);
  EXPECT_TRUE(diagnostics_.has_errors());
}

TEST_F(AnnotationsTest, UnknownClassDecoratorIsWarningOnly) {
  const auto annotations = decode_class_annotations(
      class_("@dataclass\nclass C:\n    pass\n"), diagnostics_);
  EXPECT_FALSE(annotations.is_system);
  EXPECT_FALSE(diagnostics_.has_errors());
  EXPECT_EQ(diagnostics_.diagnostics().size(), 1u);
}

// -- Table 1: method annotations ----------------------------------------------

TEST_F(AnnotationsTest, OpKinds) {
  EXPECT_EQ(decode_op_annotation(method_("    @op\n"), diagnostics_),
            OpKind::kOperation);
  EXPECT_EQ(decode_op_annotation(method_("    @op_initial\n"), diagnostics_),
            OpKind::kInitial);
  EXPECT_EQ(decode_op_annotation(method_("    @op_final\n"), diagnostics_),
            OpKind::kFinal);
  EXPECT_EQ(
      decode_op_annotation(method_("    @op_initial_final\n"), diagnostics_),
      OpKind::kInitialFinal);
  EXPECT_EQ(decode_op_annotation(method_(""), diagnostics_),
            OpKind::kNotAnOperation);
  EXPECT_FALSE(diagnostics_.has_errors());
}

TEST_F(AnnotationsTest, InitialFinalPredicates) {
  EXPECT_TRUE(is_initial(OpKind::kInitial));
  EXPECT_TRUE(is_initial(OpKind::kInitialFinal));
  EXPECT_FALSE(is_initial(OpKind::kFinal));
  EXPECT_FALSE(is_initial(OpKind::kOperation));
  EXPECT_TRUE(is_final(OpKind::kFinal));
  EXPECT_TRUE(is_final(OpKind::kInitialFinal));
  EXPECT_FALSE(is_final(OpKind::kInitial));
}

TEST_F(AnnotationsTest, DuplicateOpDecoratorsError) {
  (void)decode_op_annotation(method_("    @op\n    @op_final\n"), diagnostics_);
  EXPECT_TRUE(diagnostics_.has_errors());
}

// -- Table 2: return statements ----------------------------------------------

TEST_F(AnnotationsTest, ReturnSingleSuccessor) {
  const auto successors =
      decode_return_successors(return_value_("[\"close\"]"), {}, diagnostics_);
  ASSERT_TRUE(successors.has_value());
  EXPECT_EQ(*successors, (std::vector<std::string>{"close"}));
}

TEST_F(AnnotationsTest, ReturnMultipleSuccessors) {
  const auto successors = decode_return_successors(
      return_value_("[\"open\", \"clean\"]"), {}, diagnostics_);
  ASSERT_TRUE(successors.has_value());
  EXPECT_EQ(*successors, (std::vector<std::string>{"open", "clean"}));
}

TEST_F(AnnotationsTest, ReturnWithIntValue) {
  const auto successors = decode_return_successors(
      return_value_("[\"close\"], 2"), {}, diagnostics_);
  ASSERT_TRUE(successors.has_value());
  EXPECT_EQ(*successors, (std::vector<std::string>{"close"}));
}

TEST_F(AnnotationsTest, ReturnWithBoolValue) {
  const auto successors = decode_return_successors(
      return_value_("[\"close\"], True"), {}, diagnostics_);
  ASSERT_TRUE(successors.has_value());
  EXPECT_EQ(*successors, (std::vector<std::string>{"close"}));
}

TEST_F(AnnotationsTest, ReturnMultipleSuccessorsWithValue) {
  const auto successors = decode_return_successors(
      return_value_("[\"open\", \"clean\"], 2"), {}, diagnostics_);
  ASSERT_TRUE(successors.has_value());
  EXPECT_EQ(*successors, (std::vector<std::string>{"open", "clean"}));
}

TEST_F(AnnotationsTest, ReturnEmptyList) {
  const auto successors =
      decode_return_successors(return_value_("[]"), {}, diagnostics_);
  ASSERT_TRUE(successors.has_value());
  EXPECT_TRUE(successors->empty());
}

TEST_F(AnnotationsTest, BareReturnIsError) {
  const auto successors = decode_return_successors(nullptr, {}, diagnostics_);
  EXPECT_FALSE(successors.has_value());
  EXPECT_TRUE(diagnostics_.has_errors());
}

TEST_F(AnnotationsTest, ReturnNonListIsError) {
  const auto successors =
      decode_return_successors(return_value_("42"), {}, diagnostics_);
  EXPECT_FALSE(successors.has_value());
  EXPECT_TRUE(diagnostics_.has_errors());
}

TEST_F(AnnotationsTest, ReturnListOfNonStringsIsError) {
  const auto successors =
      decode_return_successors(return_value_("[1, 2]"), {}, diagnostics_);
  EXPECT_FALSE(successors.has_value());
  EXPECT_TRUE(diagnostics_.has_errors());
}

TEST_F(AnnotationsTest, ReturnEmptyTupleIsError) {
  // `return ()` -- no successor list at all.
  const auto successors =
      decode_return_successors(return_value_("()"), {}, diagnostics_);
  EXPECT_FALSE(successors.has_value());
  EXPECT_TRUE(diagnostics_.has_errors());
}

}  // namespace
}  // namespace shelley::core
