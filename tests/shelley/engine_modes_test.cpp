// The --ltlf-engine / --lint-claims plumbing: each engine choice answers
// claims identically (verdicts AND witnesses), `both` mode aborts loudly on
// a (forced) disagreement, claim lints warn on unsatisfiable and
// trivially-true claims, and the engine choice keys the verification cache.
#include <gtest/gtest.h>

#include "ltlf/eval.hpp"
#include "ltlf/parser.hpp"
#include "shelley/checker.hpp"
#include "shelley/verifier.hpp"

namespace shelley::core {
namespace {

constexpr const char* kValve = R"py(
@claim("G (open -> F close)")
@claim("F open")
@sys
class Valve:
    @op_initial
    def test(self):
        if x:
            return ["open"]
        else:
            return ["clean"]

    @op
    def open(self):
        return ["close"]

    @op_final
    def close(self):
        return ["test"]

    @op_final
    def clean(self):
        return ["test"]
)py";

constexpr const char* kComposite = R"py(
@sys
class Valve:
    @op_initial
    def open(self):
        return ["close"]

    @op_final
    def close(self):
        return ["open"]

@claim("G (a.open -> F a.close)")
@sys(["a"])
class Controller:
    def __init__(self):
        self.a = Valve()

    @op_initial_final
    def run(self):
        self.a.open()
        self.a.close()
        return []
)py";

CheckResult run_base(Verifier& verifier, LtlfEngine engine) {
  const ClassSpec* spec = verifier.find_class("Valve");
  EXPECT_NE(spec, nullptr);
  DiagnosticEngine sink;
  CheckOptions options;
  options.ltlf_engine = engine;
  return check_base_claims(*spec, verifier.symbols(), sink, options);
}

TEST(EngineModes, AllEnginesAgreeOnBaseClaims) {
  Verifier verifier;
  verifier.add_source(kValve);
  const CheckResult dfa = run_base(verifier, LtlfEngine::kDfa);
  const CheckResult tableau = run_base(verifier, LtlfEngine::kTableau);
  const CheckResult both = run_base(verifier, LtlfEngine::kBoth);

  // "F open" is violated (the empty usage and test,clean never open);
  // "G (open -> F close)" holds.
  ASSERT_EQ(dfa.claim_errors.size(), 1u);
  ASSERT_EQ(tableau.claim_errors.size(), 1u);
  ASSERT_EQ(both.claim_errors.size(), 1u);
  EXPECT_EQ(dfa.claim_errors[0].formula, "F open");
  EXPECT_EQ(tableau.claim_errors[0].formula, "F open");
  EXPECT_EQ(tableau.claim_errors[0].counterexample,
            dfa.claim_errors[0].counterexample);
  EXPECT_EQ(both.claim_errors[0].counterexample,
            dfa.claim_errors[0].counterexample);
}

TEST(EngineModes, CompositeClaimsAgreeAcrossEngines) {
  for (const LtlfEngine engine :
       {LtlfEngine::kDfa, LtlfEngine::kTableau, LtlfEngine::kBoth}) {
    Verifier verifier;
    verifier.add_source(kComposite);
    verifier.set_check_options(CheckOptions{engine, false});
    const Report report = verifier.verify_all();
    EXPECT_TRUE(report.ok()) << report.render(verifier.symbols());
  }
}

TEST(EngineModes, RenderedReportIsByteIdenticalAcrossEngines) {
  std::string dfa_render;
  std::string tableau_render;
  std::string both_render;
  for (const LtlfEngine engine :
       {LtlfEngine::kDfa, LtlfEngine::kTableau, LtlfEngine::kBoth}) {
    Verifier verifier;
    verifier.add_source(kValve);
    verifier.set_check_options(CheckOptions{engine, false});
    const Report report = verifier.verify_all();
    EXPECT_FALSE(report.ok());
    std::string& out = engine == LtlfEngine::kDfa      ? dfa_render
                       : engine == LtlfEngine::kTableau ? tableau_render
                                                         : both_render;
    out = report.render(verifier.symbols());
  }
  EXPECT_EQ(dfa_render, tableau_render);
  EXPECT_EQ(dfa_render, both_render);
  EXPECT_NE(dfa_render.find("FAIL TO MEET REQUIREMENT"), std::string::npos);
}

TEST(EngineModes, ForcedDisagreementAbortsBothMode) {
  Verifier verifier;
  verifier.add_source(kValve);
  verifier.set_check_options(CheckOptions{LtlfEngine::kBoth, false});
  testing::force_ltlf_disagreement(true);
  EXPECT_THROW((void)verifier.verify_all(), EngineDisagreement);
  // The hook is one-shot: the next run is clean again.
  EXPECT_FALSE(verifier.verify_all().ok());
}

TEST(EngineModes, ForcedDisagreementDoesNotTouchSingleEngineModes) {
  Verifier verifier;
  verifier.add_source(kValve);
  testing::force_ltlf_disagreement(true);
  EXPECT_NO_THROW((void)verifier.verify_all());
  testing::force_ltlf_disagreement(false);
}

TEST(EngineModes, LintFlagsUnsatisfiableClaim) {
  Verifier verifier;
  // One event is never two distinct symbols: F (open & close) is
  // unsatisfiable over any alphabet.
  verifier.add_source(R"py(
@claim("F (open & close)")
@sys
class C:
    @op_initial_final
    def open(self):
        return []

    @op_initial_final
    def close(self):
        return []
)py");
  verifier.set_check_options(CheckOptions{LtlfEngine::kDfa, true});
  const Report report = verifier.verify_all();
  ASSERT_EQ(report.classes.size(), 1u);
  EXPECT_GE(report.classes[0].lint_findings, 1u);
  bool found = false;
  for (const Diagnostic& diag : verifier.diagnostics().diagnostics()) {
    if (diag.severity == Severity::kWarning &&
        diag.message.find("is unsatisfiable") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(EngineModes, LintFlagsTriviallyTrueClaim) {
  Verifier verifier;
  verifier.add_source(R"py(
@claim("G (open | !open)")
@sys
class C:
    @op_initial_final
    def open(self):
        return []
)py");
  verifier.set_check_options(CheckOptions{LtlfEngine::kDfa, true});
  const Report report = verifier.verify_all();
  ASSERT_EQ(report.classes.size(), 1u);
  EXPECT_TRUE(report.ok());  // lints are warnings, not errors
  EXPECT_GE(report.classes[0].lint_findings, 1u);
  bool found = false;
  for (const Diagnostic& diag : verifier.diagnostics().diagnostics()) {
    if (diag.severity == Severity::kWarning &&
        diag.message.find("trivially true") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(EngineModes, LintsOffByDefault) {
  Verifier verifier;
  verifier.add_source(R"py(
@claim("F (open & close)")
@sys
class C:
    @op_initial_final
    def open(self):
        return []

    @op_initial_final
    def close(self):
        return []
)py");
  const Report report = verifier.verify_all();
  ASSERT_EQ(report.classes.size(), 1u);
  for (const Diagnostic& diag : verifier.diagnostics().diagnostics()) {
    EXPECT_EQ(diag.message.find("is unsatisfiable"), std::string::npos);
  }
}

TEST(EngineModes, EngineChoiceAndLintFlagKeyTheCache) {
  Verifier verifier;
  verifier.add_source(kValve);
  const ClassSpec* spec = verifier.find_class("Valve");
  ASSERT_NE(spec, nullptr);

  const auto key_default = verifier.cache_key(*spec);
  verifier.set_check_options(CheckOptions{LtlfEngine::kTableau, false});
  const auto key_tableau = verifier.cache_key(*spec);
  verifier.set_check_options(CheckOptions{LtlfEngine::kTableau, true});
  const auto key_linted = verifier.cache_key(*spec);
  verifier.set_check_options(CheckOptions{LtlfEngine::kDfa, false});
  const auto key_back = verifier.cache_key(*spec);

  EXPECT_NE(key_default, key_tableau);
  EXPECT_NE(key_tableau, key_linted);
  EXPECT_NE(key_default, key_linted);
  EXPECT_EQ(key_default, key_back);
}

}  // namespace
}  // namespace shelley::core
