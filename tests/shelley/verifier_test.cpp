#include "shelley/verifier.hpp"

#include <gtest/gtest.h>

#include "paper_sources.hpp"

namespace shelley::core {
namespace {

TEST(VerifierTest, ValveAloneVerifies) {
  Verifier verifier;
  verifier.add_source(examples::kValveSource);
  const Report report = verifier.verify_all();
  ASSERT_EQ(report.classes.size(), 1u);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.classes[0].class_name, "Valve");
  EXPECT_FALSE(report.classes[0].is_composite);
}

TEST(VerifierTest, BadSectorEndToEnd) {
  Verifier verifier;
  verifier.add_source(examples::kValveSource);
  verifier.add_source(examples::kBadSectorSource);
  const Report report = verifier.verify_all();
  ASSERT_EQ(report.classes.size(), 2u);
  EXPECT_FALSE(report.ok());
  // Valve itself is fine; BadSector carries the errors.
  EXPECT_TRUE(report.classes[0].ok());
  EXPECT_FALSE(report.classes[1].ok());
  EXPECT_EQ(report.classes[1].check.subsystem_errors.size(), 1u);
  EXPECT_EQ(report.classes[1].check.claim_errors.size(), 1u);

  const std::string rendered = report.render(verifier.symbols());
  EXPECT_NE(rendered.find("INVALID SUBSYSTEM USAGE"), std::string::npos);
  EXPECT_NE(rendered.find("FAIL TO MEET REQUIREMENT"), std::string::npos);
}

TEST(VerifierTest, GoodSectorEndToEnd) {
  Verifier verifier;
  verifier.add_source(examples::kValveSource);
  verifier.add_source(examples::kGoodSectorSource);
  const Report report = verifier.verify_all();
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.render(verifier.symbols()).empty());
}

TEST(VerifierTest, VerifySingleClassByName) {
  Verifier verifier;
  verifier.add_source(examples::kValveSource);
  verifier.add_source(examples::kBadSectorSource);
  const ClassReport report = verifier.verify_class("BadSector");
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.is_composite);
}

TEST(VerifierTest, VerifyUnknownClassReportsDiagnostic) {
  Verifier verifier;
  const ClassReport report = verifier.verify_class("Ghost");
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(verifier.diagnostics().has_errors());
}

TEST(VerifierTest, DuplicateClassIsError) {
  Verifier verifier;
  verifier.add_source("@sys\nclass C:\n    @op_initial_final\n"
                      "    def m(self):\n        return []\n");
  verifier.add_source("@sys\nclass C:\n    @op_initial_final\n"
                      "    def m(self):\n        return []\n");
  EXPECT_TRUE(verifier.diagnostics().has_errors());
  EXPECT_EQ(verifier.classes().size(), 1u);
}

TEST(VerifierTest, SyntaxErrorsPropagateAsParseError) {
  Verifier verifier;
  EXPECT_THROW(verifier.add_source("class C\n    pass\n"), ParseError);
}

TEST(VerifierTest, NonSystemClassesAreRegisteredButNotVerified) {
  Verifier verifier;
  verifier.add_source("class Helper:\n    pass\n");
  verifier.add_source(examples::kValveSource);
  const Report report = verifier.verify_all();
  EXPECT_EQ(report.classes.size(), 1u);  // only Valve
  EXPECT_NE(verifier.find_class("Helper"), nullptr);
}

TEST(VerifierTest, FindClass) {
  Verifier verifier;
  verifier.add_source(examples::kValveSource);
  EXPECT_NE(verifier.find_class("Valve"), nullptr);
  EXPECT_EQ(verifier.find_class("Nope"), nullptr);
}

TEST(VerifierTest, InvocationErrorsCountTowardsFailure) {
  Verifier verifier;
  verifier.add_source(examples::kValveSource);
  verifier.add_source(R"py(
@sys(["a"])
class BadCall:
    def __init__(self):
        self.a = Valve()

    @op_initial_final
    def go(self):
        self.a.explode()
        return []
)py");
  const Report report = verifier.verify_all();
  EXPECT_FALSE(report.ok());
  const ClassReport& bad = report.classes.back();
  EXPECT_GE(bad.invocation_errors, 1u);
}

TEST(VerifierTest, ThreeLevelHierarchyVerifies) {
  Verifier verifier;
  verifier.add_source(examples::kValveSource);
  verifier.add_source(examples::kGoodSectorSource);
  verifier.add_source(R"py(
@sys(["s"])
class Plant:
    def __init__(self):
        self.s = GoodSector()

    @op_initial_final
    def run(self):
        match self.s.open_b():
            case ["open_a"]:
                self.s.open_a()
                return ["run"]
            case ["fail"]:
                self.s.fail()
                return ["run"]
)py");
  const Report report = verifier.verify_all();
  EXPECT_TRUE(report.ok()) << report.render(verifier.symbols())
                           << verifier.diagnostics().render();
}

}  // namespace
}  // namespace shelley::core
