#include "shelley/report_json.hpp"

#include <gtest/gtest.h>

#include "paper_sources.hpp"

namespace shelley::core {
namespace {

TEST(ReportJson, PassingReport) {
  Verifier verifier;
  verifier.add_source(examples::kValveSource);
  const Report report = verifier.verify_all();
  const std::string json = report_to_json(report, verifier);
  EXPECT_NE(json.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"Valve\""), std::string::npos);
  EXPECT_NE(json.find("\"subsystem_errors\":[]"), std::string::npos);
}

TEST(ReportJson, FailingReportCarriesCounterexamples) {
  Verifier verifier;
  verifier.add_source(examples::kValveSource);
  verifier.add_source(examples::kBadSectorSource);
  const Report report = verifier.verify_all();
  const std::string json = report_to_json(report, verifier);
  EXPECT_NE(json.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(json.find("\"counterexample\":[\"open_a\",\"a.test\",\"a.open\"]"),
            std::string::npos);
  EXPECT_NE(json.find("\"detail\":\"test, >open< (not final)\""),
            std::string::npos);
  EXPECT_NE(json.find("\"formula\":\"(!a.open) W b.open\""),
            std::string::npos);
}

TEST(ReportJson, DiagnosticsSerialized) {
  Verifier verifier;
  verifier.add_source("@sys\nclass C:\n    @op\n    def m(self):\n"
                      "        return []\n");
  const Report report = verifier.verify_all();
  const std::string json = report_to_json(report, verifier);
  EXPECT_NE(json.find("\"severity\":\"error\""), std::string::npos);
  EXPECT_NE(json.find("\"message\":"), std::string::npos);
}

TEST(SpecJson, ValveSpecStructure) {
  Verifier verifier;
  verifier.add_source(examples::kValveSource);
  const std::string json = spec_to_json(*verifier.find_class("Valve"));
  EXPECT_NE(json.find("\"name\":\"Valve\""), std::string::npos);
  EXPECT_NE(json.find("\"is_system\":true"), std::string::npos);
  EXPECT_NE(json.find("\"is_composite\":false"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"test\""), std::string::npos);
  EXPECT_NE(json.find("\"initial\":true"), std::string::npos);
  EXPECT_NE(json.find("\"successors\":[\"open\"]"), std::string::npos);
  EXPECT_NE(json.find("\"successors\":[\"clean\"]"), std::string::npos);
}

TEST(SpecJson, CompositeListsSubsystemsAndClaims) {
  Verifier verifier;
  verifier.add_source(examples::kValveSource);
  verifier.add_source(examples::kBadSectorSource);
  const std::string json = spec_to_json(*verifier.find_class("BadSector"));
  EXPECT_NE(json.find("\"field\":\"a\""), std::string::npos);
  EXPECT_NE(json.find("\"class\":\"Valve\""), std::string::npos);
  EXPECT_NE(json.find("\"claims\":[\"(!a.open) W b.open\"]"),
            std::string::npos);
}

}  // namespace
}  // namespace shelley::core
