#include "shelley/lint.hpp"

#include <gtest/gtest.h>

#include "paper_sources.hpp"
#include "upy/parser.hpp"

namespace shelley::core {
namespace {

class LintTest : public ::testing::Test {
 protected:
  std::size_t lint_(const char* source, std::size_t index = 0) {
    const upy::Module module = upy::parse_module(source);
    const ClassSpec spec =
        extract_class_spec(module.classes.at(index), diagnostics_);
    return lint_class(spec, table_, diagnostics_);
  }

  bool has_warning_(std::string_view fragment) {
    for (const Diagnostic& diag : diagnostics_.diagnostics()) {
      if (diag.severity == Severity::kWarning &&
          diag.message.find(fragment) != std::string::npos) {
        return true;
      }
    }
    return false;
  }

  SymbolTable table_;
  DiagnosticEngine diagnostics_;
};

TEST_F(LintTest, ValveIsClean) {
  EXPECT_EQ(lint_(examples::kValveSource), 0u);
}

TEST_F(LintTest, GoodSectorIsClean) {
  EXPECT_EQ(lint_(examples::kGoodSectorSource), 0u);
}

TEST_F(LintTest, UnreachableOperation) {
  const std::size_t findings = lint_(R"py(
@sys
class C:
    @op_initial_final
    def m(self):
        return ["m"]

    @op_final
    def orphan(self):
        return []
)py");
  EXPECT_GE(findings, 1u);
  EXPECT_TRUE(has_warning_("unreachable"));
}

TEST_F(LintTest, DeadExitOnNonFinalOperation) {
  const std::size_t findings = lint_(R"py(
@sys
class C:
    @op_initial
    def m(self):
        if x:
            return ["stop"]
        return []

    @op_final
    def stop(self):
        return []
)py");
  EXPECT_GE(findings, 1u);
  EXPECT_TRUE(has_warning_("can never complete"));
}

TEST_F(LintTest, NoFinalOperation) {
  const std::size_t findings = lint_(R"py(
@sys
class C:
    @op_initial
    def m(self):
        return ["m"]
)py");
  EXPECT_GE(findings, 1u);
  EXPECT_TRUE(has_warning_("no @op_final"));
}

TEST_F(LintTest, IncompletableUsageWithWitness) {
  // After `enter`, only `spin` is reachable and spin never leads to a final
  // op -- the call sequence [enter] can never complete.
  const std::size_t findings = lint_(R"py(
@sys
class C:
    @op_initial_final
    def once(self):
        return []

    @op_initial
    def enter(self):
        return ["spin"]

    @op
    def spin(self):
        return ["spin"]
)py");
  EXPECT_GE(findings, 1u);
  EXPECT_TRUE(has_warning_("can never be completed"));
  EXPECT_TRUE(has_warning_("[enter]"));
}

TEST_F(LintTest, DuplicateSuccessor) {
  const std::size_t findings = lint_(R"py(
@sys
class C:
    @op_initial_final
    def m(self):
        return ["m", "m"]
)py");
  EXPECT_GE(findings, 1u);
  EXPECT_TRUE(has_warning_("listed more than once"));
}

TEST_F(LintTest, ValidLoopingSpecHasNoCompletabilityFinding) {
  // Every state can reach the final op: no finding.
  const std::size_t findings = lint_(R"py(
@sys
class C:
    @op_initial
    def a(self):
        return ["b"]

    @op
    def b(self):
        return ["a", "stop"]

    @op_final
    def stop(self):
        return []
)py");
  EXPECT_EQ(findings, 0u);
}

TEST_F(LintTest, LintsAreWarningsNotErrors) {
  lint_(R"py(
@sys
class C:
    @op_initial
    def m(self):
        return ["m"]
)py");
  EXPECT_FALSE(diagnostics_.has_errors());
}

}  // namespace
}  // namespace shelley::core
