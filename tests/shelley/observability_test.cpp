// End-to-end observability: a traced verification run exports a Chrome
// trace document covering every pipeline stage, per-class statistics land
// in the report (JSON and C++-side), failing spans carry their first
// diagnostic, the DFA state-budget lint fires off the same statistics, and
// -- crucially -- none of it changes any output while disabled.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "paper_sources.hpp"
#include "shelley/report_json.hpp"
#include "shelley/verifier.hpp"
#include "support/json.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace shelley::core {
namespace {

constexpr std::string_view kUnreachableSource = R"(@sys
class Lamp:
    @op_initial_final
    def on(self):
        return ["on"]

    @op_final
    def ghost(self):
        return []
)";

class ObservabilityTest : public ::testing::Test {
 protected:
  void TearDown() override {
    support::trace::set_enabled(false);
    support::trace::reset();
    support::metrics::set_enabled(false);
    support::metrics::reset();
  }
};

Report verify_paper_sources(Verifier& verifier, std::size_t jobs = 1) {
  verifier.add_source(examples::kValveSource);
  verifier.add_source(examples::kBadSectorSource);
  verifier.add_source(examples::kSectorSource);
  verifier.add_source(examples::kGoodSectorSource);
  return verifier.verify_all(jobs);
}

TEST_F(ObservabilityTest, TraceCoversEveryPipelineStage) {
  support::trace::set_enabled(true);
  support::trace::reset();
  support::metrics::set_enabled(true);
  support::metrics::reset();

  Verifier verifier;
  const Report report = verify_paper_sources(verifier);
  ASSERT_FALSE(report.classes.empty());

  const JsonValue doc = parse_json(support::trace::to_chrome_json());
  std::set<std::string> names;
  std::set<std::string> verified_classes;
  for (const JsonValue& event : doc.at("traceEvents").as_array()) {
    names.insert(event.at("name").as_string());
    if (event.at("name").as_string() == "shelley.verify") {
      verified_classes.insert(event.at("args").at("class").as_string());
    }
  }
  // One span per pipeline stage, end to end.
  for (const char* stage :
       {"upy.lex", "upy.parse", "ir.lower", "ir.infer", "fsm.determinize",
        "fsm.minimize", "fsm.inclusion", "ltlf.to_dfa", "ltlf.check",
        "shelley.usage_nfa", "shelley.extract_behaviors",
        "shelley.build_system_model", "shelley.check_composite",
        "shelley.verify"}) {
    EXPECT_TRUE(names.contains(stage)) << "missing span: " << stage;
  }
  // A per-class automata counter track for each verified class.
  for (const ClassReport& cls : report.classes) {
    EXPECT_TRUE(verified_classes.contains(cls.class_name));
    EXPECT_TRUE(names.contains("automata/" + cls.class_name))
        << "missing counter track for " << cls.class_name;
  }
}

TEST_F(ObservabilityTest, PerClassStatsAreCollected) {
  support::metrics::set_enabled(true);
  support::metrics::reset();

  Verifier verifier;
  const Report report = verify_paper_sources(verifier);
  for (const ClassReport& cls : report.classes) {
    EXPECT_TRUE(cls.stats.collected) << cls.class_name;
    EXPECT_GT(cls.stats.nfa_states, 0u) << cls.class_name;
    EXPECT_GT(cls.stats.determinize_calls, 0u) << cls.class_name;
    EXPECT_GT(cls.stats.elapsed_ms, 0.0) << cls.class_name;
  }
  // BadSector fails with a subsystem counterexample; its length must have
  // been recorded.
  const ClassReport& bad = report.classes[1];
  ASSERT_EQ(bad.class_name, "BadSector");
  EXPECT_FALSE(bad.ok());
  EXPECT_GT(bad.stats.counterexample_len, 0u);
  EXPECT_GT(bad.stats.product_pairs, 0u);
}

TEST_F(ObservabilityTest, StatsLandInReportJson) {
  support::metrics::set_enabled(true);
  support::metrics::reset();

  Verifier verifier;
  const Report report = verify_paper_sources(verifier);
  const JsonValue doc =
      parse_json(report_to_json(report, verifier, /*include_stats=*/true));
  const JsonValue::Array& classes = doc.at("classes").as_array();
  ASSERT_FALSE(classes.empty());
  for (const JsonValue& cls : classes) {
    const JsonValue& stats = cls.at("stats");
    EXPECT_GT(stats.at("nfa_states").as_number(), 0.0);
    EXPECT_GT(stats.at("elapsed_ms").as_number(), 0.0);
  }
  const JsonValue& global = doc.at("stats");
  EXPECT_GT(global.at("counters").at("fsm.determinize.calls").as_number(),
            0.0);
  EXPECT_TRUE(global.at("distributions").at("fsm.dfa.states").is_object());
}

TEST_F(ObservabilityTest, DisabledInstrumentationChangesNothing) {
  // Everything observable -- the JSON report (without stats), the rendered
  // report, the diagnostics -- must be byte-identical whether the
  // instrumentation is off (default) or fully on, serial or parallel.
  const auto observe = [](std::size_t jobs) {
    Verifier verifier;
    const Report report = verify_paper_sources(verifier, jobs);
    return report_to_json(report, verifier) + "\n---\n" +
           report.render(verifier.symbols()) + "\n---\n" +
           verifier.diagnostics().render();
  };

  const std::string baseline_serial = observe(1);
  const std::string baseline_parallel = observe(4);
  EXPECT_EQ(baseline_serial, baseline_parallel);

  support::trace::set_enabled(true);
  support::trace::reset();
  support::metrics::set_enabled(true);
  support::metrics::reset();
  EXPECT_EQ(observe(1), baseline_serial);
  EXPECT_EQ(observe(4), baseline_serial);
}

TEST_F(ObservabilityTest, ReportJsonWithoutStatsHasNoStatsKeys) {
  support::metrics::set_enabled(true);
  support::metrics::reset();
  Verifier verifier;
  const Report report = verify_paper_sources(verifier);
  const std::string json = report_to_json(report, verifier);
  EXPECT_EQ(json.find("\"stats\""), std::string::npos);
}

TEST_F(ObservabilityTest, FailingClassSpanCarriesFirstDiagnostic) {
  support::trace::set_enabled(true);
  support::trace::reset();

  Verifier verifier;
  verifier.add_source(kUnreachableSource);
  const Report report = verifier.verify_all(1);
  ASSERT_EQ(report.classes.size(), 1u);
  EXPECT_GE(report.classes[0].lint_findings, 1u);

  const JsonValue doc = parse_json(support::trace::to_chrome_json());
  const JsonValue* verify_span = nullptr;
  for (const JsonValue& event : doc.at("traceEvents").as_array()) {
    if (event.at("name").as_string() == "shelley.verify") {
      verify_span = &event;
    }
  }
  ASSERT_NE(verify_span, nullptr);
  const JsonValue& args = verify_span->at("args");
  EXPECT_EQ(args.at("class").as_string(), "Lamp");
  EXPECT_NE(args.at("first_diagnostic").as_string().find("unreachable"),
            std::string::npos);
  EXPECT_FALSE(args.at("first_diagnostic_loc").as_string().empty());
  // And the diagnostic itself produced an instant event.
  bool found_instant = false;
  for (const JsonValue& event : doc.at("traceEvents").as_array()) {
    if (event.at("name").as_string() == "diagnostic" &&
        event.at("ph").as_string() == "i") {
      found_instant = true;
      EXPECT_NE(event.at("args").at("message").as_string().find(
                    "unreachable"),
                std::string::npos);
    }
  }
  EXPECT_TRUE(found_instant);
}

TEST_F(ObservabilityTest, DfaBudgetLintFires) {
  Verifier verifier;
  verifier.set_lint_options(LintOptions{/*dfa_state_budget=*/1});
  verifier.add_source(examples::kValveSource);
  const Report report = verifier.verify_all(1);
  ASSERT_EQ(report.classes.size(), 1u);
  EXPECT_TRUE(report.classes[0].ok());  // a warning, not an error
  EXPECT_GE(report.classes[0].lint_findings, 1u);
  bool found = false;
  for (const Diagnostic& diag : verifier.diagnostics().diagnostics()) {
    if (diag.message.find("exceeding the configured budget") !=
        std::string::npos) {
      found = true;
      EXPECT_EQ(diag.severity, Severity::kWarning);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(ObservabilityTest, DfaBudgetLintStaysQuietUnderBudget) {
  Verifier verifier;
  verifier.set_lint_options(LintOptions{/*dfa_state_budget=*/100000});
  verifier.add_source(examples::kValveSource);
  const Report report = verifier.verify_all(1);
  ASSERT_EQ(report.classes.size(), 1u);
  for (const Diagnostic& diag : verifier.diagnostics().diagnostics()) {
    EXPECT_EQ(diag.message.find("exceeding the configured budget"),
              std::string::npos);
  }
  // The stats were still collected (the lint needed them) ...
  EXPECT_TRUE(report.classes[0].stats.collected);
  // ... without touching the global registry.
  EXPECT_EQ(
      support::metrics::counter("fsm.determinize.calls").value(), 0u);
}

TEST_F(ObservabilityTest, ParallelRunHasNoOrphanSpans) {
  // The regression this PR fixes: spans opened on verify_all(jobs) worker
  // threads used to surface as parentless roots in --trace-out timelines.
  // With context propagation through ThreadPool::submit, a --jobs 4 run
  // must yield exactly one root (the verify_all span) with every pipeline
  // span reachable from it through resolved parent links.
  support::trace::set_enabled(true);
  Verifier verifier;
  verifier.add_source(examples::kValveSource);
  verifier.add_source(examples::kBadSectorSource);
  verifier.add_source(examples::kSectorSource);
  verifier.add_source(examples::kGoodSectorSource);
  support::trace::reset();  // only the verify phase is under test
  const Report report = verifier.verify_all(4);
  ASSERT_EQ(report.classes.size(), 4u);

  const JsonValue doc = parse_json(support::trace::to_chrome_json());
  std::set<std::uint64_t> ids;
  std::size_t roots = 0;
  std::size_t spans = 0;
  for (const JsonValue& event : doc.at("traceEvents").as_array()) {
    if (event.at("ph").as_string() != "X") continue;
    ids.insert(static_cast<std::uint64_t>(
        event.at("args").at("span_id").as_number()));
  }
  for (const JsonValue& event : doc.at("traceEvents").as_array()) {
    if (event.at("ph").as_string() != "X") continue;
    ++spans;
    const JsonValue* parent = event.at("args").find("parent");
    if (parent == nullptr) {
      ++roots;
      EXPECT_EQ(event.at("name").as_string(), "shelley.verify_all");
    } else {
      EXPECT_TRUE(ids.contains(
          static_cast<std::uint64_t>(parent->as_number())))
          << "dangling parent link on "
          << event.at("name").as_string();
    }
  }
  EXPECT_EQ(roots, 1u);
  // The parallel run actually produced a tree, not just the root.
  EXPECT_GT(spans, 4u);
}

TEST_F(ObservabilityTest, TracedParallelRunStaysDeterministic) {
  support::trace::set_enabled(true);
  support::trace::reset();
  support::metrics::set_enabled(true);
  support::metrics::reset();

  Verifier serial;
  const Report serial_report = verify_paper_sources(serial, 1);
  Verifier parallel;
  const Report parallel_report = verify_paper_sources(parallel, 4);

  EXPECT_EQ(report_to_json(serial_report, serial),
            report_to_json(parallel_report, parallel));
  // Worker threads interleave their spans without losing any: the export
  // still parses, and every class got its verify span.
  const JsonValue doc = parse_json(support::trace::to_chrome_json());
  std::set<std::string> verified;
  for (const JsonValue& event : doc.at("traceEvents").as_array()) {
    if (event.at("name").as_string() == "shelley.verify") {
      verified.insert(event.at("args").at("class").as_string());
    }
  }
  for (const ClassReport& cls : serial_report.classes) {
    EXPECT_TRUE(verified.contains(cls.class_name)) << cls.class_name;
  }
}

}  // namespace
}  // namespace shelley::core
