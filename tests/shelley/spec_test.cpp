#include "shelley/spec.hpp"

#include <gtest/gtest.h>

#include "paper_sources.hpp"
#include "upy/parser.hpp"

namespace shelley::core {
namespace {

class SpecTest : public ::testing::Test {
 protected:
  ClassSpec extract_(const std::string& source, std::size_t index = 0) {
    const upy::Module module = upy::parse_module(source);
    return extract_class_spec(module.classes.at(index), diagnostics_);
  }
  DiagnosticEngine diagnostics_;
};

TEST_F(SpecTest, ValveSpecFromListing21) {
  const ClassSpec spec = extract_(examples::kValveSource);
  EXPECT_EQ(spec.name, "Valve");
  EXPECT_TRUE(spec.is_system);
  EXPECT_FALSE(spec.is_composite);
  EXPECT_TRUE(spec.subsystems.empty());
  ASSERT_EQ(spec.operations.size(), 4u);

  const Operation* test = spec.find_operation("test");
  ASSERT_NE(test, nullptr);
  EXPECT_TRUE(test->initial);
  EXPECT_FALSE(test->final);
  ASSERT_EQ(test->exits.size(), 2u);
  EXPECT_EQ(test->exits[0].successors, (std::vector<std::string>{"open"}));
  EXPECT_EQ(test->exits[1].successors, (std::vector<std::string>{"clean"}));

  const Operation* open = spec.find_operation("open");
  ASSERT_NE(open, nullptr);
  EXPECT_FALSE(open->initial);
  EXPECT_FALSE(open->final);
  ASSERT_EQ(open->exits.size(), 1u);
  EXPECT_EQ(open->exits[0].successors, (std::vector<std::string>{"close"}));

  EXPECT_TRUE(spec.find_operation("close")->final);
  EXPECT_TRUE(spec.find_operation("clean")->final);
  EXPECT_EQ(spec.initial_operations(), (std::vector<std::string>{"test"}));
  EXPECT_EQ(spec.final_operations(),
            (std::vector<std::string>{"close", "clean"}));
  EXPECT_FALSE(diagnostics_.has_errors());
}

TEST_F(SpecTest, BadSectorSpecFromListing22) {
  const ClassSpec spec = extract_(examples::kBadSectorSource);
  EXPECT_EQ(spec.name, "BadSector");
  EXPECT_TRUE(spec.is_composite);
  ASSERT_EQ(spec.subsystems.size(), 2u);
  EXPECT_EQ(spec.subsystems[0].field, "a");
  EXPECT_EQ(spec.subsystems[0].class_name, "Valve");
  EXPECT_EQ(spec.subsystems[1].field, "b");
  EXPECT_EQ(spec.subsystems[1].class_name, "Valve");
  ASSERT_EQ(spec.claims.size(), 1u);
  EXPECT_EQ(spec.claims[0].text, "(!a.open) W b.open");

  const Operation* open_a = spec.find_operation("open_a");
  ASSERT_NE(open_a, nullptr);
  EXPECT_TRUE(open_a->initial);
  EXPECT_TRUE(open_a->final);
  ASSERT_EQ(open_a->exits.size(), 2u);
  EXPECT_EQ(open_a->exits[0].successors,
            (std::vector<std::string>{"open_b"}));
  EXPECT_TRUE(open_a->exits[1].successors.empty());
  EXPECT_FALSE(diagnostics_.has_errors());
}

TEST_F(SpecTest, ExitIdsFollowSourceOrderOfReturns) {
  const ClassSpec spec = extract_(R"py(
@sys
class C:
    @op_initial_final
    def m(self):
        if x:
            return ["m"]
        else:
            return []
)py");
  const Operation* m = spec.find_operation("m");
  ASSERT_NE(m, nullptr);
  ASSERT_EQ(m->exits.size(), 2u);
  EXPECT_EQ(m->exits[0].id, 0u);
  EXPECT_EQ(m->exits[1].id, 1u);
}

TEST_F(SpecTest, ReturnsInsideLoopsAndMatchesAreFound) {
  const ClassSpec spec = extract_(R"py(
@sys
class C:
    @op_initial_final
    def m(self):
        while x:
            if y:
                return ["m"]
        match z:
            case ["p"]:
                return []
            case _:
                return ["m"], 3
)py");
  EXPECT_EQ(spec.find_operation("m")->exits.size(), 3u);
}

TEST_F(SpecTest, MethodWithoutOpDecoratorIsNotAnOperation) {
  const ClassSpec spec = extract_(R"py(
@sys
class C:
    def helper(self):
        return 42

    @op_initial_final
    def m(self):
        return []
)py");
  EXPECT_EQ(spec.operations.size(), 1u);
  EXPECT_EQ(spec.find_operation("helper"), nullptr);
}

TEST_F(SpecTest, OperationWithoutReturnGetsImplicitExitAndWarning) {
  const ClassSpec spec = extract_(R"py(
@sys
class C:
    @op_initial_final
    def m(self):
        pass
)py");
  const Operation* m = spec.find_operation("m");
  ASSERT_EQ(m->exits.size(), 1u);
  EXPECT_TRUE(m->exits[0].successors.empty());
  EXPECT_FALSE(diagnostics_.has_errors());
  EXPECT_FALSE(diagnostics_.diagnostics().empty());  // the warning
}

TEST_F(SpecTest, MissingSubsystemBindingIsError) {
  extract_(R"py(
@sys(["a"])
class C:
    def __init__(self):
        self.b = Valve()

    @op_initial_final
    def m(self):
        return []
)py");
  EXPECT_TRUE(diagnostics_.has_errors());
}

TEST_F(SpecTest, SysWithoutOperationsIsError) {
  extract_("@sys\nclass C:\n    def helper(self):\n        return 1\n");
  EXPECT_TRUE(diagnostics_.has_errors());
}

TEST_F(SpecTest, NoInitialOperationIsError) {
  extract_(R"py(
@sys
class C:
    @op
    def m(self):
        return []
)py");
  EXPECT_TRUE(diagnostics_.has_errors());
}

TEST_F(SpecTest, UndecodableReturnKeepsItsExitSlot) {
  // First return is malformed; the second must still get id 1, matching
  // the ids the IR lowering assigns.
  const ClassSpec spec = extract_(R"py(
@sys
class C:
    @op_initial_final
    def m(self):
        if x:
            return 42
        return []
)py");
  const Operation* m = spec.find_operation("m");
  ASSERT_EQ(m->exits.size(), 1u);
  EXPECT_EQ(m->exits[0].id, 1u);
  EXPECT_TRUE(diagnostics_.has_errors());
}

TEST_F(SpecTest, ExitWithSuccessorsLookup) {
  const ClassSpec spec = extract_(examples::kValveSource);
  const Operation* test = spec.find_operation("test");
  EXPECT_NE(test->exit_with_successors({"open"}), nullptr);
  EXPECT_NE(test->exit_with_successors({"clean"}), nullptr);
  EXPECT_EQ(test->exit_with_successors({"close"}), nullptr);
  EXPECT_EQ(test->exit_with_successors({}), nullptr);
}

TEST_F(SpecTest, NonSystemClassIsExtractedButUnverified) {
  const ClassSpec spec = extract_("class Plain:\n    pass\n");
  EXPECT_FALSE(spec.is_system);
  EXPECT_TRUE(spec.operations.empty());
  EXPECT_FALSE(diagnostics_.has_errors());
}

}  // namespace
}  // namespace shelley::core
