#include "shelley/sampler.hpp"

#include <gtest/gtest.h>

#include <set>

#include "paper_sources.hpp"
#include "shelley/monitor.hpp"
#include "upy/parser.hpp"

namespace shelley::core {
namespace {

class SamplerTest : public ::testing::Test {
 protected:
  ClassSpec extract_(const char* source) {
    const upy::Module module = upy::parse_module(source);
    return extract_class_spec(module.classes.at(0), diagnostics_);
  }

  SymbolTable table_;
  DiagnosticEngine diagnostics_;
};

TEST_F(SamplerTest, EverySampleIsAValidCompleteUsage) {
  const ClassSpec valve = extract_(examples::kValveSource);
  TraceSampler sampler(valve, table_, 42);
  Monitor monitor(valve, table_);
  for (int round = 0; round < 200; ++round) {
    const auto trace = sampler.sample(16);
    monitor.reset();
    for (const std::string& op : trace) {
      EXPECT_NE(monitor.feed(op), Verdict::kViolation)
          << "at op " << op << " of a sampled trace";
    }
    EXPECT_TRUE(monitor.completed())
        << "sampled trace does not end at a final operation";
  }
}

TEST_F(SamplerTest, SamplesAreDiverse) {
  const ClassSpec valve = extract_(examples::kValveSource);
  TraceSampler sampler(valve, table_, 1);
  std::set<std::vector<std::string>> distinct;
  for (int round = 0; round < 100; ++round) {
    distinct.insert(sampler.sample(12));
  }
  EXPECT_GE(distinct.size(), 5u);
}

TEST_F(SamplerTest, RespectsLengthBudgetWhenFeasible) {
  const ClassSpec valve = extract_(examples::kValveSource);
  TraceSampler sampler(valve, table_, 3);
  for (int round = 0; round < 50; ++round) {
    EXPECT_LE(sampler.sample(8).size(), 8u);
  }
}

TEST_F(SamplerTest, DeterministicUnderSeed) {
  const ClassSpec valve = extract_(examples::kValveSource);
  TraceSampler first(valve, table_, 99);
  TraceSampler second(valve, table_, 99);
  for (int round = 0; round < 20; ++round) {
    EXPECT_EQ(first.sample(10), second.sample(10));
  }
}

TEST_F(SamplerTest, TightCapStillCompletes) {
  // Shortest completion of this spec is 3 calls; a cap of 1 must still
  // produce a complete usage via the greedy fallback.
  const ClassSpec spec = extract_(R"py(
@sys
class Three:
    @op_initial
    def a(self):
        return ["b"]

    @op
    def b(self):
        return ["c"]

    @op_final
    def c(self):
        return []
)py");
  TraceSampler sampler(spec, table_, 5);
  Monitor monitor(spec, table_);
  for (int round = 0; round < 10; ++round) {
    const auto trace = sampler.sample(1);
    monitor.reset();
    for (const std::string& op : trace) monitor.feed(op);
    EXPECT_TRUE(monitor.completed());
  }
}

}  // namespace
}  // namespace shelley::core
