// Differential warm/cold testing of incremental verification over the paper
// corpus: a warm run must replay the cold run byte-for-byte (text render,
// JSON report, diagnostics), and a one-character edit must invalidate
// exactly the edited class plus its dependents -- nothing less (stale
// results) and nothing more (lost incrementality).
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "paper_sources.hpp"
#include "shelley/cache.hpp"
#include "shelley/report_json.hpp"
#include "shelley/verifier.hpp"

namespace shelley::core {
namespace {

namespace fs = std::filesystem;

// An extra leaf class with no relation to the valve hierarchy: the canary
// that dependency-closure invalidation does not over-invalidate.
constexpr const char* kLedSource = R"(
@sys
class Led:
    @op_initial_final
    def blink(self):
        return ["blink"]
)";

std::string fresh_dir(const char* name) {
  const fs::path dir =
      fs::path(::testing::TempDir()) / "shelley_cache_diff" / name;
  fs::remove_all(dir);
  return dir.string();
}

/// The full corpus: Valve (leaf), three composites depending on it, and the
/// unrelated Led.  `valve` and `led` are injectable so tests can edit them.
std::vector<std::string> corpus(const std::string& valve,
                                const std::string& led) {
  return {valve, examples::kBadSectorSource, examples::kSectorSource,
          examples::kGoodSectorSource, led};
}

/// One full run against `cache`: loads every source, verifies all classes,
/// and renders everything a user could observe.
struct RunResult {
  std::string text;   // report render + all diagnostics
  std::string json;   // --json equivalent
  CacheStats stats;   // cache counters for THIS run
};

RunResult run_corpus(const std::string& cache_dir,
                     const std::vector<std::string>& sources) {
  BehaviorCache cache(cache_dir);
  const CacheStats before = cache.stats();
  Verifier verifier;
  verifier.set_cache(&cache);
  for (const std::string& source : sources) verifier.add_source(source);
  const Report report = verifier.verify_all();

  RunResult result;
  result.text = report.render(verifier.symbols());
  for (const auto& diag : verifier.diagnostics().diagnostics()) {
    result.text += std::string(to_string(diag.severity)) + " " +
                   to_string(diag.loc) + ": " + diag.message + "\n";
  }
  result.json = report_to_json(report, verifier);
  result.stats = cache.stats();
  result.stats.hits -= before.hits;
  result.stats.misses -= before.misses;
  result.stats.invalidations -= before.invalidations;
  result.stats.stores -= before.stores;
  return result;
}

TEST(CacheDifferential, WarmRunIsByteIdenticalAndAllHits) {
  const std::string dir = fresh_dir("warm_cold");
  const auto sources = corpus(examples::kValveSource, kLedSource);

  const RunResult cold = run_corpus(dir, sources);
  EXPECT_EQ(cold.stats.hits, 0u);
  EXPECT_EQ(cold.stats.misses, 5u);  // Valve, BadSector, Sector, GoodSector,
                                     // Led -- every @sys class
  // BadSector and Sector fail verification; failed verdicts are cached too
  // (they are deterministic results, not aborts).
  EXPECT_EQ(cold.stats.stores, 5u);

  const RunResult warm = run_corpus(dir, sources);
  EXPECT_EQ(warm.stats.hits, 5u);
  EXPECT_EQ(warm.stats.misses, 0u);
  EXPECT_EQ(warm.stats.invalidations, 0u);
  EXPECT_EQ(warm.text, cold.text);
  EXPECT_EQ(warm.json, cold.json);
}

TEST(CacheDifferential, EditingLeafInvalidatesItAndAllDependents) {
  const std::string dir = fresh_dir("edit_leaf");
  std::string valve = examples::kValveSource;

  run_corpus(dir, corpus(valve, kLedSource));

  // One-character substitution inside Valve.test's body (same length, so no
  // other location shifts): self.status.value() -> self.status.valse().
  const std::size_t at = valve.find("value()");
  ASSERT_NE(at, std::string::npos);
  valve.replace(at, 5, "valse");

  const RunResult edited = run_corpus(dir, corpus(valve, kLedSource));
  // Valve changed; BadSector, Sector, GoodSector fold Valve's key into
  // their own (dependency closure) and must miss with it.  Led is the only
  // hit.
  EXPECT_EQ(edited.stats.hits, 1u);
  EXPECT_EQ(edited.stats.misses, 4u);
  EXPECT_EQ(edited.stats.invalidations, 0u);

  // And the new results are themselves replayable.
  const RunResult warm = run_corpus(dir, corpus(valve, kLedSource));
  EXPECT_EQ(warm.stats.hits, 5u);
  EXPECT_EQ(warm.stats.misses, 0u);
  EXPECT_EQ(warm.text, edited.text);
  EXPECT_EQ(warm.json, edited.json);
}

TEST(CacheDifferential, EditingIsolatedClassInvalidatesOnlyIt) {
  const std::string dir = fresh_dir("edit_leaf_isolated");
  std::string led = kLedSource;

  run_corpus(dir, corpus(examples::kValveSource, led));

  // blink -> blunk (the op name itself; one character, same length).
  const std::size_t at = led.find("[\"blink\"]");
  ASSERT_NE(at, std::string::npos);
  led.replace(at + 4, 1, "u");
  const std::size_t def_at = led.find("def blink");
  ASSERT_NE(def_at, std::string::npos);
  led.replace(def_at + 6, 1, "u");

  const RunResult edited = run_corpus(dir, corpus(examples::kValveSource, led));
  EXPECT_EQ(edited.stats.hits, 4u);  // the whole valve hierarchy
  EXPECT_EQ(edited.stats.misses, 1u);
}

TEST(CacheDifferential, CompositeKeyFoldsSubsystemClosure) {
  // Direct key-level check of the same property: BadSector's own text is
  // unchanged, yet its key must change when Valve's does.
  Verifier original;
  original.add_source(examples::kValveSource);
  original.add_source(examples::kBadSectorSource);

  std::string valve = examples::kValveSource;
  const std::size_t at = valve.find("value()");
  ASSERT_NE(at, std::string::npos);
  valve.replace(at, 5, "valse");
  Verifier edited;
  edited.add_source(valve);
  edited.add_source(examples::kBadSectorSource);

  const ClassSpec* original_bad = original.find_class("BadSector");
  const ClassSpec* edited_bad = edited.find_class("BadSector");
  ASSERT_NE(original_bad, nullptr);
  ASSERT_NE(edited_bad, nullptr);
  EXPECT_NE(original.cache_key(*original_bad), edited.cache_key(*edited_bad));

  // While two identical registrations agree on the key (content, not
  // identity, addressing).
  Verifier again;
  again.add_source(examples::kValveSource);
  again.add_source(examples::kBadSectorSource);
  const ClassSpec* again_bad = again.find_class("BadSector");
  ASSERT_NE(again_bad, nullptr);
  EXPECT_EQ(original.cache_key(*original_bad), again.cache_key(*again_bad));
}

TEST(CacheDifferential, ParallelWarmRunMatchesSerialCold) {
  const std::string dir = fresh_dir("parallel_warm");
  const auto sources = corpus(examples::kValveSource, kLedSource);
  const RunResult cold = run_corpus(dir, sources);

  // A warm run on worker threads must replay the identical bytes: symbol
  // pre-warming keeps interning order serial even when replays race.
  BehaviorCache cache(dir);
  Verifier verifier;
  verifier.set_cache(&cache);
  for (const std::string& source : sources) verifier.add_source(source);
  const Report report = verifier.verify_all(4);

  std::string text = report.render(verifier.symbols());
  for (const auto& diag : verifier.diagnostics().diagnostics()) {
    text += std::string(to_string(diag.severity)) + " " + to_string(diag.loc) +
            ": " + diag.message + "\n";
  }
  EXPECT_EQ(text, cold.text);
  EXPECT_EQ(report_to_json(report, verifier), cold.json);
  EXPECT_EQ(cache.stats().hits, 5u);
}

}  // namespace
}  // namespace shelley::core
