#include "shelley/automata.hpp"

#include <gtest/gtest.h>

#include "fsm/ops.hpp"
#include "paper_sources.hpp"
#include "rex/equivalence.hpp"
#include "rex/parser.hpp"
#include "testing.hpp"
#include "upy/parser.hpp"

namespace shelley::core {
namespace {

class AutomataTest : public ::testing::Test {
 protected:
  ClassSpec extract_(const char* source, std::size_t index = 0) {
    const upy::Module module = upy::parse_module(source);
    return extract_class_spec(module.classes.at(index), diagnostics_);
  }
  Word word_(std::initializer_list<const char*> names) {
    return testing::word(table_, names);
  }

  SymbolTable table_;
  DiagnosticEngine diagnostics_;
};

// -- usage_nfa ----------------------------------------------------------------

TEST_F(AutomataTest, ValveUsageLanguage) {
  const ClassSpec valve = extract_(examples::kValveSource);
  const fsm::Nfa usage = usage_nfa(valve, table_);

  // Valid complete usages.
  EXPECT_TRUE(usage.accepts({}));  // never using the valve is fine
  EXPECT_TRUE(usage.accepts(word_({"test", "open", "close"})));
  EXPECT_TRUE(usage.accepts(word_({"test", "clean"})));
  EXPECT_TRUE(usage.accepts(
      word_({"test", "open", "close", "test", "clean"})));
  EXPECT_TRUE(usage.accepts(
      word_({"test", "clean", "test", "open", "close"})));

  // Invalid: open is not final -- the valve would stay open.
  EXPECT_FALSE(usage.accepts(word_({"test", "open"})));
  // Invalid: must test before opening.
  EXPECT_FALSE(usage.accepts(word_({"open", "close"})));
  // Invalid: close only follows open.
  EXPECT_FALSE(usage.accepts(word_({"test", "close"})));
  // Invalid: test alone is not final.
  EXPECT_FALSE(usage.accepts(word_({"test"})));
  // Invalid: clean twice in a row.
  EXPECT_FALSE(usage.accepts(word_({"test", "clean", "clean"})));
}

TEST_F(AutomataTest, UsagePrefixQualifiesSymbols) {
  const ClassSpec valve = extract_(examples::kValveSource);
  const fsm::Nfa usage = usage_nfa(valve, table_, "a.");
  EXPECT_TRUE(usage.accepts(word_({"a.test", "a.clean"})));
  EXPECT_FALSE(usage.accepts(word_({"test", "clean"})));
}

TEST_F(AutomataTest, UsageOfMultiInitialClass) {
  const ClassSpec spec = extract_(R"py(
@sys
class C:
    @op_initial_final
    def x(self):
        return ["y"]

    @op_initial_final
    def y(self):
        return ["x"]
)py");
  const fsm::Nfa usage = usage_nfa(spec, table_);
  EXPECT_TRUE(usage.accepts(word_({"x"})));
  EXPECT_TRUE(usage.accepts(word_({"y"})));
  EXPECT_TRUE(usage.accepts(word_({"x", "y", "x"})));
  EXPECT_FALSE(usage.accepts(word_({"x", "x"})));
}

TEST_F(AutomataTest, EmptySuccessorListIsTerminal) {
  const ClassSpec spec = extract_(R"py(
@sys
class C:
    @op_initial_final
    def once(self):
        return []
)py");
  const fsm::Nfa usage = usage_nfa(spec, table_);
  EXPECT_TRUE(usage.accepts(word_({"once"})));
  EXPECT_FALSE(usage.accepts(word_({"once", "once"})));
}

// -- extract_behaviors ---------------------------------------------------------

TEST_F(AutomataTest, BadSectorBehaviors) {
  const ClassSpec sector = extract_(examples::kBadSectorSource);
  const auto behaviors = extract_behaviors(sector, table_, diagnostics_);
  ASSERT_TRUE(behaviors.contains("open_a"));
  ASSERT_TRUE(behaviors.contains("open_b"));

  // open_a: a.test then either a.open (exit 0) or a.clean (exit 1).
  const OperationBehavior& open_a = behaviors.at("open_a");
  EXPECT_TRUE(rex::equivalent(
      open_a.inferred,
      rex::parse("a.test (a.open + a.clean)", table_)));
  EXPECT_FALSE(open_a.falls_off_end);
  ASSERT_EQ(open_a.behavior.returned.size(), 2u);

  // open_b closes both valves on the open path.
  const OperationBehavior& open_b = behaviors.at("open_b");
  EXPECT_TRUE(rex::equivalent(
      open_b.inferred,
      rex::parse("b.test (b.open a.close b.close + b.clean a.close)",
                 table_)));
}

TEST_F(AutomataTest, BehaviorOfBaseClassOpsIsEpsilon) {
  const ClassSpec valve = extract_(examples::kValveSource);
  const auto behaviors = extract_behaviors(valve, table_, diagnostics_);
  // No subsystems tracked: every body behavior is ε.
  for (const auto& [name, behavior] : behaviors) {
    EXPECT_TRUE(
        rex::equivalent(behavior.inferred, rex::epsilon()))
        << name;
  }
}

TEST_F(AutomataTest, FallsOffEndDetected) {
  const ClassSpec spec = extract_(R"py(
@sys(["a"])
class C:
    def __init__(self):
        self.a = Valve()

    @op_initial_final
    def m(self):
        if x:
            return []
        self.a.test()
)py");
  const auto behaviors = extract_behaviors(spec, table_, diagnostics_);
  EXPECT_TRUE(behaviors.at("m").falls_off_end);
}

// -- build_system_model --------------------------------------------------------

TEST_F(AutomataTest, BadSectorSystemLanguage) {
  const ClassSpec sector = extract_(examples::kBadSectorSource);
  const auto behaviors = extract_behaviors(sector, table_, diagnostics_);
  const SystemModel model =
      build_system_model(sector, behaviors, table_, diagnostics_);

  EXPECT_EQ(model.op_symbols.size(), 2u);   // open_a, open_b
  EXPECT_EQ(model.event_symbols.size(), 8u);  // 4 calls per valve

  // The offending complete behavior from the paper's Figure 2.
  EXPECT_TRUE(model.nfa.accepts(word_({"open_a", "a.test", "a.open"})));
  // The full good run.
  EXPECT_TRUE(model.nfa.accepts(
      word_({"open_a", "a.test", "a.open", "open_b", "b.test", "b.open",
             "a.close", "b.close"})));
  // The failure path of open_a.
  EXPECT_TRUE(model.nfa.accepts(word_({"open_a", "a.test", "a.clean"})));
  // Cannot continue after the empty-successor exit.
  EXPECT_FALSE(model.nfa.accepts(
      word_({"open_a", "a.test", "a.clean", "open_b", "b.test", "b.clean",
             "a.close"})));
  // Operations interleave with their own body events only.
  EXPECT_FALSE(model.nfa.accepts(word_({"open_a", "b.test", "a.open"})));
  // The empty usage is a valid (vacuous) behavior.
  EXPECT_TRUE(model.nfa.accepts({}));
}

TEST_F(AutomataTest, SystemModelRoutesExitsToDeclaredSuccessors) {
  const ClassSpec sector = extract_(examples::kBadSectorSource);
  const auto behaviors = extract_behaviors(sector, table_, diagnostics_);
  const SystemModel model =
      build_system_model(sector, behaviors, table_, diagnostics_);
  // Exit 0 of open_a (the a.open path) allows open_b...
  EXPECT_TRUE(model.nfa.accepts(
      word_({"open_a", "a.test", "a.open", "open_b", "b.test", "b.clean",
             "a.close"})));
  // ...but exit 1 (the a.clean path) does not (returns []).
  EXPECT_FALSE(model.nfa.accepts(
      word_({"open_a", "a.test", "a.clean", "open_b", "b.test", "b.clean",
             "a.close"})));
}

TEST_F(AutomataTest, FallOffEndGetsImplicitExitWithWarning) {
  const ClassSpec spec = extract_(R"py(
@sys(["a"])
class C:
    def __init__(self):
        self.a = Valve()

    @op_initial_final
    def m(self):
        if x:
            return ["m"]
        self.a.test()
)py");
  const auto behaviors = extract_behaviors(spec, table_, diagnostics_);
  const std::size_t warnings_before = diagnostics_.diagnostics().size();
  const SystemModel model =
      build_system_model(spec, behaviors, table_, diagnostics_);
  EXPECT_GT(diagnostics_.diagnostics().size(), warnings_before);
  // The fall-off path (m; a.test) is a complete behavior with no successor.
  EXPECT_TRUE(model.nfa.accepts(word_({"m", "a.test"})));
  EXPECT_FALSE(model.nfa.accepts(word_({"m", "a.test", "m"})));
  // The returning path allows repetition.
  EXPECT_TRUE(model.nfa.accepts(word_({"m", "m", "a.test"})));
}

TEST_F(AutomataTest, FullAlphabetIsSortedAndDeduplicated) {
  const ClassSpec sector = extract_(examples::kBadSectorSource);
  const auto behaviors = extract_behaviors(sector, table_, diagnostics_);
  const SystemModel model =
      build_system_model(sector, behaviors, table_, diagnostics_);
  const auto alphabet = model.full_alphabet();
  EXPECT_EQ(alphabet.size(), 10u);
  EXPECT_TRUE(std::is_sorted(alphabet.begin(), alphabet.end()));
}

}  // namespace
}  // namespace shelley::core
