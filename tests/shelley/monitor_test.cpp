#include "shelley/monitor.hpp"

#include <gtest/gtest.h>

#include <random>

#include "paper_sources.hpp"
#include "upy/parser.hpp"

namespace shelley::core {
namespace {

class MonitorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const upy::Module module = upy::parse_module(examples::kValveSource);
    valve_ = extract_class_spec(module.classes.at(0), diagnostics_);
  }

  ClassSpec valve_;
  SymbolTable table_;
  DiagnosticEngine diagnostics_;
};

TEST_F(MonitorTest, FreshMonitorIsCompleted) {
  Monitor monitor(valve_, table_);
  EXPECT_TRUE(monitor.completed());  // never using the valve is valid
  EXPECT_TRUE(monitor.can_complete());
  EXPECT_FALSE(monitor.violated());
}

TEST_F(MonitorTest, ValidLifecycle) {
  Monitor monitor(valve_, table_);
  EXPECT_EQ(monitor.feed("test"), Verdict::kOk);
  EXPECT_FALSE(monitor.completed());  // test is not final
  EXPECT_EQ(monitor.feed("open"), Verdict::kOk);
  EXPECT_FALSE(monitor.completed());
  EXPECT_EQ(monitor.feed("close"), Verdict::kOk);
  EXPECT_TRUE(monitor.completed());  // close is final
  // Lifecycle can continue: close -> test.
  EXPECT_EQ(monitor.feed("test"), Verdict::kOk);
  EXPECT_EQ(monitor.feed("clean"), Verdict::kOk);
  EXPECT_TRUE(monitor.completed());
}

TEST_F(MonitorTest, ViolationLatchesAndReports) {
  Monitor monitor(valve_, table_);
  EXPECT_EQ(monitor.feed("open"), Verdict::kViolation);  // must test first
  EXPECT_TRUE(monitor.violated());
  EXPECT_FALSE(monitor.completed());
  EXPECT_FALSE(monitor.can_complete());
  // Latches: even a legal-looking call keeps reporting violation.
  EXPECT_EQ(monitor.feed("test"), Verdict::kViolation);
  EXPECT_EQ(monitor.history().size(), 2u);
}

TEST_F(MonitorTest, UnknownOperationIsViolation) {
  Monitor monitor(valve_, table_);
  EXPECT_EQ(monitor.feed("explode"), Verdict::kViolation);
}

TEST_F(MonitorTest, WrongOrderIsViolation) {
  Monitor monitor(valve_, table_);
  EXPECT_EQ(monitor.feed("test"), Verdict::kOk);
  EXPECT_EQ(monitor.feed("close"), Verdict::kViolation);  // close needs open
}

TEST_F(MonitorTest, AllowedNextFollowsExits) {
  Monitor monitor(valve_, table_);
  EXPECT_EQ(monitor.allowed_next(), (std::vector<std::string>{"test"}));
  monitor.feed("test");
  const auto next = monitor.allowed_next();
  EXPECT_EQ(next.size(), 2u);  // open or clean, in symbol order
  monitor.feed("open");
  EXPECT_EQ(monitor.allowed_next(), (std::vector<std::string>{"close"}));
}

TEST_F(MonitorTest, ResetRestoresInitialState) {
  Monitor monitor(valve_, table_);
  monitor.feed("open");
  ASSERT_TRUE(monitor.violated());
  monitor.reset();
  EXPECT_FALSE(monitor.violated());
  EXPECT_TRUE(monitor.history().empty());
  EXPECT_EQ(monitor.feed("test"), Verdict::kOk);
}

TEST_F(MonitorTest, DoomedVerdictOnStuckButDeclaredPath) {
  DiagnosticEngine diagnostics;
  const upy::Module module = upy::parse_module(R"py(
@sys
class OneWay:
    @op_initial_final
    def done(self):
        return []

    @op_initial
    def enter(self):
        return ["spin"]

    @op
    def spin(self):
        return ["spin"]
)py");
  const ClassSpec spec =
      extract_class_spec(module.classes.at(0), diagnostics);
  Monitor monitor(spec, table_);
  // `enter` is a declared initial op, but from there no final op is ever
  // reachable -- the monitor flags the step immediately.
  EXPECT_NE(monitor.feed("enter"), Verdict::kOk);
}

TEST_F(MonitorTest, HistoryIsBoundedByTheRingLimit) {
  Monitor monitor(valve_, table_);
  monitor.set_history_limit(4);
  for (int cycle = 0; cycle < 10; ++cycle) {
    monitor.feed("test");
    monitor.feed("open");
    monitor.feed("close");
  }
  EXPECT_FALSE(monitor.violated());
  EXPECT_EQ(monitor.events_fed(), 30u);
  // Between limit and 2x limit entries are retained (amortized trimming).
  EXPECT_GE(monitor.history().size(), 4u);
  EXPECT_LT(monitor.history().size(), 8u);
  // The retained suffix is the most recent calls, in order.
  EXPECT_EQ(monitor.history().back(), "close");
}

TEST_F(MonitorTest, HistoryLimitZeroKeepsEverything) {
  Monitor monitor(valve_, table_);
  monitor.set_history_limit(0);
  for (int cycle = 0; cycle < 1000; ++cycle) {
    monitor.feed("test");
    monitor.feed("clean");
  }
  EXPECT_EQ(monitor.history().size(), 2000u);
  EXPECT_EQ(monitor.events_fed(), 2000u);
}

TEST_F(MonitorTest, DefaultHistoryLimitBoundsUnboundedStreams) {
  Monitor monitor(valve_, table_);
  ASSERT_EQ(monitor.history_limit(), Monitor::kDefaultHistoryLimit);
  for (std::size_t i = 0; i < Monitor::kDefaultHistoryLimit * 5; ++i) {
    monitor.feed(i % 2 == 0 ? "test" : "clean");
  }
  EXPECT_LT(monitor.history().size(), Monitor::kDefaultHistoryLimit * 2);
  EXPECT_EQ(monitor.events_fed(), Monitor::kDefaultHistoryLimit * 5);
}

TEST_F(MonitorTest, FeedLetterMatchesFeedByName) {
  Monitor by_name(valve_, table_);
  Monitor by_letter(valve_, table_);
  const char* trace[] = {"test", "open", "close", "close"};
  for (const char* op : trace) {
    const fsm::CompiledDfa::Letter letter =
        by_letter.compiled().letter_of(op);
    EXPECT_EQ(by_letter.feed_letter(letter), by_name.feed(op));
    EXPECT_EQ(by_letter.violated(), by_name.violated());
    EXPECT_EQ(by_letter.completed(), by_name.completed());
  }
  // Letter feeds count events but record no history.
  EXPECT_EQ(by_letter.events_fed(), 4u);
  EXPECT_TRUE(by_letter.history().empty());
  EXPECT_EQ(by_name.history().size(), 4u);
}

TEST_F(MonitorTest, UnknownLetterIsViolation) {
  Monitor monitor(valve_, table_);
  EXPECT_EQ(monitor.feed_letter(fsm::CompiledDfa::kNoLetter),
            Verdict::kViolation);
  EXPECT_TRUE(monitor.violated());
}

TEST_F(MonitorTest, AllowedNextLetterOverloadMatchesStrings) {
  Monitor monitor(valve_, table_);
  std::vector<fsm::CompiledDfa::Letter> letters = {99, 98};  // stale scratch
  monitor.feed("test");
  monitor.allowed_next(letters);  // clears, then fills
  const std::vector<std::string> names = monitor.allowed_next();
  ASSERT_EQ(letters.size(), names.size());
  for (std::size_t i = 0; i < letters.size(); ++i) {
    EXPECT_EQ(monitor.compiled().event_name(letters[i]), names[i]);
  }
  monitor.feed("close");  // violation
  monitor.allowed_next(letters);
  EXPECT_TRUE(letters.empty());
  EXPECT_TRUE(monitor.allowed_next().empty());
}

TEST_F(MonitorTest, MonitorAgreesWithUsageDfaOnRandomWords) {
  // Cross-check: the monitor accepts exactly the prefixes of valid usages.
  Monitor monitor(valve_, table_);
  const char* ops[] = {"test", "open", "close", "clean"};
  std::mt19937_64 rng(7);
  for (int round = 0; round < 200; ++round) {
    monitor.reset();
    bool ok_so_far = true;
    for (int step = 0; step < 6; ++step) {
      const char* op = ops[rng() % 4];
      const Verdict verdict = monitor.feed(op);
      if (verdict == Verdict::kViolation) {
        ok_so_far = false;
        break;
      }
    }
    if (ok_so_far) {
      // A non-violating history must be extendable to completion.
      EXPECT_TRUE(monitor.can_complete());
    }
  }
}

}  // namespace
}  // namespace shelley::core
