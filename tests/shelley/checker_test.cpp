#include "shelley/checker.hpp"

#include <gtest/gtest.h>

#include "ltlf/eval.hpp"
#include "ltlf/parser.hpp"
#include "paper_sources.hpp"
#include "testing.hpp"
#include "upy/parser.hpp"

namespace shelley::core {
namespace {

class CheckerTest : public ::testing::Test {
 protected:
  void load_(const char* source) {
    const upy::Module module = upy::parse_module(source);
    for (const upy::ClassDef& cls : module.classes) {
      specs_.push_back(extract_class_spec(cls, diagnostics_));
    }
  }
  ClassLookup lookup_() {
    return [this](const std::string& name) -> const ClassSpec* {
      for (const ClassSpec& spec : specs_) {
        if (spec.name == name) return &spec;
      }
      return nullptr;
    };
  }
  const ClassSpec& spec_(std::string_view name) {
    for (const ClassSpec& spec : specs_) {
      if (spec.name == name) return spec;
    }
    throw std::logic_error("unknown spec in test");
  }
  CheckResult check_(std::string_view name) {
    return check_composite(spec_(name), lookup_(), table_, diagnostics_);
  }

  std::deque<ClassSpec> specs_;
  SymbolTable table_;
  DiagnosticEngine diagnostics_;
};

// -- The paper's §2.2 findings, pinned ---------------------------------------

TEST_F(CheckerTest, BadSectorInvalidSubsystemUsageExactlyAsPaper) {
  load_(examples::kValveSource);
  load_(examples::kBadSectorSource);
  const CheckResult result = check_("BadSector");

  ASSERT_EQ(result.subsystem_errors.size(), 1u);
  const SubsystemError& error = result.subsystem_errors[0];
  EXPECT_EQ(error.field, "a");
  EXPECT_EQ(error.class_name, "Valve");
  EXPECT_EQ(to_string(error.counterexample, table_),
            "open_a, a.test, a.open");
  EXPECT_EQ(error.detail, "test, >open< (not final)");
}

TEST_F(CheckerTest, BadSectorClaimFailsWithRealViolation) {
  load_(examples::kValveSource);
  load_(examples::kBadSectorSource);
  const CheckResult result = check_("BadSector");

  ASSERT_EQ(result.claim_errors.size(), 1u);
  EXPECT_EQ(result.claim_errors[0].formula, "(!a.open) W b.open");
  // The witness must actually violate the claim (the paper prints a longer
  // trace; ours is the shortest, which is stronger).
  const ltlf::Formula claim = ltlf::parse("(!a.open) W b.open", table_);
  EXPECT_FALSE(ltlf::eval(claim, result.claim_errors[0].counterexample));
}

TEST_F(CheckerTest, RenderMatchesPaperFormat) {
  load_(examples::kValveSource);
  load_(examples::kBadSectorSource);
  const CheckResult result = check_("BadSector");
  const std::string report = result.render(table_);
  EXPECT_NE(report.find("Error in specification: INVALID SUBSYSTEM USAGE\n"
                        "Counter example: open_a, a.test, a.open\n"
                        "Subsystems errors:\n"
                        "  * Valve 'a': test, >open< (not final)\n"),
            std::string::npos);
  EXPECT_NE(report.find("Error in specification: FAIL TO MEET REQUIREMENT\n"
                        "Formula: (!a.open) W b.open\n"),
            std::string::npos);
}

TEST_F(CheckerTest, GoodSectorPasses) {
  load_(examples::kValveSource);
  load_(examples::kGoodSectorSource);
  const CheckResult result = check_("GoodSector");
  EXPECT_TRUE(result.ok()) << result.render(table_);
  EXPECT_TRUE(result.render(table_).empty());
}

TEST_F(CheckerTest, SectorFromListing31Passes) {
  load_(examples::kValveSource);
  load_(examples::kSectorSource);
  const CheckResult result = check_("Sector");
  EXPECT_TRUE(result.ok()) << result.render(table_);
}

// -- Targeted usage violations -------------------------------------------------

TEST_F(CheckerTest, NotAllowedStepIsDiagnosed) {
  load_(examples::kValveSource);
  load_(R"py(
@sys(["a"])
class OpenTwice:
    def __init__(self):
        self.a = Valve()

    @op_initial_final
    def go(self):
        match self.a.test():
            case ["open"]:
                self.a.open()
                self.a.open()
                self.a.close()
                return []
            case ["clean"]:
                self.a.clean()
                return []
)py");
  const CheckResult result = check_("OpenTwice");
  ASSERT_EQ(result.subsystem_errors.size(), 1u);
  EXPECT_NE(result.subsystem_errors[0].detail.find(">open< (not allowed)"),
            std::string::npos);
}

TEST_F(CheckerTest, SkippingTestIsDiagnosed) {
  load_(examples::kValveSource);
  load_(R"py(
@sys(["a"])
class NoTest:
    def __init__(self):
        self.a = Valve()

    @op_initial_final
    def go(self):
        self.a.open()
        self.a.close()
        return []
)py");
  const CheckResult result = check_("NoTest");
  ASSERT_EQ(result.subsystem_errors.size(), 1u);
  EXPECT_NE(result.subsystem_errors[0].detail.find(">open< (not allowed)"),
            std::string::npos);
}

TEST_F(CheckerTest, UnusedSubsystemIsFine) {
  load_(examples::kValveSource);
  load_(R"py(
@sys(["a", "b"])
class UsesOnlyA:
    def __init__(self):
        self.a = Valve()
        self.b = Valve()

    @op_initial_final
    def go(self):
        match self.a.test():
            case ["open"]:
                self.a.open()
                self.a.close()
                return []
            case ["clean"]:
                self.a.clean()
                return []
)py");
  EXPECT_TRUE(check_("UsesOnlyA").ok());
}

TEST_F(CheckerTest, UnknownSubsystemClassReportsDiagnostic) {
  load_(R"py(
@sys(["a"])
class Orphan:
    def __init__(self):
        self.a = Mystery()

    @op_initial_final
    def go(self):
        return []
)py");
  const CheckResult result = check_("Orphan");
  EXPECT_TRUE(result.subsystem_errors.empty());
  EXPECT_TRUE(diagnostics_.has_errors());
}

TEST_F(CheckerTest, UnparsableClaimReportsDiagnostic) {
  load_(examples::kValveSource);
  load_(R"py(
@claim("(((")
@sys(["a"])
class BadClaim:
    def __init__(self):
        self.a = Valve()

    @op_initial_final
    def go(self):
        match self.a.test():
            case ["open"]:
                self.a.open()
                self.a.close()
                return []
            case ["clean"]:
                self.a.clean()
                return []
)py");
  const CheckResult result = check_("BadClaim");
  EXPECT_TRUE(result.claim_errors.empty());
  EXPECT_TRUE(diagnostics_.has_errors());
}

TEST_F(CheckerTest, PassingClaimProducesNoError) {
  load_(examples::kValveSource);
  load_(R"py(
@claim("G (a.open -> F a.close)")
@sys(["a"])
class AlwaysCloses:
    def __init__(self):
        self.a = Valve()

    @op_initial_final
    def go(self):
        match self.a.test():
            case ["open"]:
                self.a.open()
                self.a.close()
                return []
            case ["clean"]:
                self.a.clean()
                return []
)py");
  EXPECT_TRUE(check_("AlwaysCloses").ok());
}

TEST_F(CheckerTest, ClaimCounterexampleContainsOnlySubsystemEvents) {
  load_(examples::kValveSource);
  load_(examples::kBadSectorSource);
  const CheckResult result = check_("BadSector");
  ASSERT_EQ(result.claim_errors.size(), 1u);
  for (Symbol s : result.claim_errors[0].counterexample) {
    const std::string& name = table_.name(s);
    EXPECT_NE(name.find('.'), std::string::npos)
        << "operation label leaked into claim counterexample: " << name;
  }
}

// -- diagnose_subsystem_usage directly -----------------------------------------

TEST_F(CheckerTest, DiagnoseNotFinal) {
  load_(examples::kValveSource);
  Word projected{table_.intern("a.test"), table_.intern("a.open")};
  EXPECT_EQ(diagnose_subsystem_usage(spec_("Valve"), "a", projected, table_),
            "test, >open< (not final)");
}

TEST_F(CheckerTest, DiagnoseNotAllowed) {
  load_(examples::kValveSource);
  Word projected{table_.intern("a.open")};
  EXPECT_EQ(diagnose_subsystem_usage(spec_("Valve"), "a", projected, table_),
            ">open< (not allowed)");
}

TEST_F(CheckerTest, DiagnoseValidWordRendersPlainly) {
  load_(examples::kValveSource);
  Word projected{table_.intern("a.test"), table_.intern("a.clean")};
  EXPECT_EQ(diagnose_subsystem_usage(spec_("Valve"), "a", projected, table_),
            "test, clean");
}

TEST_F(CheckerTest, DiagnoseUndeclaredOperation) {
  load_(examples::kValveSource);
  Word projected{table_.intern("a.test"), table_.intern("a.explode")};
  EXPECT_EQ(diagnose_subsystem_usage(spec_("Valve"), "a", projected, table_),
            "test, >explode< (undeclared operation)");
}

}  // namespace
}  // namespace shelley::core
