// @claim on *base* classes: checked against the valid-usage language over
// bare operation names.
#include <gtest/gtest.h>

#include "ltlf/eval.hpp"
#include "ltlf/parser.hpp"
#include "shelley/verifier.hpp"

namespace shelley::core {
namespace {

TEST(BaseClaims, HoldingClaimPasses) {
  Verifier verifier;
  verifier.add_source(R"py(
@claim("G (open -> F close)")
@sys
class Valve:
    @op_initial
    def test(self):
        if x:
            return ["open"]
        else:
            return ["clean"]

    @op
    def open(self):
        return ["close"]

    @op_final
    def close(self):
        return ["test"]

    @op_final
    def clean(self):
        return ["test"]
)py");
  const Report report = verifier.verify_all();
  EXPECT_TRUE(report.ok()) << report.render(verifier.symbols());
}

TEST(BaseClaims, ViolatedClaimIsReportedWithCounterexample) {
  Verifier verifier;
  verifier.add_source(R"py(
@claim("F open")
@sys
class Valve:
    @op_initial
    def test(self):
        if x:
            return ["open"]
        else:
            return ["clean"]

    @op
    def open(self):
        return ["close"]

    @op_final
    def close(self):
        return ["test"]

    @op_final
    def clean(self):
        return ["test"]
)py");
  const Report report = verifier.verify_all();
  ASSERT_EQ(report.classes.size(), 1u);
  ASSERT_EQ(report.classes[0].check.claim_errors.size(), 1u);
  // The empty usage (or test,clean) never opens: a genuine violation.
  const ltlf::Formula claim = ltlf::parse("F open", verifier.symbols());
  EXPECT_FALSE(
      ltlf::eval(claim, report.classes[0].check.claim_errors[0]
                            .counterexample));
  EXPECT_NE(report.render(verifier.symbols())
                .find("FAIL TO MEET REQUIREMENT"),
            std::string::npos);
}

TEST(BaseClaims, UnparsableClaimIsDiagnosed) {
  Verifier verifier;
  verifier.add_source(R"py(
@claim(")) bad ((")
@sys
class C:
    @op_initial_final
    def m(self):
        return []
)py");
  (void)verifier.verify_all();
  EXPECT_TRUE(verifier.diagnostics().has_errors());
}

TEST(BaseClaims, OrderingClaimOnLifecycle) {
  // "close never happens before open" as a base-class claim.
  Verifier verifier;
  verifier.add_source(R"py(
@claim("(!close) W open")
@sys
class Valve:
    @op_initial
    def test(self):
        if x:
            return ["open"]
        else:
            return ["clean"]

    @op
    def open(self):
        return ["close"]

    @op_final
    def close(self):
        return ["test"]

    @op_final
    def clean(self):
        return ["test"]
)py");
  EXPECT_TRUE(verifier.verify_all().ok());
}

}  // namespace
}  // namespace shelley::core
