// Error-recovery parsing: one pass collects every syntax error of a file
// (with correct, source-ordered locations) and the classes that survive
// recovery still reach the verifier.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "shelley/verifier.hpp"
#include "support/guard.hpp"
#include "upy/parser.hpp"

namespace shelley::upy {
namespace {

std::vector<Diagnostic> errors_of(const DiagnosticEngine& diagnostics) {
  std::vector<Diagnostic> out;
  for (const Diagnostic& diag : diagnostics.diagnostics()) {
    if (diag.severity == Severity::kError) out.push_back(diag);
  }
  return out;
}

// Three seeded errors on lines 5, 10, and 15; everything else is valid.
constexpr const char* kThreeErrors =
    "@sys\n"                       // 1
    "class Valve:\n"               // 2
    "    @op_initial\n"            // 3
    "    def test(self):\n"        // 4
    "        x = = 1\n"            // 5  <- error: '=' is not an expression
    "        return [\"open\"]\n"  // 6
    "\n"                           // 7
    "    @op\n"                    // 8
    "    def open(self):\n"        // 9
    "        return return\n"      // 10 <- error: 'return' in expression
    "\n"                           // 11
    "    @op_final\n"              // 12
    "    def close(self):\n"       // 13
    "        y = self.f(]\n"       // 14 <- error: ']' closes '('
    "        return [\"test\"]\n";  // 15

TEST(Recovery, CollectsAllErrorsWithSourceOrderedLocations) {
  DiagnosticEngine diagnostics;
  const Module module = parse_module(kThreeErrors, diagnostics);
  const std::vector<Diagnostic> errors = errors_of(diagnostics);
  ASSERT_EQ(errors.size(), 3u);
  EXPECT_EQ(errors[0].loc.line, 5u);
  EXPECT_EQ(errors[1].loc.line, 10u);
  EXPECT_EQ(errors[2].loc.line, 14u);
  for (std::size_t i = 1; i < errors.size(); ++i) {
    EXPECT_LT(errors[i - 1].loc.line, errors[i].loc.line);
  }
  // The class (and all three methods) survived recovery.
  ASSERT_EQ(module.classes.size(), 1u);
  EXPECT_EQ(module.classes[0].name, "Valve");
  EXPECT_EQ(module.classes[0].methods.size(), 3u);
}

TEST(Recovery, WithoutRecoveryTheFirstErrorThrows) {
  try {
    (void)parse_module(kThreeErrors);
    FAIL() << "expected ParseError";
  } catch (const ParseError& error) {
    EXPECT_EQ(error.loc().line, 5u);
  }
}

TEST(Recovery, CleanSourceReportsNothing) {
  DiagnosticEngine diagnostics;
  const Module module = parse_module(
      "@sys\nclass C:\n    @op_initial_final\n    def a(self):\n"
      "        return []\n",
      diagnostics);
  EXPECT_TRUE(errors_of(diagnostics).empty());
  ASSERT_EQ(module.classes.size(), 1u);
}

TEST(Recovery, VerifierRegistersSurvivingClasses) {
  core::Verifier verifier;
  const std::size_t new_errors = verifier.add_source_recover(kThreeErrors);
  EXPECT_EQ(new_errors, 3u);
  EXPECT_NE(verifier.find_class("Valve"), nullptr);
  // The surviving spec is verifiable (findings are fine; crashes are not).
  const core::Report report = verifier.verify_all();
  ASSERT_EQ(report.classes.size(), 1u);
}

TEST(Recovery, ErrorOutsideAnyClassDoesNotHideLaterClasses) {
  DiagnosticEngine diagnostics;
  const Module module = parse_module(
      "def stray():\n"
      "    pass\n"
      "@sys\n"
      "class Late:\n"
      "    @op_initial_final\n"
      "    def a(self):\n"
      "        return []\n",
      diagnostics);
  EXPECT_GE(errors_of(diagnostics).size(), 1u);
  ASSERT_EQ(module.classes.size(), 1u);
  EXPECT_EQ(module.classes[0].name, "Late");
}

TEST(Recovery, ErrorCountIsCapped) {
  // One bad statement per line, far beyond the cap: recovery must stop at
  // the cap (plus its explanatory note) instead of drowning the user.
  std::string source = "@sys\nclass Chaff:\n    def f(self):\n";
  for (int i = 0; i < 500; ++i) source += "        x = = 1\n";
  DiagnosticEngine diagnostics;
  (void)parse_module(source, diagnostics);
  EXPECT_LE(errors_of(diagnostics).size(), 100u);
}

std::string deeply_nested_source() {
  std::string source =
      "@sys\nclass Deep:\n    @op_initial_final\n    def f(self):\n"
      "        x = ";
  source += std::string(100000, '(');
  source += "1";
  source += std::string(100000, ')');
  source += "\n        return []\n";
  return source;
}

TEST(Recovery, ResourceErrorsAreNotRecovered) {
  // Recovery swallows syntax errors, never resource exhaustion: a depth
  // blowup must abort the parse (as a structured error), not loop on it.
  DiagnosticEngine diagnostics;
  EXPECT_THROW((void)parse_module(deeply_nested_source(), diagnostics),
               support::guard::ResourceError);
}

TEST(Recovery, VerifierTurnsResourceErrorIntoDiagnostic) {
  core::Verifier verifier;
  std::size_t new_errors = 0;
  EXPECT_NO_THROW(new_errors =
                      verifier.add_source_recover(deeply_nested_source()));
  EXPECT_GE(new_errors, 1u);
}

TEST(Recovery, UnterminatedBaseClassListTerminates) {
  // Regression (found by fuzz_frontend): `class X (...` with no closing
  // paren before EOF spun the base-class skip loop forever.
  DiagnosticEngine diagnostics;
  const Module module =
      parse_module("@sys\nclass BG (a.open -> F a.croken:", diagnostics);
  EXPECT_TRUE(diagnostics.has_errors());
  (void)module;
}

}  // namespace
}  // namespace shelley::upy
