#include "upy/parser.hpp"

#include <gtest/gtest.h>

namespace shelley::upy {
namespace {

TEST(UpyParser, EmptyModule) {
  EXPECT_TRUE(parse_module("").classes.empty());
  EXPECT_TRUE(parse_module("\n\n# just a comment\n").classes.empty());
}

TEST(UpyParser, ImportsAreSkipped) {
  const Module module = parse_module(
      "import machine\nfrom machine import Pin\n\nclass A:\n    pass\n");
  ASSERT_EQ(module.classes.size(), 1u);
  EXPECT_EQ(module.classes[0].name, "A");
}

TEST(UpyParser, ClassWithDecoratorsAndMethods) {
  const Module module = parse_module(R"py(
@sys
class Valve:
    def __init__(self):
        self.control = Pin(27, OUT)

    @op_initial
    def test(self):
        return ["open"]
)py");
  ASSERT_EQ(module.classes.size(), 1u);
  const ClassDef& cls = module.classes[0];
  EXPECT_EQ(cls.name, "Valve");
  ASSERT_EQ(cls.decorators.size(), 1u);
  EXPECT_EQ(cls.decorators[0].name, "sys");
  EXPECT_FALSE(cls.decorators[0].has_call);
  ASSERT_EQ(cls.methods.size(), 2u);
  EXPECT_EQ(cls.methods[0].name, "__init__");
  EXPECT_EQ(cls.methods[1].name, "test");
  ASSERT_EQ(cls.methods[1].decorators.size(), 1u);
  EXPECT_EQ(cls.methods[1].decorators[0].name, "op_initial");
}

TEST(UpyParser, DecoratorWithArguments) {
  const Module module = parse_module(
      "@sys([\"a\", \"b\"])\n@claim(\"G x\")\nclass C:\n    pass\n");
  const ClassDef& cls = module.classes[0];
  ASSERT_EQ(cls.decorators.size(), 2u);
  EXPECT_TRUE(cls.decorators[0].has_call);
  ASSERT_EQ(cls.decorators[0].args.size(), 1u);
  const auto* list = as<ListExpr>(cls.decorators[0].args[0]);
  ASSERT_NE(list, nullptr);
  EXPECT_EQ(list->elements.size(), 2u);
  const auto* claim = as<StringExpr>(cls.decorators[1].args[0]);
  ASSERT_NE(claim, nullptr);
  EXPECT_EQ(claim->value, "G x");
}

TEST(UpyParser, MethodParameters) {
  const Module module = parse_module(
      "class C:\n    def m(self, a, b=3):\n        pass\n");
  const FunctionDef& fn = module.classes[0].methods[0];
  EXPECT_EQ(fn.params, (std::vector<std::string>{"self", "a", "b"}));
}

Block body_of(std::string_view method_source) {
  std::string source = "class C:\n    def m(self):\n";
  for (const auto& line : std::string(method_source)) {
    (void)line;
  }
  source += std::string(method_source);
  const Module module = parse_module(source);
  return module.classes.at(0).methods.at(0).body;
}

TEST(UpyParser, ReturnForms) {
  const Block block = body_of(
      "        return\n"
      "        return [\"a\"]\n"
      "        return [\"a\", \"b\"], 2\n"
      "        return []\n");
  ASSERT_EQ(block.size(), 4u);
  EXPECT_EQ(as<ReturnStmt>(block[0])->value, nullptr);
  EXPECT_NE(as<ReturnStmt>(block[1])->value, nullptr);
  const auto* tuple = as<TupleExpr>(as<ReturnStmt>(block[2])->value);
  ASSERT_NE(tuple, nullptr);
  EXPECT_EQ(tuple->elements.size(), 2u);
  const auto* empty_list = as<ListExpr>(as<ReturnStmt>(block[3])->value);
  ASSERT_NE(empty_list, nullptr);
  EXPECT_TRUE(empty_list->elements.empty());
}

TEST(UpyParser, IfElifElseDesugarsToNestedIf) {
  const Block block = body_of(
      "        if a:\n"
      "            x = 1\n"
      "        elif b:\n"
      "            x = 2\n"
      "        else:\n"
      "            x = 3\n");
  ASSERT_EQ(block.size(), 1u);
  const auto* outer = as<IfStmt>(block[0]);
  ASSERT_NE(outer, nullptr);
  ASSERT_EQ(outer->else_body.size(), 1u);
  const auto* inner = as<IfStmt>(outer->else_body[0]);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->then_body.size(), 1u);
  EXPECT_EQ(inner->else_body.size(), 1u);
}

TEST(UpyParser, WhileAndForLoops) {
  const Block block = body_of(
      "        while x < 3:\n"
      "            x = x + 1\n"
      "        for i in range(10):\n"
      "            y = i\n");
  ASSERT_EQ(block.size(), 2u);
  ASSERT_NE(as<WhileStmt>(block[0]), nullptr);
  const auto* loop = as<ForStmt>(block[1]);
  ASSERT_NE(loop, nullptr);
  EXPECT_EQ(loop->target, "i");
}

TEST(UpyParser, MatchWithCasesAndWildcard) {
  const Block block = body_of(
      "        match self.a.test():\n"
      "            case [\"open\"]:\n"
      "                x = 1\n"
      "            case [\"clean\"]:\n"
      "                x = 2\n"
      "            case _:\n"
      "                x = 3\n");
  const auto* match = as<MatchStmt>(block[0]);
  ASSERT_NE(match, nullptr);
  ASSERT_EQ(match->cases.size(), 3u);
  EXPECT_NE(match->cases[0].pattern, nullptr);
  EXPECT_NE(match->cases[1].pattern, nullptr);
  EXPECT_EQ(match->cases[2].pattern, nullptr);  // wildcard
}

TEST(UpyParser, MatchRequiresAtLeastOneCase) {
  EXPECT_THROW(parse_module("class C:\n    def m(self):\n"
                            "        match x:\n            pass\n"),
               ParseError);
}

TEST(UpyParser, OneLineSuites) {
  const Block block = body_of("        if a: x = 1; y = 2\n");
  const auto* branch = as<IfStmt>(block[0]);
  ASSERT_NE(branch, nullptr);
  EXPECT_EQ(branch->then_body.size(), 2u);
}

TEST(UpyParser, ExpressionPrecedence) {
  const ExprPtr expr = parse_expression("1 + 2 * 3");
  const auto* add = as<BinaryExpr>(expr);
  ASSERT_NE(add, nullptr);
  EXPECT_EQ(add->op, "+");
  const auto* mul = as<BinaryExpr>(add->right);
  ASSERT_NE(mul, nullptr);
  EXPECT_EQ(mul->op, "*");
}

TEST(UpyParser, BooleanPrecedence) {
  // not a or b and c  ==  (not a) or (b and c)
  const ExprPtr expr = parse_expression("not a or b and c");
  const auto* disj = as<BinaryExpr>(expr);
  ASSERT_NE(disj, nullptr);
  EXPECT_EQ(disj->op, "or");
  EXPECT_NE(as<UnaryExpr>(disj->left), nullptr);
  const auto* conj = as<BinaryExpr>(disj->right);
  ASSERT_NE(conj, nullptr);
  EXPECT_EQ(conj->op, "and");
}

TEST(UpyParser, AttributeCallChains) {
  const ExprPtr expr = parse_expression("self.a.test()");
  const auto* call = as<CallExpr>(expr);
  ASSERT_NE(call, nullptr);
  const auto* method = as<AttributeExpr>(call->callee);
  ASSERT_NE(method, nullptr);
  EXPECT_EQ(method->attr, "test");
  const auto* field = as<AttributeExpr>(method->value);
  ASSERT_NE(field, nullptr);
  EXPECT_EQ(field->attr, "a");
  const auto* base = as<NameExpr>(field->value);
  ASSERT_NE(base, nullptr);
  EXPECT_EQ(base->id, "self");
}

TEST(UpyParser, SubscriptsAndLiterals) {
  const ExprPtr expr = parse_expression("xs[0] + (1, \"two\", True, None)");
  const auto* add = as<BinaryExpr>(expr);
  ASSERT_NE(add, nullptr);
  EXPECT_NE(as<SubscriptExpr>(add->left), nullptr);
  const auto* tuple = as<TupleExpr>(add->right);
  ASSERT_NE(tuple, nullptr);
  EXPECT_EQ(tuple->elements.size(), 4u);
}

TEST(UpyParser, ComparisonIn) {
  const ExprPtr expr = parse_expression("x in [1, 2]");
  const auto* cmp = as<BinaryExpr>(expr);
  ASSERT_NE(cmp, nullptr);
  EXPECT_EQ(cmp->op, "in");
}

TEST(UpyParser, ToStringRendersExpressions) {
  EXPECT_EQ(to_string(parse_expression("self.a.test()")), "self.a.test()");
  EXPECT_EQ(to_string(parse_expression("[\"a\", \"b\"]")), "[\"a\", \"b\"]");
  EXPECT_EQ(to_string(parse_expression("1 + 2")), "(1 + 2)");
}

TEST(UpyParser, ErrorsCarryLocations) {
  try {
    (void)parse_module("class C:\n    def m(self)\n        pass\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& error) {
    EXPECT_EQ(error.loc().line, 2u);
  }
}

TEST(UpyParser, RejectsGarbageAtTopLevel) {
  EXPECT_THROW(parse_module("x = 1\n"), ParseError);
  EXPECT_THROW(parse_module("def f():\n    pass\n"), ParseError);
}

TEST(UpyParser, BaseClassListIsIgnored) {
  const Module module = parse_module("class C(Base, Other):\n    pass\n");
  EXPECT_EQ(module.classes[0].name, "C");
}

}  // namespace
}  // namespace shelley::upy
