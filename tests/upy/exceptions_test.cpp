// Frontend + analysis behavior for exception syntax and augmented
// assignments: the parser accepts real firmware sources; the analysis
// rejects try/raise with a precise diagnostic (§3.2: exceptions are not
// modeled) while the return numbering stays aligned.
#include <gtest/gtest.h>

#include "ir/inference.hpp"
#include "ir/lowering.hpp"
#include "shelley/spec.hpp"
#include "upy/parser.hpp"

namespace shelley {
namespace {

TEST(ExceptionsParsing, TryExceptFinally) {
  const upy::Module module = upy::parse_module(R"py(
class C:
    def m(self):
        try:
            x = 1
        except ValueError as e:
            y = 2
        except:
            z = 3
        finally:
            w = 4
)py");
  const auto* try_stmt =
      upy::as<upy::TryStmt>(module.classes.at(0).methods.at(0).body.at(0));
  ASSERT_NE(try_stmt, nullptr);
  EXPECT_EQ(try_stmt->body.size(), 1u);
  EXPECT_EQ(try_stmt->handlers.size(), 2u);
  EXPECT_EQ(try_stmt->final_body.size(), 1u);
}

TEST(ExceptionsParsing, TryFinallyWithoutExcept) {
  const upy::Module module = upy::parse_module(
      "class C:\n    def m(self):\n        try:\n            x = 1\n"
      "        finally:\n            y = 2\n");
  const auto* try_stmt =
      upy::as<upy::TryStmt>(module.classes.at(0).methods.at(0).body.at(0));
  ASSERT_NE(try_stmt, nullptr);
  EXPECT_TRUE(try_stmt->handlers.empty());
}

TEST(ExceptionsParsing, BareTryIsError) {
  EXPECT_THROW(upy::parse_module(
                   "class C:\n    def m(self):\n        try:\n"
                   "            x = 1\n        y = 2\n"),
               ParseError);
}

TEST(ExceptionsParsing, RaiseForms) {
  const upy::Module module = upy::parse_module(
      "class C:\n    def m(self):\n        raise\n"
      "        raise ValueError(\"bad\")\n");
  const upy::Block& body = module.classes.at(0).methods.at(0).body;
  ASSERT_EQ(body.size(), 2u);
  EXPECT_EQ(upy::as<upy::RaiseStmt>(body[0])->value, nullptr);
  EXPECT_NE(upy::as<upy::RaiseStmt>(body[1])->value, nullptr);
}

TEST(ExceptionsLowering, TryAndRaiseAreRejectedByAnalysis) {
  const upy::Module module = upy::parse_module(R"py(
class C:
    def m(self):
        try:
            self.a.test()
        except:
            raise
)py");
  SymbolTable table;
  DiagnosticEngine diagnostics;
  ir::LoweringContext context;
  context.tracked_fields = {"a"};
  context.symbols = &table;
  context.diagnostics = &diagnostics;
  (void)ir::lower_block(module.classes.at(0).methods.at(0).body, context);
  EXPECT_GE(diagnostics.error_count(), 2u);  // try + raise
}

TEST(ExceptionsLowering, ReturnIdsStayAlignedAcrossHandlers) {
  // Returns: #0 in try body, #1 in handler, #2 after -- the spec extraction
  // and the lowering must agree on this numbering.
  const upy::Module module = upy::parse_module(R"py(
@sys
class C:
    @op_initial_final
    def m(self):
        try:
            return ["m"]
        except:
            return []
        return ["m"], 1
)py");
  DiagnosticEngine diagnostics;
  const core::ClassSpec spec =
      core::extract_class_spec(module.classes.at(0), diagnostics);
  const core::Operation* op = spec.find_operation("m");
  ASSERT_EQ(op->exits.size(), 3u);
  EXPECT_EQ(op->exits[0].id, 0u);
  EXPECT_EQ(op->exits[1].id, 1u);
  EXPECT_EQ(op->exits[2].id, 2u);

  SymbolTable table;
  ir::LoweringContext context;
  context.symbols = &table;
  std::uint32_t next_id = 0;
  context.next_return_id = &next_id;
  (void)ir::lower_block(op->body, context);
  EXPECT_EQ(next_id, 3u);
}

TEST(AugmentedAssign, DesugarsToBinaryAssignment) {
  const upy::Module module = upy::parse_module(
      "class C:\n    def m(self):\n        x += 1\n        y *= 2\n");
  const upy::Block& body = module.classes.at(0).methods.at(0).body;
  const auto* plus = upy::as<upy::AssignStmt>(body.at(0));
  ASSERT_NE(plus, nullptr);
  const auto* plus_value = upy::as<upy::BinaryExpr>(plus->value);
  ASSERT_NE(plus_value, nullptr);
  EXPECT_EQ(plus_value->op, "+");
  const auto* times = upy::as<upy::AssignStmt>(body.at(1));
  const auto* times_value = upy::as<upy::BinaryExpr>(times->value);
  EXPECT_EQ(times_value->op, "*");
}

TEST(AugmentedAssign, TrackedCallsInRhsStillLower) {
  const upy::Module module = upy::parse_module(
      "class C:\n    def m(self):\n        total += self.a.read()\n");
  SymbolTable table;
  ir::LoweringContext context;
  context.tracked_fields = {"a"};
  context.symbols = &table;
  const ir::Program p =
      ir::lower_block(module.classes.at(0).methods.at(0).body, context);
  EXPECT_EQ(ir::to_string(p, table), "a.read()");
}

TEST(AugmentedAssign, PlainOperatorsUnaffected) {
  // `a + = b` must not lex as aug-assign; and `a + b` still works.
  const upy::ExprPtr expr = upy::parse_expression("a + b * c");
  EXPECT_NE(upy::as<upy::BinaryExpr>(expr), nullptr);
}

}  // namespace
}  // namespace shelley
