// Parser robustness: arbitrary byte soup must either parse or raise
// ParseError -- never crash, hang, or corrupt state.  Seeds cover random
// printable garbage, random token-shaped text, and mutations of valid
// sources.
#include <gtest/gtest.h>

#include <random>
#include <string>

#include "upy/lexer.hpp"
#include "upy/parser.hpp"

namespace shelley::upy {
namespace {

constexpr const char* kValidSource = R"py(
@sys
class Valve:
    @op_initial
    def test(self):
        if self.status.value():
            return ["open"]
        else:
            return ["clean"]

    @op_final
    def close(self):
        return ["test"]
)py";

void expect_no_crash(const std::string& source) {
  try {
    (void)parse_module(source);
  } catch (const ParseError&) {
    // fine -- rejected cleanly
  }
}

class RandomGarbage : public ::testing::TestWithParam<int> {};

TEST_P(RandomGarbage, PrintableNoise) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()));
  std::string source;
  const std::size_t length = 20 + rng() % 300;
  for (std::size_t i = 0; i < length; ++i) {
    const int kind = static_cast<int>(rng() % 10);
    if (kind < 5) {
      source += static_cast<char>('a' + rng() % 26);
    } else if (kind < 7) {
      source += static_cast<char>(" \n:()[]@.,\"'="[rng() % 13]);
    } else {
      source += static_cast<char>('0' + rng() % 10);
    }
  }
  expect_no_crash(source);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGarbage, ::testing::Range(0, 50));

class MutatedValid : public ::testing::TestWithParam<int> {};

TEST_P(MutatedValid, SingleByteMutations) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 7 + 3);
  std::string source = kValidSource;
  // Apply 1-4 random single-byte mutations.
  const std::size_t mutations = 1 + rng() % 4;
  for (std::size_t i = 0; i < mutations; ++i) {
    const std::size_t pos = rng() % source.size();
    switch (rng() % 3) {
      case 0:
        source[pos] = static_cast<char>(32 + rng() % 95);
        break;
      case 1:
        source.erase(pos, 1);
        break;
      default:
        source.insert(pos, 1, static_cast<char>(32 + rng() % 95));
        break;
    }
  }
  expect_no_crash(source);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutatedValid, ::testing::Range(0, 80));

TEST(Robustness, PathologicalInputs) {
  expect_no_crash("");
  expect_no_crash("\n\n\n");
  expect_no_crash(std::string(10000, ' '));
  expect_no_crash(std::string(10000, '('));
  expect_no_crash(std::string(1000, '@'));
  expect_no_crash("class C:\n" + std::string(500, ' ') + "pass\n");
  expect_no_crash("\"" + std::string(5000, 'x'));       // unterminated
  expect_no_crash(std::string(2000, '#') + "\n");       // giant comment
  // Deep nesting.
  std::string deep = "class C:\n    def m(self):\n";
  std::string indent = "        ";
  for (int i = 0; i < 60; ++i) {
    deep += indent + "if x:\n";
    indent += "    ";
  }
  deep += indent + "pass\n";
  expect_no_crash(deep);
}

TEST(Robustness, LexerNeverCrashesOnBinaryBytes) {
  std::mt19937_64 rng(99);
  for (int round = 0; round < 50; ++round) {
    std::string source;
    const std::size_t length = rng() % 200;
    for (std::size_t i = 0; i < length; ++i) {
      source += static_cast<char>(rng() % 256);
    }
    try {
      (void)lex(source);
    } catch (const ParseError&) {
    }
  }
}

}  // namespace
}  // namespace shelley::upy
