#include "upy/lexer.hpp"

#include <gtest/gtest.h>

namespace shelley::upy {
namespace {

std::vector<TokenKind> kinds(std::string_view source) {
  std::vector<TokenKind> out;
  for (const Token& token : lex(source)) out.push_back(token.kind);
  return out;
}

TEST(Lexer, EmptySourceYieldsEof) {
  EXPECT_EQ(kinds(""), (std::vector<TokenKind>{TokenKind::kEndOfFile}));
}

TEST(Lexer, SimpleStatement) {
  EXPECT_EQ(kinds("x = 1\n"),
            (std::vector<TokenKind>{TokenKind::kName, TokenKind::kAssign,
                                    TokenKind::kNumber, TokenKind::kNewline,
                                    TokenKind::kEndOfFile}));
}

TEST(Lexer, KeywordsAreRecognized) {
  const auto tokens = lex("class def return if elif else while for in "
                          "match case pass True False None and or not\n");
  const TokenKind expected[] = {
      TokenKind::kKwClass, TokenKind::kKwDef,   TokenKind::kKwReturn,
      TokenKind::kKwIf,    TokenKind::kKwElif,  TokenKind::kKwElse,
      TokenKind::kKwWhile, TokenKind::kKwFor,   TokenKind::kKwIn,
      TokenKind::kKwMatch, TokenKind::kKwCase,  TokenKind::kKwPass,
      TokenKind::kKwTrue,  TokenKind::kKwFalse, TokenKind::kKwNone,
      TokenKind::kKwAnd,   TokenKind::kKwOr,    TokenKind::kKwNot,
  };
  ASSERT_GE(tokens.size(), std::size(expected));
  for (std::size_t i = 0; i < std::size(expected); ++i) {
    EXPECT_EQ(tokens[i].kind, expected[i]) << i;
  }
}

TEST(Lexer, IndentDedent) {
  const auto k = kinds("if x:\n    y\nz\n");
  const std::vector<TokenKind> expected{
      TokenKind::kKwIf,   TokenKind::kName,    TokenKind::kColon,
      TokenKind::kNewline, TokenKind::kIndent, TokenKind::kName,
      TokenKind::kNewline, TokenKind::kDedent, TokenKind::kName,
      TokenKind::kNewline, TokenKind::kEndOfFile};
  EXPECT_EQ(k, expected);
}

TEST(Lexer, NestedDedentsEmittedTogether) {
  const auto k = kinds("if a:\n  if b:\n    c\nd\n");
  std::size_t dedents = 0;
  for (TokenKind kind : k) {
    if (kind == TokenKind::kDedent) ++dedents;
  }
  EXPECT_EQ(dedents, 2u);
}

TEST(Lexer, DanglingIndentClosedAtEof) {
  const auto k = kinds("if a:\n  b");
  std::size_t dedents = 0;
  for (TokenKind kind : k) {
    if (kind == TokenKind::kDedent) ++dedents;
  }
  EXPECT_EQ(dedents, 1u);
  EXPECT_EQ(k.back(), TokenKind::kEndOfFile);
}

TEST(Lexer, BlankAndCommentLinesDoNotAffectIndentation) {
  const auto k = kinds("if a:\n    b\n\n    # comment only\n    c\n");
  std::size_t indents = 0;
  for (TokenKind kind : k) {
    if (kind == TokenKind::kIndent) ++indents;
  }
  EXPECT_EQ(indents, 1u);
}

TEST(Lexer, TrailingCommentStripped) {
  const auto k = kinds("x = 1  # set x\n");
  EXPECT_EQ(k, (std::vector<TokenKind>{TokenKind::kName, TokenKind::kAssign,
                                       TokenKind::kNumber,
                                       TokenKind::kNewline,
                                       TokenKind::kEndOfFile}));
}

TEST(Lexer, InconsistentIndentationThrows) {
  EXPECT_THROW(lex("if a:\n        b\n    c\n"), ParseError);
}

TEST(Lexer, StringsSingleAndDoubleQuoted) {
  const auto tokens = lex("\"hello\" 'world'\n");
  ASSERT_GE(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kString);
  EXPECT_EQ(tokens[0].text, "hello");
  EXPECT_EQ(tokens[1].kind, TokenKind::kString);
  EXPECT_EQ(tokens[1].text, "world");
}

TEST(Lexer, StringEscapes) {
  const auto tokens = lex(R"("a\nb\t\"q\"")" "\n");
  EXPECT_EQ(tokens[0].text, "a\nb\t\"q\"");
}

TEST(Lexer, UnterminatedStringThrows) {
  EXPECT_THROW(lex("\"oops\n"), ParseError);
  EXPECT_THROW(lex("\"oops"), ParseError);
}

TEST(Lexer, NumbersIncludingFloatsAndHex) {
  const auto tokens = lex("1 23 4.5 0x1f\n");
  EXPECT_EQ(tokens[0].text, "1");
  EXPECT_EQ(tokens[1].text, "23");
  EXPECT_EQ(tokens[2].text, "4.5");
  EXPECT_EQ(tokens[3].text, "0x1f");
}

TEST(Lexer, ImplicitLineJoiningInsideBrackets) {
  const auto k = kinds("f(a,\n  b)\nc\n");
  // No NEWLINE between a, and b; exactly two NEWLINEs total.
  std::size_t newlines = 0;
  for (TokenKind kind : k) {
    if (kind == TokenKind::kNewline) ++newlines;
  }
  EXPECT_EQ(newlines, 2u);
  // And no INDENT from the continuation line.
  for (TokenKind kind : k) {
    EXPECT_NE(kind, TokenKind::kIndent);
  }
}

TEST(Lexer, OperatorsTwoChar) {
  const auto k = kinds("a == b != c <= d >= e\n");
  EXPECT_EQ(k[1], TokenKind::kEq);
  EXPECT_EQ(k[3], TokenKind::kNe);
  EXPECT_EQ(k[5], TokenKind::kLe);
  EXPECT_EQ(k[7], TokenKind::kGe);
}

TEST(Lexer, DecoratorTokens) {
  const auto k = kinds("@sys([\"a\"])\n");
  EXPECT_EQ(k[0], TokenKind::kAt);
  EXPECT_EQ(k[1], TokenKind::kName);
  EXPECT_EQ(k[2], TokenKind::kLParen);
  EXPECT_EQ(k[3], TokenKind::kLBracket);
  EXPECT_EQ(k[4], TokenKind::kString);
}

TEST(Lexer, SourceLocationsAreOneBased) {
  const auto tokens = lex("ab\n  cd\n");
  EXPECT_EQ(tokens[0].loc, (SourceLoc{1, 1}));
  // cd is at line 2, column 3.
  const Token* cd = nullptr;
  for (const Token& t : tokens) {
    if (t.text == "cd") cd = &t;
  }
  ASSERT_NE(cd, nullptr);
  EXPECT_EQ(cd->loc, (SourceLoc{2, 3}));
}

TEST(Lexer, UnexpectedCharacterThrows) {
  EXPECT_THROW(lex("a $ b\n"), ParseError);
  EXPECT_THROW(lex("a ! b\n"), ParseError);  // bare ! is not an operator
}

TEST(Lexer, StringPrefixesLexAsPlainStrings) {
  const auto tokens = lex("f\"hello {x}\" r'raw' b\"bytes\"\n");
  ASSERT_GE(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kString);
  EXPECT_EQ(tokens[0].text, "hello {x}");
  EXPECT_EQ(tokens[1].kind, TokenKind::kString);
  EXPECT_EQ(tokens[1].text, "raw");
  EXPECT_EQ(tokens[2].kind, TokenKind::kString);
}

TEST(Lexer, PrefixLikeNamesAreStillNames) {
  const auto tokens = lex("f r b fr\n");
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(tokens[i].kind, TokenKind::kName) << i;
  }
}

TEST(Lexer, AugmentedAssignTokens) {
  const auto tokens = lex("x += 1\ny -= 2\nz *= 3\n");
  std::size_t augmented = 0;
  for (const Token& token : tokens) {
    if (token.kind == TokenKind::kAugAssign) ++augmented;
  }
  EXPECT_EQ(augmented, 3u);
}

TEST(Lexer, MissingTrailingNewlineStillTerminatesStatement) {
  const auto k = kinds("x = 1");
  EXPECT_EQ(k, (std::vector<TokenKind>{TokenKind::kName, TokenKind::kAssign,
                                       TokenKind::kNumber,
                                       TokenKind::kNewline,
                                       TokenKind::kEndOfFile}));
}

TEST(Lexer, CrlfLineEndingsMatchLf) {
  EXPECT_EQ(kinds("x = 1\r\ny = 2\r\n"), kinds("x = 1\ny = 2\n"));
}

TEST(Lexer, CrlfIndentDedentMatchesLf) {
  EXPECT_EQ(kinds("if x:\r\n    y\r\nz\r\n"), kinds("if x:\n    y\nz\n"));
}

TEST(Lexer, CrlfBlankLineDoesNotAffectIndentation) {
  // Regression: a blank CRLF line inside a suite used to be treated as a
  // zero-indent code line, dedenting the whole suite.
  EXPECT_EQ(kinds("if a:\r\n    b\r\n\r\n    c\r\n"),
            kinds("if a:\n    b\n\n    c\n"));
}

TEST(Lexer, CrlfCommentOnlyLineIgnored) {
  EXPECT_EQ(kinds("if a:\r\n    b\r\n# note\r\n    c\r\n"),
            kinds("if a:\n    b\n# note\n    c\n"));
}

TEST(Lexer, MixedLineEndingsLexConsistently) {
  EXPECT_EQ(kinds("if a:\r\n    b\n    c\r\nd\n"),
            kinds("if a:\n    b\n    c\nd\n"));
}

TEST(Lexer, ExplicitLineJoiningAcceptsCrlf) {
  // Regression: `\` followed by CRLF used to reject the `\r`.
  EXPECT_EQ(kinds("x = 1 + \\\r\n    2\r\n"), kinds("x = 1 + \\\n    2\n"));
}

TEST(Lexer, CrlfSourceLocationsMatchLf) {
  const auto crlf = lex("ab\r\n  cd\r\n");
  const auto lf = lex("ab\n  cd\n");
  ASSERT_EQ(crlf.size(), lf.size());
  for (std::size_t i = 0; i < crlf.size(); ++i) {
    EXPECT_EQ(crlf[i].kind, lf[i].kind) << i;
    // Synthetic tokens (NEWLINE) sit at the line terminator, whose column
    // differs by the '\r'; real tokens must agree exactly.
    if (!crlf[i].text.empty()) {
      EXPECT_EQ(crlf[i].loc, lf[i].loc) << i;
    }
  }
  const Token* cd = nullptr;
  for (const Token& t : crlf) {
    if (t.text == "cd") cd = &t;
  }
  ASSERT_NE(cd, nullptr);
  EXPECT_EQ(cd->loc, (SourceLoc{2, 3}));
}

TEST(Lexer, UnterminatedStringAtCrlfThrows) {
  EXPECT_THROW(lex("\"oops\r\n"), ParseError);
}

}  // namespace
}  // namespace shelley::upy
