// Mechanization of the paper's theoretical results as property tests.
//
//   Theorem 1 (Soundness):     l ∈ L(p)      =>  l ∈ infer(p)
//   Theorem 2 (Completeness):  l ∈ infer(p)  =>  l ∈ L(p)
//   Corollary 1 (Regularity):  L(p) is regular -- checked by compiling
//       infer(p) to a DFA and cross-validating membership against the
//       trace semantics.
//
// The quantification over traces is discharged two ways:
//   * forward: enumerate derivable traces (loops unrolled to a bound) and
//     check each against the inferred regex (soundness direction);
//   * backward: enumerate the regex language up to a length bound and check
//     each word against the exact decision procedure `derives`
//     (completeness direction).
// For loop-free programs the trace set is finite and the check is exact.
#include <gtest/gtest.h>

#include "fsm/ops.hpp"
#include "fsm/thompson.hpp"
#include "ir/generator.hpp"
#include "ir/inference.hpp"
#include "ir/semantics.hpp"
#include "ltlf/automaton.hpp"
#include "ltlf/eval.hpp"
#include "ltlf/parser.hpp"
#include "ltlf/tableau.hpp"
#include "rex/derivative.hpp"

namespace shelley::ir {
namespace {

struct TheoremCheck {
  std::size_t traces_checked = 0;
  std::size_t words_checked = 0;
};

/// Runs both theorem directions on one program; EXPECTs inside.
TheoremCheck check_program(const Program& p, const SymbolTable& table,
                           std::size_t max_length) {
  TheoremCheck stats;
  const rex::Regex inferred = infer(p);
  const rex::Regex simplified = rex::simplify(inferred);

  // Theorem 1: every derivable trace is in the inferred language.
  const auto traces = enumerate_traces(p, {max_length, 4});
  for (const Trace& trace : traces) {
    EXPECT_TRUE(rex::matches(inferred, trace.word))
        << "soundness violated on trace '" << to_string(trace.word, table)
        << "' of program " << to_string(p, table);
    ++stats.traces_checked;
  }

  // Theorem 2: every word of the inferred language is derivable.
  for (const Word& w : rex::enumerate_language(simplified, max_length)) {
    EXPECT_TRUE(in_language(p, w))
        << "completeness violated on word '" << to_string(w, table)
        << "' of program " << to_string(p, table);
    ++stats.words_checked;
  }

  // Corollary 1: infer(p) compiles to a finite automaton recognizing the
  // same language (checked on all enumerated traces).
  const fsm::Dfa dfa = fsm::determinize(fsm::from_regex(simplified));
  for (const Trace& trace : traces) {
    EXPECT_TRUE(dfa.accepts(trace.word)) << to_string(p, table);
  }
  return stats;
}

class HandPickedPrograms : public ::testing::Test {
 protected:
  SymbolTable table_;
  Symbol a_ = table_.intern("a");
  Symbol b_ = table_.intern("b");
  Symbol c_ = table_.intern("c");
};

TEST_F(HandPickedPrograms, Leaves) {
  check_program(call(a_), table_, 4);
  check_program(skip(), table_, 4);
  check_program(ret(), table_, 4);
}

TEST_F(HandPickedPrograms, PaperExampleProgram) {
  const Program p = loop(
      seq(call(a_), branch(seq(call(b_), ret()), call(c_))));
  const auto stats = check_program(p, table_, 8);
  EXPECT_GE(stats.traces_checked, 9u);
  EXPECT_GE(stats.words_checked, 9u);
}

TEST_F(HandPickedPrograms, EarlyReturnCutsSequence) {
  check_program(seq(ret(), call(a_)), table_, 4);
  check_program(seq(branch(ret(), skip()), call(a_)), table_, 4);
}

TEST_F(HandPickedPrograms, NestedLoops) {
  check_program(loop(loop(call(a_))), table_, 5);
  check_program(loop(seq(call(a_), loop(call(b_)))), table_, 5);
}

TEST_F(HandPickedPrograms, ReturnInsideNestedLoop) {
  check_program(loop(seq(call(a_), loop(seq(call(b_), ret())))), table_, 6);
}

TEST_F(HandPickedPrograms, BranchingOverReturnStatuses) {
  check_program(branch(ret(), branch(skip(), seq(call(a_), ret()))), table_,
                4);
}

// Exhaustive sweep over every loop-free program of a small grammar: for
// these the enumeration is the entire trace set, so Theorems 1 and 2 are
// checked exactly.
class ExhaustiveSmallPrograms : public ::testing::Test {
 protected:
  void enumerate_programs(std::size_t depth, std::vector<Program>& out) {
    if (depth == 0) {
      out.push_back(call(a_));
      out.push_back(skip());
      out.push_back(ret());
      return;
    }
    std::vector<Program> smaller;
    enumerate_programs(depth - 1, smaller);
    out = smaller;
    for (const Program& lhs : smaller) {
      for (const Program& rhs : smaller) {
        out.push_back(seq(lhs, rhs));
        out.push_back(branch(lhs, rhs));
      }
    }
    for (const Program& body : smaller) {
      out.push_back(loop(body));
    }
  }

  SymbolTable table_;
  Symbol a_ = table_.intern("a");
};

TEST_F(ExhaustiveSmallPrograms, AllDepthTwoPrograms) {
  std::vector<Program> programs;
  enumerate_programs(2, programs);
  ASSERT_GT(programs.size(), 100u);
  for (const Program& p : programs) {
    check_program(p, table_, 5);
  }
}

// Bounded-exhaustive closure: EVERY program whose syntax tree has at most
// kNodeBound nodes, over a three-letter alphabet, with all five leaves and
// all three combinators.  Node count (not depth) is the bound because the
// depth-indexed closure explodes combinatorially (the depth-4 set over
// these constructors is ~10^10 programs) while the node-count-6 set is
// exactly 7030 -- small enough to check L(p) = L(infer(p)) on every member,
// big enough to cover every operator pairing at interesting nesting.
//
// The per-size counts are pinned exactly: if a refactor of the enumerator
// (or of the Program constructors) silently shrinks the swept set, the
// assertion fails rather than the suite quietly testing less.
class BoundedExhaustivePrograms : public ::testing::Test {
 protected:
  static constexpr std::size_t kNodeBound = 6;

  /// programs[n] = every program with exactly n syntax nodes.
  std::vector<std::vector<Program>> programs_by_size() {
    std::vector<std::vector<Program>> by_size(kNodeBound + 1);
    by_size[1] = {call(a_), call(b_), call(c_), skip(), ret()};
    for (std::size_t n = 2; n <= kNodeBound; ++n) {
      for (const Program& body : by_size[n - 1]) {
        by_size[n].push_back(loop(body));
      }
      // seq/branch spend one node and split the rest across two children.
      for (std::size_t left = 1; left + 1 < n; ++left) {
        for (const Program& lhs : by_size[left]) {
          for (const Program& rhs : by_size[n - 1 - left]) {
            by_size[n].push_back(seq(lhs, rhs));
            by_size[n].push_back(branch(lhs, rhs));
          }
        }
      }
    }
    return by_size;
  }

  SymbolTable table_;
  Symbol a_ = table_.intern("a");
  Symbol b_ = table_.intern("b");
  Symbol c_ = table_.intern("c");
};

TEST_F(BoundedExhaustivePrograms, TheoremsHoldOnEveryProgramUpToBound) {
  const auto by_size = programs_by_size();

  // N(1)=5; N(n) = N(n-1) [loop] + 2*sum N(i)*N(n-1-i) [seq+branch].
  const std::size_t expected[kNodeBound + 1] = {0, 5, 5, 55, 155, 1305, 5505};
  std::size_t total = 0;
  for (std::size_t n = 1; n <= kNodeBound; ++n) {
    ASSERT_EQ(by_size[n].size(), expected[n]) << "programs of size " << n;
    total += by_size[n].size();
  }
  ASSERT_EQ(total, 7030u);

  TheoremCheck stats;
  for (std::size_t n = 1; n <= kNodeBound; ++n) {
    for (const Program& p : by_size[n]) {
      const TheoremCheck one = check_program(p, table_, 4);
      stats.traces_checked += one.traces_checked;
      stats.words_checked += one.words_checked;
    }
  }
  // Every program contributes at least the empty-or-unit trace in one of
  // the two directions; a sweep that checked nothing is a broken sweep.
  EXPECT_GT(stats.traces_checked, total);
  EXPECT_GT(stats.words_checked, total);

  // Make the sweep size visible in the test log (shrinkage is detectable
  // from CI output, not only from the assertions above).
  RecordProperty("enumerated_programs", static_cast<int>(total));
  RecordProperty("traces_checked", static_cast<int>(stats.traces_checked));
  RecordProperty("words_checked", static_cast<int>(stats.words_checked));
  std::cout << "bounded-exhaustive sweep: " << total << " programs, "
            << stats.traces_checked << " traces, " << stats.words_checked
            << " words\n";
}

// The dual-engine counterpart of the sweep above: every inferred language of
// every ≤6-node program, run against a panel of claims through BOTH LTLf
// engines.  The on-the-fly tableau and the progression-DFA oracle must agree
// verdict for verdict and witness for witness on all 7030 programs, and
// every counterexample is independently validated by NFA simulation plus the
// reference evaluator -- the `--ltlf-engine both` discipline replayed over
// the entire bounded-exhaustive program space.
TEST_F(BoundedExhaustivePrograms, ClaimEnginesAgreeOnEveryProgramUpToBound) {
  const auto by_size = programs_by_size();
  const std::vector<Symbol> alphabet{a_, b_, c_};
  const ltlf::Formula claims[] = {
      ltlf::parse("G (a -> F b)", table_),
      ltlf::parse("F a", table_),
      ltlf::parse("(!b) U a", table_),
      ltlf::parse("G (c -> X (a | end))", table_),
  };

  std::size_t programs = 0;
  std::size_t violations = 0;
  std::size_t holds = 0;
  for (std::size_t n = 1; n <= kNodeBound; ++n) {
    for (const Program& p : by_size[n]) {
      ++programs;
      const fsm::Nfa nfa = fsm::from_regex(rex::simplify(infer(p)));
      const fsm::Dfa dfa = fsm::minimize(fsm::determinize(nfa, alphabet));
      for (const ltlf::Formula& f : claims) {
        const ltlf::TableauResult tableau =
            ltlf::check_tableau(nfa, alphabet, f);
        ASSERT_NE(tableau.verdict, ltlf::TableauVerdict::kLimited)
            << to_string(p, table_);
        const auto witness = ltlf::counterexample(dfa, f);
        if (tableau.verdict == ltlf::TableauVerdict::kHolds) {
          EXPECT_FALSE(witness.has_value()) << to_string(p, table_);
          ++holds;
          continue;
        }
        ++violations;
        ASSERT_TRUE(witness.has_value()) << to_string(p, table_);
        EXPECT_EQ(tableau.counterexample, *witness) << to_string(p, table_);
        EXPECT_TRUE(nfa.accepts(tableau.counterexample))
            << to_string(p, table_);
        EXPECT_FALSE(ltlf::eval(f, tableau.counterexample))
            << to_string(p, table_);
      }
    }
  }
  ASSERT_EQ(programs, 7030u);
  // Both verdicts must occur in volume; a one-sided sweep tests one engine
  // path only.
  EXPECT_GT(violations, 100u);
  EXPECT_GT(holds, 100u);
  RecordProperty("claim_violations", static_cast<int>(violations));
  RecordProperty("claim_holds", static_cast<int>(holds));
  std::cout << "dual-engine claim sweep: " << programs << " programs, "
            << violations << " violations, " << holds << " holds\n";
}

// Randomized sweep over deeper programs.
class RandomProgramTheorems : public ::testing::TestWithParam<int> {};

TEST_P(RandomProgramTheorems, SoundAndComplete) {
  SymbolTable table;
  GeneratorOptions options;
  options.max_depth = 5;
  options.alphabet_size = 3;
  ProgramGenerator generator(static_cast<std::uint64_t>(GetParam()) * 7919,
                             options, table);
  for (int i = 0; i < 5; ++i) {
    check_program(generator.next(), table, 6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramTheorems,
                         ::testing::Range(0, 40));

// The two membership deciders (derivatives on infer(p) and the DFA compiled
// from it) agree on arbitrary words, including words NOT in the language.
class NegativeAgreement : public ::testing::TestWithParam<int> {};

TEST_P(NegativeAgreement, DerivesAgreesWithRegexOnArbitraryWords) {
  SymbolTable table;
  GeneratorOptions options;
  options.max_depth = 4;
  options.alphabet_size = 2;
  ProgramGenerator generator(static_cast<std::uint64_t>(GetParam()) * 104729,
                             options, table);
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()));
  const Symbol f0 = table.intern("f0");
  const Symbol f1 = table.intern("f1");

  for (int round = 0; round < 3; ++round) {
    const Program p = generator.next();
    const rex::Regex inferred = infer(p);
    for (int i = 0; i < 30; ++i) {
      Word w;
      const std::size_t length = rng() % 6;
      for (std::size_t j = 0; j < length; ++j) {
        w.push_back(rng() % 2 == 0 ? f0 : f1);
      }
      EXPECT_EQ(in_language(p, w), rex::matches(inferred, w))
          << to_string(p, table) << " on " << to_string(w, table);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NegativeAgreement, ::testing::Range(0, 30));

}  // namespace
}  // namespace shelley::ir
