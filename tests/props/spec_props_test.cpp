// Property sweeps over *randomly generated class specifications*: the
// static pipeline (usage automaton), the runtime layer (monitor, sampler),
// and the comparison/lint utilities must all agree with each other on every
// generated spec.
#include <gtest/gtest.h>

#include <random>

#include "fsm/ops.hpp"
#include "fsm/to_regex.hpp"
#include "rex/derivative.hpp"
#include "shelley/automata.hpp"
#include "shelley/compare.hpp"
#include "shelley/lint.hpp"
#include "shelley/monitor.hpp"
#include "shelley/sampler.hpp"
#include "upy/parser.hpp"

namespace shelley::core {
namespace {

/// Generates the MicroPython source of a random @sys class: `ops`
/// operations with random initial/final flags and 1-3 exits, each naming
/// 0-2 random successors.
std::string random_class_source(std::mt19937_64& rng, std::size_t ops) {
  const auto op_name = [](std::size_t i) {
    return "op" + std::to_string(i);
  };
  std::string out = "@sys\nclass Random:\n";
  bool any_initial = false;
  bool any_final = false;
  for (std::size_t i = 0; i < ops; ++i) {
    bool initial = rng() % 3 == 0;
    bool final = rng() % 3 == 0;
    if (i + 1 == ops && !any_initial) initial = true;
    if (i + 1 == ops && !any_final) final = true;
    any_initial = any_initial || initial;
    any_final = any_final || final;
    out += initial && final ? "    @op_initial_final\n"
           : initial        ? "    @op_initial\n"
           : final          ? "    @op_final\n"
                            : "    @op\n";
    out += "    def " + op_name(i) + "(self):\n";
    const std::size_t exits = 1 + rng() % 3;
    for (std::size_t e = 0; e < exits; ++e) {
      std::string successors;
      const std::size_t count = rng() % 3;
      for (std::size_t s = 0; s < count; ++s) {
        if (!successors.empty()) successors += ", ";
        successors += "\"" + op_name(rng() % ops) + "\"";
      }
      if (e + 1 < exits) {
        out += "        if x" + std::to_string(e) + ":\n";
        out += "            return [" + successors + "]\n";
      } else {
        out += "        return [" + successors + "]\n";
      }
    }
  }
  return out;
}

class RandomSpecProperties : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 31337 + 1);
    const std::string source = random_class_source(rng, 2 + rng() % 5);
    const upy::Module module = upy::parse_module(source);
    spec_ = extract_class_spec(module.classes.at(0), diagnostics_);
  }

  ClassSpec spec_;
  SymbolTable table_;
  DiagnosticEngine diagnostics_;
};

TEST_P(RandomSpecProperties, MonitorAgreesWithUsageAutomaton) {
  const fsm::Nfa usage = usage_nfa(spec_, table_);
  Monitor monitor(spec_, table_);
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()));

  std::vector<std::string> op_names;
  for (const Operation& op : spec_.operations) op_names.push_back(op.name);
  ASSERT_FALSE(op_names.empty());

  for (int round = 0; round < 50; ++round) {
    monitor.reset();
    Word word;
    bool monitor_ok = true;
    const std::size_t length = rng() % 6;
    for (std::size_t i = 0; i < length && monitor_ok; ++i) {
      const std::string& op = op_names[rng() % op_names.size()];
      word.push_back(table_.intern(op));
      monitor_ok = monitor.feed(op) != Verdict::kViolation;
    }
    if (monitor_ok) {
      // The monitor says the word is a viable prefix and `completed()`
      // decides full acceptance -- which must agree with the NFA.
      EXPECT_EQ(monitor.completed(), usage.accepts(word));
    } else {
      // A violating prefix must not be extendable into ANY accepted word;
      // in particular the word itself is rejected.
      EXPECT_FALSE(usage.accepts(word));
    }
  }
}

TEST_P(RandomSpecProperties, SampledTracesAreAccepted) {
  const fsm::Nfa usage = usage_nfa(spec_, table_);
  // Specs whose language is empty beyond ε still sample the empty trace.
  TraceSampler sampler(spec_, table_,
                       static_cast<std::uint64_t>(GetParam()));
  for (int round = 0; round < 20; ++round) {
    const auto trace = sampler.sample(12);
    Word word;
    for (const std::string& op : trace) word.push_back(table_.intern(op));
    EXPECT_TRUE(usage.accepts(word))
        << "sampled trace rejected: " << to_string(word, table_);
  }
}

TEST_P(RandomSpecProperties, CompareIsReflexive) {
  EXPECT_FALSE(compare_specs(spec_, spec_, table_).has_value());
}

TEST_P(RandomSpecProperties, UsageRegexRoundTrip) {
  const fsm::Nfa usage = usage_nfa(spec_, table_);
  const rex::Regex regex = fsm::to_regex(usage);
  for (const Word& w : rex::enumerate_language(regex, 4)) {
    EXPECT_TRUE(usage.accepts(w));
  }
}

TEST_P(RandomSpecProperties, LintNeverCrashesAndOnlyWarns) {
  const std::size_t errors_before = diagnostics_.error_count();
  (void)lint_class(spec_, table_, diagnostics_);
  EXPECT_EQ(diagnostics_.error_count(), errors_before);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSpecProperties,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace shelley::core
