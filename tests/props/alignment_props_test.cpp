// Differential fuzzing of the trickiest cross-module invariant: the exit
// ids assigned by the spec extraction (source-order numbering of return
// statements, shelley/spec) must coincide with the ids the IR lowering tags
// returns with (ir/lowering) -- across arbitrary nesting of returns inside
// if/elif, loops, matches, and try blocks.
#include <gtest/gtest.h>

#include <random>

#include "ir/inference.hpp"
#include "ir/lowering.hpp"
#include "shelley/spec.hpp"
#include "upy/parser.hpp"

namespace shelley {
namespace {

/// Generates a random method body with returns sprinkled at every nesting
/// construct.  Returns the body text (indented at depth 2) and the number
/// of return statements emitted.
class BodyGenerator {
 public:
  explicit BodyGenerator(std::uint64_t seed) : rng_(seed) {}

  std::pair<std::string, std::size_t> generate() {
    returns_ = 0;
    std::string out = block(2, 3);
    // Guarantee at least one statement.
    if (out.empty()) {
      out = indent(2) + "return []\n";
      returns_ = 1;
    }
    return {out, returns_};
  }

 private:
  static std::string indent(int depth) {
    return std::string(static_cast<std::size_t>(depth) * 4, ' ');
  }

  std::string return_stmt(int depth) {
    ++returns_;
    switch (rng_() % 3) {
      case 0: return indent(depth) + "return []\n";
      case 1: return indent(depth) + "return [\"m\"]\n";
      default: return indent(depth) + "return [\"m\"], 1\n";
    }
  }

  std::string statement(int depth, int budget) {
    switch (rng_() % (budget > 0 ? 7 : 3)) {
      case 0:
        return indent(depth) + "x = 1\n";
      case 1:
        return indent(depth) + "self.a.ping()\n";
      case 2:
        return return_stmt(depth);
      case 3: {  // if/else with bodies
        std::string out = indent(depth) + "if x:\n";
        out += block(depth + 1, budget - 1);
        out += indent(depth) + "else:\n";
        out += block(depth + 1, budget - 1);
        return out;
      }
      case 4: {  // while
        std::string out = indent(depth) + "while x:\n";
        out += block(depth + 1, budget - 1);
        return out;
      }
      case 5: {  // match
        std::string out = indent(depth) + "match self.a.ping():\n";
        out += indent(depth + 1) + "case [\"m\"]:\n";
        out += block(depth + 2, budget - 1);
        out += indent(depth + 1) + "case _:\n";
        out += block(depth + 2, budget - 1);
        return out;
      }
      default: {  // try/except/finally
        std::string out = indent(depth) + "try:\n";
        out += block(depth + 1, budget - 1);
        out += indent(depth) + "except:\n";
        out += block(depth + 1, budget - 1);
        out += indent(depth) + "finally:\n";
        out += block(depth + 1, budget - 1);
        return out;
      }
    }
  }

  std::string block(int depth, int budget) {
    std::string out;
    const std::size_t statements = 1 + rng_() % 3;
    for (std::size_t i = 0; i < statements; ++i) {
      out += statement(depth, budget);
    }
    return out;
  }

  std::mt19937_64 rng_;
  std::size_t returns_ = 0;
};

class AlignmentFuzz : public ::testing::TestWithParam<int> {};

TEST_P(AlignmentFuzz, SpecExitIdsMatchLoweringIds) {
  BodyGenerator generator(static_cast<std::uint64_t>(GetParam()) * 977 + 5);
  const auto [body, return_count] = generator.generate();
  const std::string source =
      "@sys([\"a\"])\nclass C:\n"
      "    def __init__(self):\n        self.a = Thing()\n"
      "    @op_initial_final\n    def m(self):\n" + body;

  const upy::Module module = upy::parse_module(source);
  DiagnosticEngine diagnostics;
  const core::ClassSpec spec =
      core::extract_class_spec(module.classes.at(0), diagnostics);
  const core::Operation* op = spec.find_operation("m");
  ASSERT_NE(op, nullptr);

  // Lower with id tagging; the counter must agree with the total number of
  // returns, and every spec exit id must appear among the tagged returns.
  SymbolTable table;
  ir::LoweringContext context;
  context.tracked_fields = {"a"};
  context.symbols = &table;
  std::uint32_t next_id = 0;
  context.next_return_id = &next_id;
  const ir::Program program = ir::lower_block(op->body, context);
  EXPECT_EQ(next_id, return_count) << source;

  // Exit ids visible in the spec are exactly the source-order indexes of
  // decodable returns; they must form a subset of [0, return_count).  A
  // body with no returns at all gets the documented implicit exit (id 0).
  if (return_count == 0) {
    ASSERT_EQ(op->exits.size(), 1u) << source;
    EXPECT_EQ(op->exits[0].id, 0u) << source;
    EXPECT_TRUE(op->exits[0].successors.empty()) << source;
  } else {
    for (const core::ExitPoint& exit : op->exits) {
      EXPECT_LT(exit.id, return_count) << source;
    }
  }

  // Every returned behavior of the analysis carries an id the spec knows
  // (or a dead/undecodable slot, which the spec intentionally skips).
  const ir::Behavior behavior = ir::analyze(program);
  for (const auto& returned : behavior.returned) {
    EXPECT_LT(returned.exit_id, return_count) << source;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlignmentFuzz, ::testing::Range(0, 60));

}  // namespace
}  // namespace shelley
