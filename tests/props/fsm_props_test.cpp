// Differential properties of the automata kernel, on seeded random DFAs:
//
//   * the three minimizers (Hopcroft, Moore, Brzozowski) agree on the
//     minimal state count and on the language;
//
//   * the lazy pair-state inclusion search returns exactly the witness the
//     eager reference (extend alphabets, difference product, BFS shortest
//     word) returns -- not just an equivalent one;
//
//   * the union-find equivalence check agrees with the eager
//     two-directional inclusion reference.
//
// Each property runs over >= 1000 random automata.  Every round reseeds its
// RNG from mix(suite seed, round), so a single failing round is
// reproducible in isolation -- paste the seed from the failure message into
// `round_rng` -- instead of depending on the hidden RNG state of the 999
// rounds before it.
#include <gtest/gtest.h>

#include <cstdint>
#include <iomanip>
#include <optional>
#include <random>
#include <sstream>
#include <vector>

#include "fsm/ops.hpp"
#include "testing.hpp"

namespace shelley::fsm {
namespace {

constexpr int kRounds = 1000;

/// splitmix64 of (suite seed, round): well-distributed even though the
/// inputs are tiny and sequential.
std::uint64_t round_seed(std::uint64_t suite_seed, int round) {
  std::uint64_t z = suite_seed +
                    0x9e3779b97f4a7c15ULL *
                        (static_cast<std::uint64_t>(round) + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::mt19937_64 round_rng(std::uint64_t seed) { return std::mt19937_64(seed); }

/// "round 17 (seed 0xdeadbeef)" -- everything a rerun needs.
std::string round_tag(int round, std::uint64_t seed) {
  std::ostringstream out;
  out << "round " << round << " (seed 0x" << std::hex << seed << ")";
  return out.str();
}

/// A random complete DFA with 1..10 states over a subset of `letters`.
Dfa random_dfa(std::mt19937_64& rng, const std::vector<Symbol>& letters) {
  const std::size_t k = 1 + rng() % letters.size();
  std::vector<Symbol> alphabet(letters.begin(), letters.begin() + k);
  const std::size_t n = 1 + rng() % 10;
  Dfa dfa(n, alphabet);
  for (StateId s = 0; s < n; ++s) {
    dfa.set_accepting(s, rng() % 3 == 0);
    for (std::size_t letter = 0; letter < k; ++letter) {
      dfa.set_transition(s, letter, static_cast<StateId>(rng() % n));
    }
  }
  dfa.set_initial(static_cast<StateId>(rng() % n));
  return dfa;
}

/// The seed's eager inclusion: join alphabets, build the full difference
/// product, then BFS for a shortest accepted word.
std::optional<Word> eager_inclusion_witness(const Dfa& a, const Dfa& b) {
  std::vector<Symbol> joined = a.alphabet();
  joined.insert(joined.end(), b.alphabet().begin(), b.alphabet().end());
  std::sort(joined.begin(), joined.end());
  joined.erase(std::unique(joined.begin(), joined.end()), joined.end());
  const Dfa ea = extend_alphabet(a, joined);
  const Dfa eb = extend_alphabet(b, joined);
  return shortest_word(product(ea, eb, ProductMode::kDifference));
}

class FsmProps : public ::testing::Test {
 protected:
  FsmProps() {
    for (const char* name : {"a", "b", "c"}) {
      letters_.push_back(table_.intern(name));
    }
  }

  SymbolTable table_;
  std::vector<Symbol> letters_;
};

TEST_F(FsmProps, MinimizersAgree) {
  for (int round = 0; round < kRounds; ++round) {
    const std::uint64_t seed = round_seed(20230601, round);
    std::mt19937_64 rng = round_rng(seed);
    const Dfa dfa = random_dfa(rng, letters_);
    const Dfa hopcroft = minimize_hopcroft(dfa);
    const Dfa moore = minimize_moore(dfa);
    const Dfa brzozowski = minimize_brzozowski(dfa);
    EXPECT_EQ(hopcroft.state_count(), moore.state_count())
        << round_tag(round, seed);
    EXPECT_EQ(hopcroft.state_count(), brzozowski.state_count())
        << round_tag(round, seed);
    EXPECT_TRUE(equivalent(hopcroft, dfa)) << round_tag(round, seed);
    EXPECT_TRUE(equivalent(hopcroft, moore)) << round_tag(round, seed);
    EXPECT_TRUE(equivalent(hopcroft, brzozowski)) << round_tag(round, seed);
  }
}

TEST_F(FsmProps, LazyInclusionMatchesEagerWitnessExactly) {
  for (int round = 0; round < kRounds; ++round) {
    const std::uint64_t seed = round_seed(20230602, round);
    std::mt19937_64 rng = round_rng(seed);
    const Dfa a = random_dfa(rng, letters_);
    const Dfa b = random_dfa(rng, letters_);
    const auto lazy = inclusion_witness(a, b);
    const auto eager = eager_inclusion_witness(a, b);
    ASSERT_EQ(lazy.has_value(), eager.has_value()) << round_tag(round, seed);
    if (lazy) {
      EXPECT_EQ(*lazy, *eager)
          << round_tag(round, seed) << ": lazy ["
          << testing::str(*lazy, table_) << "] vs eager ["
          << testing::str(*eager, table_) << "]";
    }
  }
}

TEST_F(FsmProps, UnionFindEquivalenceMatchesEagerInclusion) {
  int equivalent_pairs = 0;
  for (int round = 0; round < kRounds; ++round) {
    const std::uint64_t seed = round_seed(20230603, round);
    std::mt19937_64 rng = round_rng(seed);
    const Dfa a = random_dfa(rng, letters_);
    // Half the rounds compare against a minimized copy of `a` (guaranteed
    // equivalent, exercising the "true" path); the rest against an
    // independent automaton (almost always inequivalent).
    const Dfa b = round % 2 == 0 ? minimize(a) : random_dfa(rng, letters_);
    const bool reference = !eager_inclusion_witness(a, b).has_value() &&
                           !eager_inclusion_witness(b, a).has_value();
    EXPECT_EQ(equivalent(a, b), reference) << round_tag(round, seed);
    if (reference) ++equivalent_pairs;
  }
  // The generator must exercise both outcomes.
  EXPECT_GE(equivalent_pairs, kRounds / 2);
}

}  // namespace
}  // namespace shelley::fsm
