// Differential properties of the automata kernel, on seeded random DFAs:
//
//   * the three minimizers (Hopcroft, Moore, Brzozowski) agree on the
//     minimal state count and on the language;
//
//   * the lazy pair-state inclusion search returns exactly the witness the
//     eager reference (extend alphabets, difference product, BFS shortest
//     word) returns -- not just an equivalent one;
//
//   * the union-find equivalence check agrees with the eager
//     two-directional inclusion reference.
//
// Each property runs over >= 1000 random automata.
#include <gtest/gtest.h>

#include <optional>
#include <random>
#include <vector>

#include "fsm/ops.hpp"
#include "testing.hpp"

namespace shelley::fsm {
namespace {

constexpr int kRounds = 1000;

/// A random complete DFA with 1..10 states over a subset of `letters`.
Dfa random_dfa(std::mt19937_64& rng, const std::vector<Symbol>& letters) {
  const std::size_t k = 1 + rng() % letters.size();
  std::vector<Symbol> alphabet(letters.begin(), letters.begin() + k);
  const std::size_t n = 1 + rng() % 10;
  Dfa dfa(n, alphabet);
  for (StateId s = 0; s < n; ++s) {
    dfa.set_accepting(s, rng() % 3 == 0);
    for (std::size_t letter = 0; letter < k; ++letter) {
      dfa.set_transition(s, letter, static_cast<StateId>(rng() % n));
    }
  }
  dfa.set_initial(static_cast<StateId>(rng() % n));
  return dfa;
}

/// The seed's eager inclusion: join alphabets, build the full difference
/// product, then BFS for a shortest accepted word.
std::optional<Word> eager_inclusion_witness(const Dfa& a, const Dfa& b) {
  std::vector<Symbol> joined = a.alphabet();
  joined.insert(joined.end(), b.alphabet().begin(), b.alphabet().end());
  std::sort(joined.begin(), joined.end());
  joined.erase(std::unique(joined.begin(), joined.end()), joined.end());
  const Dfa ea = extend_alphabet(a, joined);
  const Dfa eb = extend_alphabet(b, joined);
  return shortest_word(product(ea, eb, ProductMode::kDifference));
}

class FsmProps : public ::testing::Test {
 protected:
  FsmProps() {
    for (const char* name : {"a", "b", "c"}) {
      letters_.push_back(table_.intern(name));
    }
  }

  SymbolTable table_;
  std::vector<Symbol> letters_;
};

TEST_F(FsmProps, MinimizersAgree) {
  std::mt19937_64 rng(20230601);
  for (int round = 0; round < kRounds; ++round) {
    const Dfa dfa = random_dfa(rng, letters_);
    const Dfa hopcroft = minimize_hopcroft(dfa);
    const Dfa moore = minimize_moore(dfa);
    const Dfa brzozowski = minimize_brzozowski(dfa);
    EXPECT_EQ(hopcroft.state_count(), moore.state_count())
        << "round " << round;
    EXPECT_EQ(hopcroft.state_count(), brzozowski.state_count())
        << "round " << round;
    EXPECT_TRUE(equivalent(hopcroft, dfa)) << "round " << round;
    EXPECT_TRUE(equivalent(hopcroft, moore)) << "round " << round;
    EXPECT_TRUE(equivalent(hopcroft, brzozowski)) << "round " << round;
  }
}

TEST_F(FsmProps, LazyInclusionMatchesEagerWitnessExactly) {
  std::mt19937_64 rng(20230602);
  for (int round = 0; round < kRounds; ++round) {
    const Dfa a = random_dfa(rng, letters_);
    const Dfa b = random_dfa(rng, letters_);
    const auto lazy = inclusion_witness(a, b);
    const auto eager = eager_inclusion_witness(a, b);
    ASSERT_EQ(lazy.has_value(), eager.has_value()) << "round " << round;
    if (lazy) {
      EXPECT_EQ(*lazy, *eager)
          << "round " << round << ": lazy [" << testing::str(*lazy, table_)
          << "] vs eager [" << testing::str(*eager, table_) << "]";
    }
  }
}

TEST_F(FsmProps, UnionFindEquivalenceMatchesEagerInclusion) {
  std::mt19937_64 rng(20230603);
  int equivalent_pairs = 0;
  for (int round = 0; round < kRounds; ++round) {
    const Dfa a = random_dfa(rng, letters_);
    // Half the rounds compare against a minimized copy of `a` (guaranteed
    // equivalent, exercising the "true" path); the rest against an
    // independent automaton (almost always inequivalent).
    const Dfa b = round % 2 == 0 ? minimize(a) : random_dfa(rng, letters_);
    const bool reference = !eager_inclusion_witness(a, b).has_value() &&
                           !eager_inclusion_witness(b, a).has_value();
    EXPECT_EQ(equivalent(a, b), reference) << "round " << round;
    if (reference) ++equivalent_pairs;
  }
  // The generator must exercise both outcomes.
  EXPECT_GE(equivalent_pairs, kRounds / 2);
}

}  // namespace
}  // namespace shelley::fsm
