// Differential validation of the composite checker itself: on randomly
// generated composites over Valve,
//
//   * when check_composite reports INVALID SUBSYSTEM USAGE, its
//     counterexample must really be a complete system behavior whose
//     projection is rejected by the subsystem's usage automaton;
//
//   * when it reports no subsystem error, every complete system behavior
//     (enumerated up to a length bound) must project to a valid usage.
#include <gtest/gtest.h>

#include <random>

#include "fsm/ops.hpp"
#include "paper_sources.hpp"
#include "shelley/checker.hpp"
#include "support/strings.hpp"
#include "upy/parser.hpp"

namespace shelley::core {
namespace {

/// Generates a composite class over one Valve whose single operation makes
/// a random (possibly invalid) sequence of valve calls.
std::string random_composite(std::mt19937_64& rng) {
  std::string body;
  const std::size_t calls = 1 + rng() % 4;
  for (std::size_t i = 0; i < calls; ++i) {
    switch (rng() % 4) {
      case 0:
        // The only legal way to test: branch on the result.
        body +=
            "        match self.a.test():\n"
            "            case [\"open\"]:\n"
            "                self.a.open()\n"
            "                self.a.close()\n"
            "            case [\"clean\"]:\n"
            "                self.a.clean()\n";
        break;
      case 1:
        body += "        self.a.open()\n";
        break;
      case 2:
        body += "        self.a.close()\n";
        break;
      default:
        body += "        self.a.clean()\n";
        break;
    }
  }
  const bool repeatable = rng() % 2 == 0;
  body += repeatable ? "        return [\"run\"]\n"
                     : "        return []\n";
  return "@sys([\"a\"])\nclass Rand:\n"
         "    def __init__(self):\n        self.a = Valve()\n"
         "    @op_initial_final\n    def run(self):\n" +
         body;
}

/// Enumerates accepted words of `dfa` with length <= max_length (BFS).
std::vector<Word> accepted_words(const fsm::Dfa& dfa,
                                 std::size_t max_length) {
  std::vector<Word> out;
  std::vector<std::pair<fsm::StateId, Word>> frontier{{dfa.initial(), {}}};
  for (std::size_t length = 0; length <= max_length; ++length) {
    std::vector<std::pair<fsm::StateId, Word>> next;
    for (const auto& [state, word] : frontier) {
      if (dfa.is_accepting(state)) out.push_back(word);
      if (word.size() == length && length < max_length) {
        for (std::size_t letter = 0; letter < dfa.alphabet().size();
             ++letter) {
          Word extended = word;
          extended.push_back(dfa.alphabet()[letter]);
          next.emplace_back(dfa.transition(state, letter),
                            std::move(extended));
        }
      }
    }
    frontier = std::move(next);
    if (frontier.empty()) break;
  }
  return out;
}

class CheckerDifferential : public ::testing::TestWithParam<int> {};

TEST_P(CheckerDifferential, VerdictMatchesBruteForce) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 6151 + 11);

  std::deque<ClassSpec> specs;
  DiagnosticEngine diagnostics;
  SymbolTable table;
  const upy::Module valve = upy::parse_module(examples::kValveSource);
  specs.push_back(extract_class_spec(valve.classes.at(0), diagnostics));
  const upy::Module composite =
      upy::parse_module(random_composite(rng));
  specs.push_back(
      extract_class_spec(composite.classes.at(0), diagnostics));
  const ClassLookup lookup = [&](const std::string& name) ->
      const ClassSpec* {
    for (const ClassSpec& spec : specs) {
      if (spec.name == name) return &spec;
    }
    return nullptr;
  };

  const CheckResult result =
      check_composite(specs.back(), lookup, table, diagnostics);

  // Ground truth machinery.
  const auto behaviors = extract_behaviors(specs.back(), table, diagnostics);
  const SystemModel model =
      build_system_model(specs.back(), behaviors, table, diagnostics);
  const fsm::Dfa system =
      fsm::determinize(model.nfa, model.full_alphabet());
  const fsm::Nfa valve_usage = usage_nfa(specs.front(), table, "a.");

  const auto project = [&](const Word& word) {
    Word out;
    for (Symbol s : word) {
      if (starts_with(table.name(s), "a.")) out.push_back(s);
    }
    return out;
  };

  if (result.subsystem_errors.empty()) {
    // Every complete behavior up to length 8 must project validly.
    for (const Word& word : accepted_words(system, 8)) {
      EXPECT_TRUE(valve_usage.accepts(project(word)))
          << "checker missed invalid usage on trace ["
          << to_string(word, table) << "] of:\n"
          << random_composite(rng);
    }
  } else {
    // The counterexample must be a real complete behavior with an invalid
    // projection.
    const Word& cex = result.subsystem_errors[0].counterexample;
    EXPECT_TRUE(system.accepts(cex))
        << "counterexample is not a system behavior";
    EXPECT_FALSE(valve_usage.accepts(project(cex)))
        << "counterexample's projection is actually valid";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CheckerDifferential,
                         ::testing::Range(0, 40));

}  // namespace
}  // namespace shelley::core
