// Seeded random generators for the LTLf differential suite: formulas built
// through the normalizing constructors and usage-shaped NFAs (sparse,
// ε-edged, possibly empty-language).  Everything is driven by a
// std::mt19937_64 the caller seeds, so every failure reproduces from the
// test's seed parameter alone.
#pragma once

#include <random>
#include <string>
#include <vector>

#include "fsm/nfa.hpp"
#include "ltlf/formula.hpp"
#include "support/symbol.hpp"

namespace shelley::testing {

/// Interns `count` atom symbols p0..p(count-1).  Multi-letter names on
/// purpose: the claim lexer reserves the single letters X N F G U W R as
/// operators, and the print→parse round-trip property needs every printed
/// atom to lex as an atom again.
inline std::vector<Symbol> ltlf_atoms(SymbolTable& table, std::size_t count) {
  std::vector<Symbol> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(table.intern("p" + std::to_string(i)));
  }
  return out;
}

/// A random formula of nesting depth at most `depth` over `atoms`.  Every
/// connective of the claim grammar is reachable, including the derived
/// F/G/W/-> spellings (they normalize into the core set, which is exactly
/// what the round-trip property wants to stress).
inline ltlf::Formula random_formula(std::mt19937_64& rng,
                                    const std::vector<Symbol>& atoms,
                                    std::size_t depth) {
  using namespace ltlf;  // NOLINT(google-build-using-namespace)
  if (depth == 0 || rng() % 8 == 0) {
    switch (rng() % 8) {
      case 0: return truth();
      case 1: return falsity();
      case 2: return end();
      default: return atom(atoms[rng() % atoms.size()]);
    }
  }
  const auto sub = [&] { return random_formula(rng, atoms, depth - 1); };
  switch (rng() % 12) {
    case 0: return make_not(sub());
    case 1: return make_and(sub(), sub());
    case 2: return make_or(sub(), sub());
    case 3: return make_next(sub());
    case 4: return make_weak_next(sub());
    case 5: return make_until(sub(), sub());
    case 6: return make_release(sub(), sub());
    case 7: return make_finally(sub());
    case 8: return make_globally(sub());
    case 9: return make_weak_until(sub(), sub());
    case 10: return make_implies(sub(), sub());
    default: return make_not(sub());
  }
}

/// A random NFA over `alphabet` with up to `max_states` states: sparse
/// labelled edges, an occasional ε edge, random accepting set (possibly
/// empty -- the empty language is a legitimate, interesting system).
inline fsm::Nfa random_nfa(std::mt19937_64& rng,
                           const std::vector<Symbol>& alphabet,
                           std::size_t max_states) {
  fsm::Nfa nfa;
  const std::size_t count = 1 + rng() % max_states;
  for (std::size_t i = 0; i < count; ++i) (void)nfa.add_state();
  nfa.mark_initial(static_cast<fsm::StateId>(rng() % count));
  for (std::size_t s = 0; s < count; ++s) {
    for (const Symbol letter : alphabet) {
      // Expected ~1 edge per (state, letter), sometimes 0, sometimes 2 --
      // genuine nondeterminism included.
      for (int k = 0; k < 2; ++k) {
        if (rng() % 2 == 0) {
          nfa.add_transition(static_cast<fsm::StateId>(s), letter,
                             static_cast<fsm::StateId>(rng() % count));
        }
      }
    }
    if (rng() % 4 == 0) {
      nfa.add_epsilon(static_cast<fsm::StateId>(s),
                      static_cast<fsm::StateId>(rng() % count));
    }
    if (rng() % 5 < 2) {
      nfa.mark_accepting(static_cast<fsm::StateId>(s));
    }
  }
  return nfa;
}

}  // namespace shelley::testing
