// The headline differential suite of the dual-engine design: thousands of
// seeded random (formula, NFA) pairs answered by BOTH the on-the-fly
// tableau (ltlf/tableau.hpp) and the progression-DFA oracle
// (ltlf/automaton.hpp).  The engines must agree verdict for verdict AND
// witness for witness -- both perform the same lex-least-shortest BFS --
// and every counterexample is re-validated independently by NFA simulation
// plus the reference evaluator, so an agreeing-but-wrong pair of engines
// cannot slip through.
//
// Also here: the print→parse round-trip property for random formulas (the
// printer's precedence table must mirror the parser's ladder exactly).
#include <gtest/gtest.h>

#include <random>

#include "fsm/ops.hpp"
#include "ltlf/automaton.hpp"
#include "ltlf/eval.hpp"
#include "ltlf/parser.hpp"
#include "ltlf/tableau.hpp"
#include "props/ltlf_gen.hpp"

namespace shelley::ltlf {
namespace {

// Mirrors the splitmix64 round-seed idiom of fsm_props_test: every round of
// every seed gets an independent, reproducible stream.
std::uint64_t round_seed(std::uint64_t seed, std::uint64_t round) {
  std::uint64_t x = seed * 0x9e3779b97f4a7c15ull + round;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// -- Print→parse round trip -------------------------------------------------

class LtlfRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(LtlfRoundTrip, PrintedFormulaReparsesStructurallyEqual) {
  SymbolTable table;
  const auto atoms = shelley::testing::ltlf_atoms(table, 4);
  for (int round = 0; round < 40; ++round) {
    std::mt19937_64 rng(
        round_seed(static_cast<std::uint64_t>(GetParam()), round));
    const Formula f = shelley::testing::random_formula(rng, atoms, 4);
    const std::string printed = to_string(f, table);
    Formula reparsed;
    ASSERT_NO_THROW(reparsed = parse(printed, table)) << printed;
    EXPECT_TRUE(structurally_equal(f, reparsed))
        << "printed: " << printed
        << "\nreparsed: " << to_string(reparsed, table);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LtlfRoundTrip, ::testing::Range(0, 25));

// -- Tableau vs DFA-oracle differential -------------------------------------

constexpr int kPairsPerSeed = 110;
constexpr int kSeeds = 50;  // 50 * 110 = 5500 pairs ≥ the 5000 floor

class LtlfEngineDifferential : public ::testing::TestWithParam<int> {};

TEST_P(LtlfEngineDifferential, EnginesAgreeOnRandomPairs) {
  SymbolTable table;
  const auto atoms = shelley::testing::ltlf_atoms(table, 3);
  // The system also speaks a letter no formula mentions (and formulas may
  // mention p2 while the NFA alphabet varies through it), so the joined
  // alphabets genuinely differ between system and claim.
  const Symbol extra = table.intern("evt");
  std::vector<Symbol> alphabet(atoms.begin(), atoms.end());
  alphabet.push_back(extra);

  int violations = 0;
  int holds = 0;
  for (int round = 0; round < kPairsPerSeed; ++round) {
    std::mt19937_64 rng(
        round_seed(static_cast<std::uint64_t>(GetParam()), round));
    const fsm::Nfa nfa =
        shelley::testing::random_nfa(rng, alphabet, 5);
    const Formula f = shelley::testing::random_formula(rng, atoms, 3);
    SCOPED_TRACE("seed " + std::to_string(GetParam()) + " round " +
                 std::to_string(round) + ": " + to_string(f, table));

    const TableauResult tableau = check_tableau(nfa, alphabet, f);
    ASSERT_NE(tableau.verdict, TableauVerdict::kLimited);
    const auto witness = counterexample(
        fsm::minimize(fsm::determinize(nfa, alphabet)), f);

    if (tableau.verdict == TableauVerdict::kHolds) {
      EXPECT_FALSE(witness.has_value())
          << "oracle witness: " << to_string(*witness, table);
      ++holds;
      continue;
    }
    ++violations;
    ASSERT_TRUE(witness.has_value());
    // Identical witnesses, then independent validation of the shared word:
    // it must be a word of the system language that the reference
    // evaluator rejects.
    EXPECT_EQ(tableau.counterexample, *witness)
        << "tableau: " << to_string(tableau.counterexample, table)
        << "\noracle:  " << to_string(*witness, table);
    EXPECT_TRUE(nfa.accepts(tableau.counterexample));
    EXPECT_FALSE(eval(f, tableau.counterexample));
  }
  // A sweep where one verdict never occurs is a broken generator, not a
  // passing differential.
  EXPECT_GT(violations, 0);
  EXPECT_GT(holds, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LtlfEngineDifferential,
                         ::testing::Range(0, kSeeds));

}  // namespace
}  // namespace shelley::ltlf
