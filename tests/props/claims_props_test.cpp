// Differential validation of claim checking: random LTLf claims over
// valve events, checked two ways --
//
//   * the pipeline (ltlf::counterexample over the projected system DFA);
//   * brute force (direct evaluation of the formula on every complete
//     behavior up to a length bound).
//
// A reported counterexample must be a real behavior violating the formula;
// a clean verdict must survive the brute-force sweep.
#include <gtest/gtest.h>

#include <random>

#include "fsm/ops.hpp"
#include "ltlf/automaton.hpp"
#include "ltlf/eval.hpp"
#include "paper_sources.hpp"
#include "shelley/automata.hpp"
#include "upy/parser.hpp"

namespace shelley::core {
namespace {

ltlf::Formula random_claim(std::mt19937_64& rng, SymbolTable& table,
                           int depth) {
  const char* events[] = {"a.test", "a.open", "a.close", "a.clean"};
  if (depth == 0) {
    const ltlf::Formula a = ltlf::atom(table.intern(events[rng() % 4]));
    return rng() % 3 == 0 ? ltlf::make_not(a) : a;
  }
  switch (rng() % 8) {
    case 0:
      // Negation over arbitrary temporal subformulas: the NNF constructors
      // plus DNF state canonicalization keep progression finite even here.
      return ltlf::make_not(random_claim(rng, table, depth - 1));
    case 1:
      return ltlf::make_and(random_claim(rng, table, depth - 1),
                            random_claim(rng, table, depth - 1));
    case 2:
      return ltlf::make_or(random_claim(rng, table, depth - 1),
                           random_claim(rng, table, depth - 1));
    case 3:
      return ltlf::make_next(random_claim(rng, table, depth - 1));
    case 4:
      return ltlf::make_finally(random_claim(rng, table, depth - 1));
    case 5:
      return ltlf::make_globally(random_claim(rng, table, depth - 1));
    case 6:
      return ltlf::make_until(random_claim(rng, table, depth - 1),
                              random_claim(rng, table, depth - 1));
    default:
      return ltlf::make_weak_until(random_claim(rng, table, depth - 1),
                                   random_claim(rng, table, depth - 1));
  }
}

std::vector<Word> accepted_words(const fsm::Dfa& dfa,
                                 std::size_t max_length) {
  std::vector<Word> out;
  std::vector<std::pair<fsm::StateId, Word>> frontier{{dfa.initial(), {}}};
  for (std::size_t length = 0; length <= max_length; ++length) {
    std::vector<std::pair<fsm::StateId, Word>> next;
    for (const auto& [state, word] : frontier) {
      if (dfa.is_accepting(state)) out.push_back(word);
      if (word.size() == length && length < max_length) {
        for (std::size_t letter = 0; letter < dfa.alphabet().size();
             ++letter) {
          Word extended = word;
          extended.push_back(dfa.alphabet()[letter]);
          next.emplace_back(dfa.transition(state, letter),
                            std::move(extended));
        }
      }
    }
    frontier = std::move(next);
    if (frontier.empty()) break;
  }
  return out;
}

class ClaimDifferential : public ::testing::TestWithParam<int> {};

TEST_P(ClaimDifferential, PipelineAgreesWithBruteForce) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 2347 + 9);
  SymbolTable table;
  DiagnosticEngine diagnostics;

  // The behavior language: GoodSector's projected subsystem events for
  // valve `a` only (a compact but non-trivial language).
  const upy::Module valve = upy::parse_module(examples::kValveSource);
  const ClassSpec spec =
      extract_class_spec(valve.classes.at(0), diagnostics);
  const fsm::Dfa behavior = fsm::minimize(
      fsm::determinize(usage_nfa(spec, table, "a.")));

  for (int round = 0; round < 5; ++round) {
    const ltlf::Formula claim = random_claim(rng, table, 2);
    const auto witness = ltlf::counterexample(behavior, claim);
    if (witness) {
      EXPECT_TRUE(behavior.accepts(*witness))
          << ltlf::to_string(claim, table);
      EXPECT_FALSE(ltlf::eval(claim, *witness))
          << ltlf::to_string(claim, table);
    } else {
      for (const Word& word : accepted_words(behavior, 7)) {
        EXPECT_TRUE(ltlf::eval(claim, word))
            << ltlf::to_string(claim, table) << " fails on ["
            << to_string(word, table) << "]";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClaimDifferential, ::testing::Range(0, 30));

}  // namespace
}  // namespace shelley::core
