// A four-level system-of-systems, verified level by level, with claims at
// every composite level -- exercising the modular verification story end to
// end on something bigger than the paper's two-level example:
//
//   Campus ── z1,z2 : Zone ── a,b : FertilizerLine ── p : Pump, v : Valve
//          └─ radio : Radio
//
// plus seeded-bug variants that each level's check catches.
#include <gtest/gtest.h>

#include "paper_sources.hpp"
#include "shelley/verifier.hpp"

namespace shelley::core {
namespace {

constexpr const char* kBaseSource = R"py(
@sys
class Pump:
    def __init__(self):
        self.motor = Pin(4, OUT)

    @op_initial
    def prime(self):
        return ["on"]

    @op
    def on(self):
        self.motor.on()
        return ["off"]

    @op_final
    def off(self):
        self.motor.off()
        return ["prime"]

@sys
class Radio:
    @op_initial
    def wake(self):
        return ["tx"]

    @op
    def tx(self):
        return ["tx", "sleep"]

    @op_final
    def sleep(self):
        return ["wake"]
)py";

constexpr const char* kFertilizerLineSource = R"py(
@claim("G (p.on -> F p.off)")
@sys(["p", "v"])
class FertilizerLine:
    def __init__(self):
        self.p = Pump()
        self.v = Valve()

    @op_initial
    def inject(self):
        match self.v.test():
            case ["open"]:
                self.p.prime()
                self.p.on()
                self.v.open()
                self.v.close()
                self.p.off()
                return ["inject", "shutdown"]
            case ["clean"]:
                self.v.clean()
                return ["inject", "shutdown"]

    @op_initial_final
    def shutdown(self):
        return ["inject", "shutdown"]
)py";

constexpr const char* kZoneSource = R"py(
@claim("G (a.inject -> F a.shutdown)")
@claim("G (b.inject -> F b.shutdown)")
@sys(["a", "b"])
class Zone:
    def __init__(self):
        self.a = FertilizerLine()
        self.b = FertilizerLine()

    @op_initial
    def water_a(self):
        self.a.inject()
        return ["water_b", "close"]

    @op
    def water_b(self):
        self.b.inject()
        return ["water_a", "close"]

    @op_final
    def close(self):
        self.a.shutdown()
        self.b.shutdown()
        return ["water_a"]
)py";

constexpr const char* kCampusSource = R"py(
@claim("(!z1.water_a) W radio.wake")
@claim("G (radio.wake -> F radio.sleep)")
@sys(["z1", "z2", "radio"])
class Campus:
    def __init__(self):
        self.z1 = Zone()
        self.z2 = Zone()
        self.radio = Radio()

    @op_initial
    def morning(self):
        self.radio.wake()
        self.radio.tx()
        return ["irrigate"]

    @op
    def irrigate(self):
        self.z1.water_a()
        self.z1.water_b()
        self.z1.close()
        self.z2.water_a()
        self.z2.close()
        return ["evening"]

    @op_final
    def evening(self):
        self.radio.tx()
        self.radio.sleep()
        return ["morning"]
)py";

class HierarchyTest : public ::testing::Test {
 protected:
  void load_stack() {
    verifier_.add_source(examples::kValveSource);
    verifier_.add_source(kBaseSource);
    verifier_.add_source(kFertilizerLineSource);
    verifier_.add_source(kZoneSource);
  }
  Verifier verifier_;
};

TEST_F(HierarchyTest, EveryLevelVerifies) {
  load_stack();
  verifier_.add_source(kCampusSource);
  const Report report = verifier_.verify_all();
  ASSERT_EQ(report.classes.size(), 6u);  // Valve, Pump, Radio,
                                         // FertilizerLine, Zone, Campus
  EXPECT_TRUE(report.ok()) << report.render(verifier_.symbols())
                           << verifier_.diagnostics().render();
}

TEST_F(HierarchyTest, ClaimsHoldAtEveryLevel) {
  load_stack();
  verifier_.add_source(kCampusSource);
  const Report report = verifier_.verify_all();
  for (const ClassReport& cls : report.classes) {
    EXPECT_TRUE(cls.check.claim_errors.empty())
        << cls.class_name << ": "
        << report.render(verifier_.symbols());
  }
}

TEST_F(HierarchyTest, ForgettingRadioSleepIsCaught) {
  load_stack();
  verifier_.add_source(R"py(
@sys(["radio"])
class SleeplessCampus:
    def __init__(self):
        self.radio = Radio()

    @op_initial_final
    def day(self):
        self.radio.wake()
        self.radio.tx()
        return ["day"]
)py");
  const Report report = verifier_.verify_all();
  EXPECT_FALSE(report.ok());
  const std::string rendered = report.render(verifier_.symbols());
  EXPECT_NE(rendered.find("INVALID SUBSYSTEM USAGE"), std::string::npos);
  EXPECT_NE(rendered.find(">tx< (not final)"), std::string::npos);
}

TEST_F(HierarchyTest, ZoneLeftOpenIsCaught) {
  load_stack();
  verifier_.add_source(R"py(
@sys(["z1"])
class ForgetfulCampus:
    def __init__(self):
        self.z1 = Zone()

    @op_initial_final
    def run(self):
        self.z1.water_a()
        return []
)py");
  const Report report = verifier_.verify_all();
  EXPECT_FALSE(report.ok());
  const std::string rendered = report.render(verifier_.symbols());
  // water_a alone ends the zone at a non-final state.
  EXPECT_NE(rendered.find("Zone 'z1'"), std::string::npos);
  EXPECT_NE(rendered.find(">water_a< (not final)"), std::string::npos);
}

TEST_F(HierarchyTest, CampusClaimViolationIsCaught) {
  load_stack();
  // Watering before the radio wakes violates the W-claim.
  verifier_.add_source(R"py(
@claim("(!z1.water_a) W radio.wake")
@sys(["z1", "radio"])
class EagerCampus:
    def __init__(self):
        self.z1 = Zone()
        self.radio = Radio()

    @op_initial_final
    def run(self):
        self.z1.water_a()
        self.z1.close()
        self.radio.wake()
        self.radio.tx()
        self.radio.sleep()
        return ["run"]
)py");
  const Report report = verifier_.verify_all();
  const std::string rendered = report.render(verifier_.symbols());
  EXPECT_NE(rendered.find("FAIL TO MEET REQUIREMENT"), std::string::npos);
  EXPECT_NE(rendered.find("(!z1.water_a) W radio.wake"), std::string::npos);
}

TEST_F(HierarchyTest, SystemSizesStayModular) {
  // The point of the hierarchy: Campus is checked against Zone's *spec*
  // (5 ops), never against the 4 valves + 2 pumps below it -- so the state
  // space stays small.  Sanity-check by timing-free proxy: verify_all
  // completes and the composite check never sees a Valve event.
  load_stack();
  verifier_.add_source(kCampusSource);
  const Report report = verifier_.verify_all();
  ASSERT_TRUE(report.ok());
  for (const ClassReport& cls : report.classes) {
    for (const SubsystemError& error : cls.check.subsystem_errors) {
      ADD_FAILURE() << "unexpected error in " << cls.class_name;
      (void)error;
    }
  }
}

}  // namespace
}  // namespace shelley::core
