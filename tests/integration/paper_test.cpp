// End-to-end pinning of every artifact the paper reports:
//   Table 1  -- annotation meanings (via full verification behavior)
//   Table 2  -- return-statement forms
//   Fig. 1   -- Valve diagram generated from annotations
//   Fig. 2   -- BadSector: INVALID SUBSYSTEM USAGE + failing claim
//   Fig. 3   -- Sector dependency graph
//   Fig. 4   -- Examples 1-3 (trace semantics + inference)
#include <gtest/gtest.h>

#include "ir/inference.hpp"
#include "ir/semantics.hpp"
#include "ltlf/eval.hpp"
#include "ltlf/parser.hpp"
#include "paper_sources.hpp"
#include "rex/equivalence.hpp"
#include "rex/parser.hpp"
#include "shelley/graph.hpp"
#include "shelley/verifier.hpp"
#include "viz/dot.hpp"

namespace shelley {
namespace {

class PaperArtifacts : public ::testing::Test {
 protected:
  void SetUp() override {
    verifier_.add_source(examples::kValveSource);
    verifier_.add_source(examples::kBadSectorSource);
  }
  core::Verifier verifier_;
};

TEST_F(PaperArtifacts, Section22InvalidSubsystemUsageMessage) {
  const core::Report report = verifier_.verify_all();
  const std::string rendered = report.render(verifier_.symbols());
  // The exact error block from §2.2.
  EXPECT_NE(rendered.find(
                "Error in specification: INVALID SUBSYSTEM USAGE\n"
                "Counter example: open_a, a.test, a.open\n"
                "Subsystems errors:\n"
                "  * Valve 'a': test, >open< (not final)\n"),
            std::string::npos)
      << rendered;
}

TEST_F(PaperArtifacts, Section22ClaimFailureMessage) {
  const core::Report report = verifier_.verify_all();
  const std::string rendered = report.render(verifier_.symbols());
  EXPECT_NE(rendered.find("Error in specification: FAIL TO MEET REQUIREMENT\n"
                          "Formula: (!a.open) W b.open\n"),
            std::string::npos);
  // The paper's own counterexample trace must also be (a) a system
  // behavior and (b) a genuine violation -- even though our tool reports
  // the *shortest* violation instead.
  // Paper trace: a.test, a.open, b.open, b.test, b.open, a.close, b.close.
  // Note the paper's trace is not replayable verbatim on the Valve spec
  // (b.open precedes b.test); the semantic content -- a.open before any
  // b.open -- is what both counterexamples share.
  const ltlf::Formula claim =
      ltlf::parse("(!a.open) W b.open", verifier_.symbols());
  Word paper_trace;
  for (const char* event :
       {"a.test", "a.open", "b.open", "b.test", "b.open", "a.close",
        "b.close"}) {
    paper_trace.push_back(verifier_.symbols().intern(event));
  }
  EXPECT_FALSE(ltlf::eval(claim, paper_trace));
}

TEST_F(PaperArtifacts, Figure1ValveDiagram) {
  const core::ClassSpec* valve = verifier_.find_class("Valve");
  ASSERT_NE(valve, nullptr);
  const std::string dot = viz::dot_class_diagram(*valve);
  for (const char* fragment :
       {"__start -> \"test\"", "\"test\" -> \"open\"",
        "\"test\" -> \"clean\"", "\"open\" -> \"close\"",
        "\"close\" -> \"test\"", "\"clean\" -> \"test\""}) {
    EXPECT_NE(dot.find(fragment), std::string::npos) << fragment;
  }
}

TEST_F(PaperArtifacts, Figure3SectorDependencyGraph) {
  core::Verifier verifier;
  verifier.add_source(examples::kValveSource);
  verifier.add_source(examples::kSectorSource);
  const core::ClassSpec* sector = verifier.find_class("Sector");
  ASSERT_NE(sector, nullptr);
  core::DependencyGraph graph =
      core::DependencyGraph::build(*sector, verifier.diagnostics());
  EXPECT_EQ(graph.nodes().size(), 10u);
  EXPECT_EQ(graph.edges().size(), 11u);
}

TEST_F(PaperArtifacts, Figure4Examples1And2) {
  SymbolTable table;
  const Symbol a = table.intern("a");
  const Symbol b = table.intern("b");
  const Symbol c = table.intern("c");
  const ir::Program p = ir::loop(ir::seq(
      ir::call(a),
      ir::branch(ir::seq(ir::call(b), ir::ret()), ir::call(c))));
  EXPECT_TRUE(ir::derives(p, {a, c, a, c}, ir::Status::kOngoing));
  EXPECT_TRUE(ir::derives(p, {a, c, a, b}, ir::Status::kReturned));
}

TEST_F(PaperArtifacts, Figure4Example3) {
  SymbolTable table;
  const Symbol a = table.intern("a");
  const Symbol b = table.intern("b");
  const Symbol c = table.intern("c");
  const ir::Program p = ir::loop(ir::seq(
      ir::call(a),
      ir::branch(ir::seq(ir::call(b), ir::ret()), ir::call(c))));
  const ir::Behavior behavior = ir::analyze(p);
  EXPECT_EQ(rex::to_string(behavior.ongoing, table), "(a · (b · ∅ + c))*");
  ASSERT_EQ(behavior.returned.size(), 1u);
  EXPECT_TRUE(rex::equivalent(behavior.returned[0].regex,
                              rex::parse("(a (b void + c))* a b", table)));
}

TEST_F(PaperArtifacts, Table2ReturnFormsAllVerify) {
  // One class exercising all five documented return forms.
  core::Verifier verifier;
  verifier.add_source(R"py(
@sys
class Table2:
    @op_initial
    def single(self):
        return ["multi"]

    @op
    def multi(self):
        if x:
            return ["with_int", "with_bool"]
        else:
            return ["with_int", "with_bool"]

    @op
    def with_int(self):
        return ["multi_value"], 2

    @op
    def with_bool(self):
        return ["multi_value"], True

    @op
    def multi_value(self):
        return ["stop", "single"], 2

    @op_final
    def stop(self):
        return []
)py");
  const core::Report report = verifier.verify_all();
  EXPECT_TRUE(report.ok()) << verifier.diagnostics().render();
  const core::ClassSpec* spec = verifier.find_class("Table2");
  EXPECT_EQ(spec->find_operation("single")->exits[0].successors,
            (std::vector<std::string>{"multi"}));
  EXPECT_EQ(spec->find_operation("with_int")->exits[0].successors,
            (std::vector<std::string>{"multi_value"}));
  EXPECT_EQ(spec->find_operation("multi_value")->exits[0].successors,
            (std::vector<std::string>{"stop", "single"}));
}

TEST_F(PaperArtifacts, Table1AnnotationsDriveVerification) {
  // op_initial: invoking anything else first is invalid.
  core::Verifier verifier;
  verifier.add_source(examples::kValveSource);
  verifier.add_source(R"py(
@sys(["a"])
class SkipsInitial:
    def __init__(self):
        self.a = Valve()

    @op_initial_final
    def go(self):
        self.a.open()
        self.a.close()
        return []
)py");
  const core::Report report = verifier.verify_all();
  EXPECT_FALSE(report.ok());
}

TEST_F(PaperArtifacts, GoodSectorHasNoFindings) {
  core::Verifier verifier;
  verifier.add_source(examples::kValveSource);
  verifier.add_source(examples::kGoodSectorSource);
  const core::Report report = verifier.verify_all();
  EXPECT_TRUE(report.ok()) << report.render(verifier.symbols());
}

}  // namespace
}  // namespace shelley
